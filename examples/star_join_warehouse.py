#!/usr/bin/env python
"""A warehouse-style star join under heavy-hitter skew (Section 4.2.1).

Think of a fact-table key ``z`` (say, customer id) joined against k
attribute relations.  Real workloads are Zipf-distributed: a few
customers dominate.  The example:

1. realizes an exact Zipf degree sequence on ``z`` (the paper's
   z-statistics),
2. runs the standard parallel hash join (all shares on ``z``) -- the
   Example 4.1 failure mode,
3. runs the skew-oblivious HyperCube (LP (18) shares),
4. runs the Section 4.2.1 skew-aware star algorithm with per-hitter
   server allocation,
5. compares all three loads against the Theorem 4.4 lower bound.

Run:  python examples/star_join_warehouse.py
"""

from repro import star_query
from repro.data.generators import degree_sequence_database
from repro.hypercube import run_hypercube
from repro.join import evaluate
from repro.skew import (
    run_skew_oblivious_hypercube,
    run_star_skew,
    star_skew_lower_bound,
)
from repro.skew.bounds import zipf_frequencies


def main() -> None:
    k = 2  # attribute relations
    p = 16
    m = 3_000  # tuples per relation
    n = 50_000

    query = star_query(k)
    print(f"query: {query}")

    # Zipf z-statistics: ~60 distinct keys, rank-1 key dominates.
    freqs = {
        f"S{j}": zipf_frequencies(m, 60, skew=1.2) for j in range(1, k + 1)
    }
    db = degree_sequence_database(query, "z", freqs, n, seed=11)
    stats = db.statistics(query)
    top = max(freqs["S1"].values())
    print(
        f"data: {stats.total_tuples} tuples, hottest key holds "
        f"{top}/{stats.tuples('S1')} of S1 ({top / stats.tuples('S1'):.0%})"
    )

    truth = evaluate(query, db)
    print(f"join answers: {len(truth)}")

    hash_join = run_hypercube(query, db, p, exponents={"z": 1.0}, seed=5)
    oblivious = run_skew_oblivious_hypercube(query, db, p, seed=5)
    star = run_star_skew(query, db, p, seed=5)
    for result, name in (
        (hash_join, "parallel hash join (shares on z)"),
        (oblivious, "skew-oblivious HC (LP 18)"),
    ):
        assert result.answers == truth
        print(f"\n{name}:")
        print(f"  max load {result.max_load_bits:.0f} bits")
    assert star.answers == truth
    print(f"\nskew-aware star algorithm (Section 4.2.1), "
          f"{star.servers_used} servers:")
    print(f"  max load {star.max_load_bits:.0f} bits")
    print(f"  Eq. (20) bound: {star.predicted_load_bits:.0f} bits")
    print(f"  heavy hitters handled: {len(star.heavy_hitters)}")

    hitter_stats = {
        rel: {h: c for h, c in f.items() if c >= m / p}
        for rel, f in freqs.items()
    }
    bound = star_skew_lower_bound(
        hitter_stats, stats.value_bits, p, with_constant=False
    )
    print(f"\nTheorem 4.4 lower bound (no constant): {bound:.0f} bits")
    print(
        f"hash join / star-algorithm load ratio: "
        f"{hash_join.max_load_bits / star.max_load_bits:.1f}x"
    )


if __name__ == "__main__":
    main()
