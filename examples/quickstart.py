#!/usr/bin/env python
"""Quickstart: compute a triangle query with the HyperCube algorithm.

Walks through the paper's headline result end to end:

1. build the triangle query C3 and a skew-free (matching) database,
2. solve LP (10) for the optimal shares (p^{1/3} each),
3. run the one-round HyperCube algorithm on a simulated MPC cluster,
4. compare the measured maximum load against the paper's tight bound
   L_lower = L_upper = M / p^{2/3} (Theorems 3.4, 3.5, 3.15).

Run:  python examples/quickstart.py
"""

from repro import triangle_query, uniform_database
from repro.bounds import lower_bound, upper_bound
from repro.core.shares import share_exponents
from repro.hypercube import run_hypercube
from repro.join import evaluate


def main() -> None:
    query = triangle_query()
    p = 64  # servers
    m = 2_000  # tuples per relation
    n = 200  # attribute domain (dense enough to have ~1000 triangles)

    print(f"query: {query}")
    db = uniform_database(query, m=m, n=n, seed=42)
    stats = db.statistics(query)
    print(
        f"database: {m} tuples/relation over [{n}] "
        f"({stats.total_bits:.0f} bits total)"
    )

    shares = share_exponents(query, stats, p)
    print(f"\nLP (10) share exponents: {shares.exponents}")
    print(f"predicted load p^lambda = {shares.load_bits:.0f} bits")

    result = run_hypercube(query, db, p, seed=7)
    print(f"\nHyperCube on p={p} servers, shares {result.shares}")
    print(f"  answers found:  {len(result.answers)}")
    print(f"  max load:       {result.max_load_bits:.0f} bits")
    print(f"  replication:    {result.replication_rate(stats):.2f}x")

    sequential = evaluate(query, db)
    assert result.answers == sequential, "parallel != sequential!"
    print(f"  matches the sequential join ({len(sequential)} answers)")

    lo = lower_bound(query, stats, p)
    hi = upper_bound(query, stats, p)
    print(f"\nTheorem 3.15: L_lower = {lo:.0f} = L_upper = {hi:.0f} bits")
    print(
        f"measured / bound = {result.max_load_bits / lo:.2f} "
        "(constant factor: the bound is per-relation, the load sums 3)"
    )


if __name__ == "__main__":
    main()
