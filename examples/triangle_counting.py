#!/usr/bin/env python
"""Triangle counting on social-graph-like data, with and without skew.

Social graphs have celebrity vertices: a hub whose degree is a constant
fraction of the edge count.  Vanilla HyperCube hashing then piles the
hub's edges onto a slice of the server grid (Section 4's motivation);
the Section 4.2.2 skew-aware algorithm restores the load balance by
giving each heavy hitter its own residual-query grid.

This example builds a hub-and-spokes graph, counts triangles three
ways -- sequentially, with vanilla HyperCube, and with the skew-aware
algorithm -- and prints the loads next to the paper's formulas.

Run:  python examples/triangle_counting.py
"""

from repro import triangle_query
from repro.data.generators import random_graph_edges, triangle_database_from_edges
from repro.hypercube import run_hypercube
from repro.join import evaluate
from repro.skew import run_triangle_skew


def build_celebrity_graph(hub_degree: int, fan_edges: int, noise: int, seed: int):
    """A hub connected to everyone, some fan-fan edges, random noise."""
    vertices = hub_degree + 2
    edges = {(0, v) for v in range(1, hub_degree + 1)}
    edges |= {(v, v + 1) for v in range(1, fan_edges + 1)}
    # Noise among the fans only, so the hub stays the unique heavy value.
    edges |= {
        (min(u + 1, v + 1), max(u + 1, v + 1))
        for u, v in random_graph_edges(vertices - 2, noise, seed=seed)
        if u != v
    }
    return edges, vertices


def main() -> None:
    p = 27
    edges, vertices = build_celebrity_graph(
        hub_degree=600, fan_edges=100, noise=60, seed=3
    )
    db = triangle_database_from_edges(edges, vertices)
    query = triangle_query()
    stats = db.statistics(query)
    m = stats.tuples("S1")
    print(
        f"celebrity graph: {vertices} vertices, {len(edges)} edges "
        f"(symmetric closure: {m} tuples/relation)"
    )
    print(f"hub degree: 600 = {600 / m:.0%} of each relation")

    truth = evaluate(query, db)
    print(f"\ndirected triangles (sequential ground truth): {len(truth)}")
    print(f"undirected triangles: {len(truth) // 6}")

    vanilla = run_hypercube(query, db, p, seed=1)
    assert vanilla.answers == truth
    print(f"\nvanilla HyperCube, p={p}, shares {vanilla.shares}:")
    print(f"  max load {vanilla.max_load_bits:.0f} bits")
    print(f"  (skew-free prediction would be ~ M/p^(2/3) = "
          f"{stats.bits('S1') / p ** (2 / 3):.0f} bits)")

    skew_aware = run_triangle_skew(db, p, seed=1)
    assert skew_aware.answers == truth
    print(f"\nskew-aware algorithm (Section 4.2.2), {skew_aware.servers_used} servers:")
    print(f"  max load {skew_aware.max_load_bits:.0f} bits")
    print(f"  paper formula bound: {skew_aware.predicted_load_bits:.0f} bits")
    hitters = {v: len(s) for v, s in skew_aware.heavy2.items()}
    print(f"  heavy hitters per variable (threshold m/p^(1/3)): {hitters}")

    ratio = vanilla.max_load_bits / skew_aware.max_load_bits
    print(f"\nskew-aware wins by {ratio:.1f}x on the maximum load")


if __name__ == "__main__":
    main()
