#!/usr/bin/env python
"""Multi-round chain queries and the connected-components frontier.

Section 5 of the paper is about the rounds/load tradeoff.  This example

1. computes ``L_16`` with two plans -- four rounds of binary joins
   (load ~ M/p) versus two rounds of 4-way joins (load ~ M/sqrt(p),
   Example 5.2) -- and prints the measured tradeoff;
2. certifies the matching lower bound with an (eps, r)-plan
   (Lemma 5.6 / Theorem 5.8);
3. runs tuple-based connected components on the Theorem 5.20 layered
   graphs and shows the round count growing like log(path length) while
   naive label propagation pays the full diameter.

Run:  python examples/chain_query_multiround.py
"""

from repro import chain_query
from repro.data.generators import layered_path_graph, matching_database
from repro.join import evaluate
from repro.multiround import (
    chain_epsilon_r_plan,
    chain_plan,
    chain_round_lower_bound,
    connected_components_mpc,
    run_plan,
    validate_plan,
)


def chain_tradeoff() -> None:
    k, p, m = 16, 16, 256
    query = chain_query(k)
    db = matching_database(query, m=m, n=m, seed=21)  # permutations
    stats = db.statistics(query)
    truth = evaluate(query, db)
    print(f"=== {query.name}: rounds vs load on p={p}, m=n={m} ===")
    for eps, label in ((0.0, "binary bushy tree"), (0.5, "4-ary bushy tree")):
        plan = chain_plan(k, eps)
        result = run_plan(plan, db, p, seed=2)  # columnar by default
        reference = run_plan(plan, db, p, seed=2, backend="tuples")
        assert result.answers == reference.answers == truth
        assert result.report.total_bits == reference.report.total_bits
        print(
            f"eps={eps}: {label}: {result.rounds} rounds, "
            f"max load {result.max_load_bits:.0f} bits "
            f"(M_rel = {stats.bits('S1'):.0f}; tuple backend identical)"
        )

    for eps in (0.0, 0.5):
        cert = chain_epsilon_r_plan(k, eps)
        validate_plan(cert)
        print(
            f"eps={eps}: (eps,r)-plan with r={cert.r} certifies >= "
            f"{chain_round_lower_bound(k, eps)} rounds (Cor. 5.15)"
        )


def connected_components_frontier() -> None:
    print("\n=== Theorem 5.20: connected components rounds ===")
    p = 8
    print(f"{'path length':>12} {'hash-to-min':>12} {'label prop':>11}")
    for length in (4, 8, 16, 32, 64):
        edges, n = layered_path_graph(length, 4, seed=31)
        h2m = connected_components_mpc(edges, n, p=p, seed=1)
        lp = connected_components_mpc(
            edges, n, p=p, seed=1, algorithm="label_propagation"
        )
        assert h2m.converged and lp.converged
        print(f"{length:>12} {h2m.rounds:>12} {lp.rounds:>11}")
    print(
        "hash-to-min grows ~ log(length) -- the shape the Omega(log p)\n"
        "lower bound says is unavoidable at load O(m/p^(1-eps))."
    )


def main() -> None:
    chain_tradeoff()
    connected_components_frontier()


if __name__ == "__main__":
    main()
