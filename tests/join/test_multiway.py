"""Tests for the generic multiway join (ground-truth evaluator)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.database import Database
from repro.data.generators import matching_database, uniform_database
from repro.data.relation import Relation
from repro.join.multiway import evaluate, evaluate_on_fragments, join_order


def brute_force(query, fragments, n):
    """Reference evaluator: enumerate all assignments over [n]^k."""
    variables = query.variables
    out = set()
    for values in itertools.product(range(n), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        ok = True
        for atom in query.atoms:
            t = tuple(assignment[v] for v in atom.variables)
            if t not in fragments.get(atom.relation, set()):
                ok = False
                break
        if ok:
            out.add(values)
    return out


class TestKnownInstances:
    def test_triangle(self):
        q = triangle_query()
        edges = {(0, 1), (1, 2), (2, 0), (0, 3)}
        fragments = {"S1": edges, "S2": edges, "S3": edges}
        result = evaluate_on_fragments(q, fragments)
        assert result == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

    def test_chain(self):
        q = chain_query(2)
        fragments = {"S1": {(0, 1), (2, 3)}, "S2": {(1, 5), (1, 6)}}
        result = evaluate_on_fragments(q, fragments)
        assert result == {(0, 1, 5), (0, 1, 6)}

    def test_star(self):
        q = star_query(2)
        fragments = {"S1": {(7, 1), (8, 1)}, "S2": {(7, 2)}}
        result = evaluate_on_fragments(q, fragments)
        assert result == {(7, 1, 2)}

    def test_simple_join(self):
        q = simple_join_query()  # S1(x,z), S2(y,z)
        fragments = {"S1": {(1, 9)}, "S2": {(2, 9), (3, 9)}}
        result = evaluate_on_fragments(q, fragments)
        # Head order is first-occurrence: (x, z, y).
        assert q.variables == ("x", "z", "y")
        assert result == {(1, 9, 2), (1, 9, 3)}

    def test_cartesian_product(self):
        q = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        fragments = {"R": {(1,), (2,)}, "S": {(5,)}}
        result = evaluate_on_fragments(q, fragments)
        assert result == {(1, 5), (2, 5)}

    def test_empty_relation_gives_empty_answer(self):
        q = chain_query(2)
        assert evaluate_on_fragments(q, {"S1": set(), "S2": {(1, 2)}}) == set()

    def test_missing_relation_treated_as_empty(self):
        q = chain_query(2)
        assert evaluate_on_fragments(q, {"S1": {(1, 2)}}) == set()

    def test_repeated_variable_atom(self):
        # Contraction can produce S(x, x): only diagonal tuples survive.
        q = ConjunctiveQuery((Atom("S", ("x", "x")),))
        fragments = {"S": {(1, 1), (1, 2), (3, 3)}}
        assert evaluate_on_fragments(q, fragments) == {(1,), (3,)}

    def test_no_atoms_yields_empty_tuple(self):
        q = ConjunctiveQuery(())
        assert evaluate_on_fragments(q, {}) == {()}


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "query",
        [
            triangle_query(),
            chain_query(3),
            star_query(3),
            simple_join_query(),
        ],
        ids=lambda q: q.name,
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_uniform_instances(self, query, seed):
        n = 5
        db = uniform_database(query, m=8, n=n, seed=seed)
        fragments = {r: set(db[r].tuples) for r in query.relation_names}
        assert evaluate(query, db) == brute_force(query, fragments, n)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_matching_instances_chain(self, seed):
        q = chain_query(3)
        db = matching_database(q, m=6, n=8, seed=seed)
        fragments = {r: set(db[r].tuples) for r in q.relation_names}
        assert evaluate(q, db) == brute_force(q, fragments, 8)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_uniform_instances_triangle(self, seed):
        q = triangle_query()
        db = uniform_database(q, m=10, n=4, seed=seed)
        fragments = {r: set(db[r].tuples) for r in q.relation_names}
        assert evaluate(q, db) == brute_force(q, fragments, 4)


class TestOrders:
    def test_join_order_is_permutation(self):
        for q in (triangle_query(), chain_query(5), star_query(4)):
            order = join_order(q)
            assert sorted(order) == sorted(q.variables)

    def test_custom_order_same_result(self):
        q = chain_query(3)
        db = matching_database(q, m=5, n=10, seed=3)
        base = evaluate(q, db)
        for order in itertools.permutations(q.variables):
            assert evaluate(q, db, order=order) == base

    def test_invalid_order_rejected(self):
        q = chain_query(2)
        db = matching_database(q, m=2, n=5, seed=0)
        with pytest.raises(ValueError, match="permutation"):
            evaluate(q, db, order=("x0",))


class TestValidation:
    def test_isolated_variables_rejected(self):
        q = ConjunctiveQuery(
            (Atom("S", ("x",)),), isolated_variables=frozenset({"w"})
        )
        with pytest.raises(ValueError, match="isolated"):
            evaluate_on_fragments(q, {"S": {(1,)}})

    def test_database_schema_checked(self):
        q = chain_query(1)
        db = Database([Relation("S1", 1, [(1,)])], 10)
        with pytest.raises(ValueError, match="arity"):
            evaluate(q, db)
