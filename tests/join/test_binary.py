"""Tests for binary hash joins over tagged tuple sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.join.binary import hash_join, merge_schemas, project, reorder

pairs = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=25
)


class TestMergeSchemas:
    def test_union_preserving_order(self):
        assert merge_schemas(("x", "y"), ("y", "z")) == ("x", "y", "z")

    def test_disjoint(self):
        assert merge_schemas(("x",), ("y",)) == ("x", "y")


class TestHashJoin:
    def test_natural_join(self):
        left = {(0, 1), (2, 3)}
        right = {(1, 9), (1, 8)}
        out, schema = hash_join(left, ("x", "y"), right, ("y", "z"))
        assert schema == ("x", "y", "z")
        assert out == {(0, 1, 9), (0, 1, 8)}

    def test_cartesian_when_disjoint(self):
        out, schema = hash_join({(1,), (2,)}, ("x",), {(9,)}, ("y",))
        assert schema == ("x", "y")
        assert out == {(1, 9), (2, 9)}

    def test_multi_variable_key(self):
        left = {(0, 1, 2)}
        right = {(1, 2, 7), (1, 3, 8)}
        out, schema = hash_join(left, ("x", "y", "z"), right, ("y", "z", "w"))
        assert schema == ("x", "y", "z", "w")
        assert out == {(0, 1, 2, 7)}

    @given(pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_against_nested_loop(self, a, b):
        out, _ = hash_join(a, ("x", "y"), b, ("y", "z"))
        expected = {
            (x, y, z) for (x, y) in a for (y2, z) in b if y == y2
        }
        assert out == expected

    @given(pairs, pairs)
    @settings(max_examples=30, deadline=None)
    def test_join_is_commutative_up_to_reorder(self, a, b):
        out1, schema1 = hash_join(a, ("x", "y"), b, ("y", "z"))
        out2, schema2 = hash_join(b, ("y", "z"), a, ("x", "y"))
        assert reorder(out2, schema2, schema1) == out1


class TestProjectReorder:
    def test_project(self):
        assert project({(1, 2, 3)}, ("x", "y", "z"), ("z", "x")) == {(3, 1)}

    def test_project_deduplicates(self):
        assert project({(1, 2), (1, 3)}, ("x", "y"), ("x",)) == {(1,)}

    def test_reorder_roundtrip(self):
        tuples = {(1, 2), (3, 4)}
        swapped = reorder(tuples, ("x", "y"), ("y", "x"))
        assert swapped == {(2, 1), (4, 3)}
        assert reorder(swapped, ("y", "x"), ("x", "y")) == tuples

    def test_reorder_schema_mismatch(self):
        with pytest.raises(ValueError):
            reorder({(1, 2)}, ("x", "y"), ("x", "z"))
