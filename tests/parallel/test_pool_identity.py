"""Bit-identity across worker pools: the seam's central invariant.

Workers compute, the parent accounts, merges replay the serial order --
so every pool kind at every worker count must produce identical
answers, identical per-server per-round received bits, and identical
capacity-drop truncation.  These tests pin that down for all four
engines and for ``Session.run_many``.
"""

from __future__ import annotations

import pytest

from repro import (
    ClusterConfig,
    Job,
    Session,
    matching_database,
    star_query,
    triangle_query,
    zipf_database,
)
from repro.hypercube import run_hypercube
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan
from repro.core.families import chain_query
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage.manager import StorageManager

POOLS = ("serial", "thread", "process")


def fingerprint(result):
    """Everything that must be bit-identical across pools."""
    report = result.report
    return (
        sorted(result.answers),
        [sorted(r.bits.items()) for r in report.rounds],
        [sorted(r.tuples.items()) for r in report.rounds],
        [sorted(r.dropped_bits.items()) for r in report.rounds],
    )


@pytest.fixture(scope="module")
def triangle_instance():
    q = triangle_query()
    db = matching_database(q, m=400, n=1600, seed=3)
    return q, db


@pytest.fixture(scope="module")
def hypercube_baseline(triangle_instance):
    q, db = triangle_instance
    return fingerprint(run_hypercube(q, db, 8, seed=1, pool="serial"))


@pytest.mark.parametrize("pool", POOLS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_hypercube_identity_across_pools(
    triangle_instance, hypercube_baseline, pool, workers
):
    q, db = triangle_instance
    result = run_hypercube(q, db, 8, seed=1, pool=pool, max_workers=workers)
    assert fingerprint(result) == hypercube_baseline


@pytest.mark.parametrize("pool", ("thread", "process"))
def test_hypercube_identity_with_storage(
    triangle_instance, hypercube_baseline, pool, tmp_path
):
    q, db = triangle_instance
    with StorageManager(root=tmp_path / "spill", chunk_rows=64) as storage:
        result = run_hypercube(
            q, db, 8, seed=1, pool=pool, max_workers=2, storage=storage
        )
        assert fingerprint(result) == hypercube_baseline


@pytest.mark.parametrize("pool", ("thread", "process"))
def test_hypercube_capacity_drop_identity(triangle_instance, pool):
    """Truncation order is part of the contract: same rows dropped."""
    q, db = triangle_instance
    kwargs = dict(seed=1, capacity_bits=3000.0, on_overflow="drop")
    serial = run_hypercube(q, db, 8, pool="serial", **kwargs)
    assert serial.report.dropped_bits > 0  # the cap actually binds
    fanned = run_hypercube(q, db, 8, pool=pool, max_workers=3, **kwargs)
    assert fingerprint(fanned) == fingerprint(serial)


def test_star_skew_identity_serial_vs_process():
    q = star_query(2)
    db = zipf_database(q, m=600, n=600, skew=1.0, seed=2)
    serial = run_star_skew(q, db, 8, seed=1, pool="serial")
    fanned = run_star_skew(q, db, 8, seed=1, pool="process", max_workers=2)
    assert fingerprint(fanned) == fingerprint(serial)


def test_triangle_skew_identity_serial_vs_process():
    q = triangle_query()
    db = zipf_database(q, m=500, n=500, skew=1.0, seed=4)
    serial = run_triangle_skew(db, 4, seed=1, pool="serial")
    fanned = run_triangle_skew(db, 4, seed=1, pool="process", max_workers=2)
    assert fingerprint(fanned) == fingerprint(serial)


@pytest.mark.parametrize("use_storage", (False, True))
def test_multiround_identity_serial_vs_process(tmp_path, use_storage):
    q = chain_query(4)
    db = matching_database(q, m=800, n=3200, seed=5)
    plan = chain_plan(4)
    serial = run_plan(plan, db, 8, seed=1, pool="serial")
    storage = (
        StorageManager(root=tmp_path / "spill", chunk_rows=128)
        if use_storage else None
    )
    try:
        fanned = run_plan(
            plan, db, 8, seed=1, pool="process", max_workers=2,
            storage=storage,
        )
        assert fingerprint(fanned) == fingerprint(serial)
    finally:
        if storage is not None:
            storage.close()


def record_fingerprint(record):
    """A RunRecord's pool-invariant core (wall/phase times vary)."""
    return (
        record.label, record.query, record.strategy, record.p,
        record.seed, record.rounds, record.max_load_bits,
        record.total_bits, record.dropped_bits,
    )


@pytest.mark.parametrize("batch_pool", POOLS)
def test_run_many_identity_across_batch_pools(batch_pool):
    q = triangle_query()
    db = matching_database(q, m=300, n=1200, seed=0)
    jobs = [Job(q, db, label=f"j{i}") for i in range(3)]
    with Session(p=8, seed=0) as session:
        session.run_many(jobs, max_workers=2, pool="serial")
        baseline = [record_fingerprint(r) for r in session.history]
        baseline_answers = [sorted(r.answers) for r in session.run_many(
            jobs, max_workers=2, pool="serial")]
    with Session(p=8, seed=0) as session:
        results = session.run_many(jobs, max_workers=2, pool=batch_pool)
        assert [record_fingerprint(r) for r in session.history] == baseline
        assert [sorted(r.answers) for r in results] == baseline_answers


def test_engine_pool_from_config_identity():
    """ClusterConfig(pool=...) reaches the engines with identical bits."""
    q = triangle_query()
    db = matching_database(q, m=300, n=1200, seed=0)
    runs = {}
    for pool in POOLS:
        with Session(ClusterConfig(p=8, seed=0, pool=pool,
                                   max_workers=2)) as session:
            result = session.run(q, db)
            runs[pool] = (
                sorted(result.answers),
                record_fingerprint(session.history[-1]),
            )
    assert runs["thread"] == runs["serial"]
    assert runs["process"] == runs["serial"]
