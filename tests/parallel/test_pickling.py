"""Everything that crosses the process-pool boundary must pickle.

The spawn-context pool ships tasks and results by pickle; these tests
round-trip every payload type the seam carries, and prove the two
worker bodies (`route_task`, `join_task`) compute identically on a
pickled copy of their task -- the exact situation inside a worker.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import ClusterConfig, Job, RunRecord, matching_database, triangle_query
from repro.storage.chunked import ChunkedRelation
from repro.mpc.simulator import LoadExceededError, MPCSimulation
from repro.multiround.plans import chain_plan
from repro.parallel.tasks import (
    ArraySource,
    JoinTask,
    MaterializedRunResult,
    RouteTask,
    RunJobTask,
    iter_array_sources,
    join_task,
    route_task,
    run_job_task,
)
from repro.planner import DataStatistics
from repro.storage.manager import StorageManager


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def test_cluster_config_roundtrip():
    config = ClusterConfig(
        p=16, seed=7, capacity_bits=1e6, on_overflow="drop",
        pool="process", max_workers=4,
    )
    assert roundtrip(config) == config


def test_job_and_query_roundtrip():
    q = triangle_query()
    db = matching_database(q, m=50, n=200, seed=0)
    job = roundtrip(Job(q, db, strategy="hypercube", label="t"))
    assert job.query == q
    assert job.strategy == "hypercube"
    assert job.label == "t"


def test_plan_and_statistics_roundtrip():
    plan = chain_plan(4)
    assert roundtrip(plan).query == plan.query
    q = triangle_query()
    db = matching_database(q, m=50, n=200, seed=0)
    stats = DataStatistics.from_database(q, db, 8)
    copy = roundtrip(stats)
    assert copy.stats.cardinalities == stats.stats.cardinalities
    assert copy.exact == stats.exact


def test_array_source_roundtrips_rows_and_path(tmp_path):
    rows = np.arange(12, dtype=np.int64).reshape(6, 2)
    by_value = roundtrip(ArraySource(rows=rows))
    np.testing.assert_array_equal(by_value.load(), rows)

    path = tmp_path / "chunk.npy"
    np.save(path, rows)
    by_path = roundtrip(ArraySource(path=str(path)))
    np.testing.assert_array_equal(np.asarray(by_path.load()), rows)


def test_route_task_computes_identically_after_pickle():
    rows = np.array([[1, 2], [3, 4], [5, 6], [7, 8]], dtype=np.int64)
    task = RouteTask(
        tag="R", source=ArraySource(rows=rows),
        dimension_variables=("x", "y"), atom_variables=("x", "y"),
        shares=(2, 2), family_seed=3, exclude=((0, (5,)),),
    )
    tag, base, groups, _ = route_task(task)
    tag2, base2, groups2, _ = route_task(roundtrip(task))
    assert (tag, base) == (tag2, base2) == ("R", 0)
    assert [s for s, _ in groups] == [s for s, _ in groups2]
    for (_, a), (_, b) in zip(groups, groups2):
        np.testing.assert_array_equal(a, b)
    # The exclusion filter dropped the heavy row before routing.
    assert sum(len(batch) for _, batch in groups) == 3


def test_join_task_computes_identically_after_pickle():
    q = triangle_query()
    r = np.array([[1, 2]], dtype=np.int64)
    s = np.array([[2, 3]], dtype=np.int64)
    t = np.array([[3, 1], [3, 1]], dtype=np.int64)  # dup: dedup merges
    names = [atom.relation for atom in q.atoms]
    task = JoinTask(
        server=5, query=q,
        fragments=tuple(
            (name, (ArraySource(rows=batch),))
            for name, batch in zip(names, (r, s, t))
        ),
    )
    server, local, _ = join_task(task)
    server2, local2, _ = join_task(roundtrip(task))
    assert server == server2 == 5
    np.testing.assert_array_equal(local, local2)
    assert len(local) == 1


def test_run_record_with_phase_seconds_roundtrip():
    record = RunRecord(
        label="j", query="triangle", strategy="hypercube", p=8, seed=1,
        rounds=1, max_load_bits=100.0, total_bits=800.0, dropped_bits=0.0,
        predicted_bits=90.0, percentiles={"p50": 90.0},
        wall_seconds=0.01,
        phase_seconds={"generate": 0.001, "route": 0.002},
    )
    copy = roundtrip(record)
    assert copy.phase_seconds == record.phase_seconds
    assert "route" in copy.line()


def test_load_report_roundtrip():
    sim = MPCSimulation(p=4, value_bits=32)
    sim.begin_round()
    sim.send(0, "R", [(1, 2)])
    sim.end_round()
    report = roundtrip(sim.report)
    assert report.max_load_bits == 64
    assert report.num_rounds == 1


def test_load_exceeded_error_roundtrip():
    sim = MPCSimulation(p=2, value_bits=32, capacity_bits=10,
                        on_overflow="fail")
    sim.begin_round()
    with pytest.raises(LoadExceededError) as info:
        sim.send(0, "R", [(1, 2)])
    error = roundtrip(info.value)
    assert isinstance(error, LoadExceededError)
    assert str(error) == str(info.value)


def test_storage_manager_handle_survives_pickle(tmp_path):
    """A pickled manager is a read-only handle on the same spill dir."""
    rows = np.array([(i, i + 1) for i in range(10)], dtype=np.int64)
    with StorageManager(root=tmp_path / "spill", chunk_rows=4) as storage:
        chunked = ChunkedRelation.from_array("R", rows, storage=storage)
        handle = roundtrip(storage)
        assert str(handle.root) == str(storage.root)
        # The handle does not own the directory: dropping it must not
        # delete the parent's spill files.
        del handle
        import gc

        gc.collect()
        np.testing.assert_array_equal(chunked.to_array(), rows)


def test_iter_array_sources_yields_paths_for_chunked(tmp_path):
    rows = np.array([(i, i + 1) for i in range(10)], dtype=np.int64)
    with StorageManager(root=tmp_path / "spill", chunk_rows=4) as storage:
        chunked = ChunkedRelation.from_array("R", rows, storage=storage)
        sources = list(iter_array_sources(chunked))
        # Spilled chunks cross as paths (an in-memory tail may remain).
        assert sum(s.path is not None for s in sources) >= 2
        stacked = np.concatenate([np.asarray(s.load()) for s in sources])
        np.testing.assert_array_equal(stacked, rows)


def test_run_job_task_roundtrips_and_executes():
    q = triangle_query()
    db = matching_database(q, m=40, n=160, seed=0)
    task = roundtrip(RunJobTask(
        config=ClusterConfig(p=4, seed=0),
        job=Job(q, db, label="probe"),
        index=0,
    ))
    result, record, error, metrics = run_job_task(task)
    assert error is None
    assert metrics is None  # config did not enable metrics
    assert isinstance(result, MaterializedRunResult)
    assert record.label == "probe"
    # The materialized result survives another pickle hop (the trip
    # back from the worker) with answers intact.
    copy = roundtrip(result)
    assert copy.answers == result.answers
    assert copy.load_report.max_load_bits == result.load_report.max_load_bits


def test_run_job_task_returns_portable_error():
    q = triangle_query()
    db = matching_database(q, m=10, n=40, seed=0)
    task = RunJobTask(
        config=ClusterConfig(p=4, seed=0),
        job=Job(q, db, strategy="no-such-strategy"),
        index=0,
    )
    result, record, error, metrics = run_job_task(task)
    assert result is None and record is None and metrics is None
    assert error is not None
    assert isinstance(roundtrip(error), Exception)
