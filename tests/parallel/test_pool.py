"""The WorkerPool contract: ordered results, laziness, caching, guard."""

from __future__ import annotations

import pytest

import repro.parallel.pool as pool_mod
from repro.parallel import (
    POOL_KINDS,
    ProcessPool,
    SerialPool,
    ThreadPool,
    default_max_workers,
    get_pool,
    in_worker,
)
from repro.parallel.pool import _worker_probe


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"task {x} failed")


@pytest.mark.parametrize("kind", POOL_KINDS)
def test_map_preserves_task_order(kind):
    pool = get_pool(kind, 3)
    assert pool.map(_square, range(20)) == [x * x for x in range(20)]


@pytest.mark.parametrize("kind", POOL_KINDS)
def test_imap_preserves_task_order(kind):
    pool = get_pool(kind, 3)
    assert list(pool.imap(_square, range(20))) == [x * x for x in range(20)]


def test_serial_imap_is_lazy():
    consumed = []

    def tasks():
        for x in range(5):
            consumed.append(x)
            yield x

    it = SerialPool().imap(_square, tasks())
    assert consumed == []
    assert next(it) == 0
    assert consumed == [0]
    assert next(it) == 1
    assert consumed == [0, 1]


def test_executor_imap_bounds_prefetch():
    """imap keeps at most 2*max_workers tasks in flight."""
    pool = ThreadPool(max_workers=2)
    try:
        consumed = []

        def tasks():
            for x in range(100):
                consumed.append(x)
                yield x

        it = pool.imap(_square, tasks())
        assert next(it) == 0
        # One result consumed: at most prefetch + 1 tasks were pulled.
        assert len(consumed) <= 2 * pool.max_workers + 1
        assert list(it) == [x * x for x in range(1, 100)]
    finally:
        pool.close()


def test_get_pool_caches_by_kind_and_workers():
    a = get_pool("thread", 2)
    b = get_pool("thread", 2)
    c = get_pool("thread", 3)
    assert a is b
    assert a is not c


def test_get_pool_serial_is_shared_singleton():
    assert get_pool("serial") is get_pool("serial", 4)
    assert isinstance(get_pool("serial", 4), SerialPool)


def test_get_pool_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown pool kind"):
        get_pool("greenlet")


def test_get_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="max_workers"):
        get_pool("thread", 0)


def test_default_max_workers_positive():
    assert default_max_workers() >= 1


def test_task_exception_propagates_with_message():
    pool = get_pool("thread", 2)
    with pytest.raises(RuntimeError, match="task 0 failed"):
        pool.map(_boom, range(4))


def test_parent_is_not_a_worker():
    assert in_worker() is False


def test_nested_fanout_degrades_to_serial_in_worker():
    """Inside a process worker, get_pool('process') must go serial."""
    pool = get_pool("process", 2)
    results = pool.map(_worker_probe, range(2))
    assert results == [(True, "serial"), (True, "serial")]


def test_worker_guard_simulation():
    """The guard logic itself, without spawning: _IN_WORKER forces serial."""
    assert get_pool("process", 2).kind == "process"
    pool_mod._IN_WORKER = True
    try:
        assert isinstance(get_pool("process", 2), SerialPool)
        assert isinstance(get_pool("thread", 2), SerialPool)
    finally:
        pool_mod._IN_WORKER = False


def test_pool_repr_mentions_workers():
    assert "max_workers=3" in repr(ProcessPool(max_workers=3))
