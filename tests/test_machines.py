"""MachineSpec: parsing, describe round-trips, defaults and resolution."""

from __future__ import annotations

import pytest

from repro import MachineSpec, default_machines, use_machines
from repro.config import ExecutionSettings, resolve_machines


class TestMachineSpec:
    def test_uniform_is_degenerate(self):
        spec = MachineSpec.uniform(8)
        assert spec.p == 8
        assert spec.is_uniform
        assert spec.speeds == (1.0,) * 8
        assert spec.total_speed == 8.0
        assert spec.min_speed == spec.max_speed == 1.0

    def test_parse_count_groups(self):
        spec = MachineSpec.parse("4x1,4x2")
        assert spec.speeds == (1.0,) * 4 + (2.0,) * 4
        assert not spec.is_uniform

    def test_parse_bare_speeds(self):
        assert MachineSpec.parse("1,2,4").speeds == (1.0, 2.0, 4.0)

    def test_parse_accepts_plus_separator(self):
        assert MachineSpec.parse("4x1+4x2") == MachineSpec.parse("4x1,4x2")

    def test_describe_parse_round_trip(self):
        for text in ("4x1+4x2", "1+2+4", "3x0.5+2+2x8", "1"):
            spec = MachineSpec.parse(text)
            assert MachineSpec.parse(spec.describe()) == spec

    def test_describe_run_length_form(self):
        assert MachineSpec.parse("4x1,4x2").describe() == "4x1+4x2"
        assert MachineSpec.uniform(8).describe() == "8x1"
        assert MachineSpec((1.0,)).describe() == "1"

    @pytest.mark.parametrize("bad", ("", "4x", "x2", "0x1", "-1x2", "1,,2",
                                     "4xfast", "1,0", "1,-2", "1,inf"))
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            MachineSpec.parse(bad)

    def test_speeds_must_be_positive_finite(self):
        with pytest.raises(ValueError):
            MachineSpec((1.0, 0.0))
        with pytest.raises(ValueError):
            MachineSpec((float("nan"),))
        with pytest.raises(ValueError):
            MachineSpec(())

    def test_modular_extension_past_p(self):
        spec = MachineSpec.parse("1,4")
        assert spec.speed(0) == 1.0
        assert spec.speed(1) == 4.0
        # Block servers beyond p live on the same physical machines.
        assert spec.speed(2) == 1.0
        assert spec.speed(7) == 4.0

    def test_cycle_to_repeats_pattern(self):
        spec = MachineSpec.parse("1,4").cycle_to(5)
        assert spec.speeds == (1.0, 4.0, 1.0, 4.0, 1.0)
        assert MachineSpec.parse("2x1").cycle_to(1).speeds == (1.0,)

    def test_cycle_to_carries_capacities(self):
        spec = MachineSpec((1.0, 2.0), capacities=(100.0, None)).cycle_to(4)
        assert spec.capacities == (100.0, None, 100.0, None)

    def test_capacities_validated(self):
        spec = MachineSpec((1.0, 2.0), capacities=(50.0, None))
        assert spec.capacity(0) == 50.0
        assert spec.capacity(1) is None
        assert spec.capacity(2) == 50.0  # modular, like speed()
        with pytest.raises(ValueError):
            MachineSpec((1.0,), capacities=(1.0, 2.0))
        with pytest.raises(ValueError):
            MachineSpec((1.0,), capacities=(0.0,))

    def test_weights_are_speed_proportional(self):
        spec = MachineSpec.parse("1,3")
        assert spec.weights() == (0.25, 0.75)
        assert spec.weights(4) == (0.125, 0.375, 0.125, 0.375)
        assert sum(spec.weights(7)) == pytest.approx(1.0)

    def test_speed_classes(self):
        spec = MachineSpec.parse("2x4,2x1")
        assert spec.speed_classes() == {1.0: (2, 3), 4.0: (0, 1)}

    def test_hashable_for_memo_keys(self):
        a = MachineSpec.parse("4x1,4x2")
        b = MachineSpec.parse("4x1+4x2")
        assert hash(a) == hash(b) and a == b


class TestResolveMachines:
    def test_none_stays_none(self):
        assert resolve_machines(None, 8) is None

    def test_explicit_spec_must_match_p(self):
        spec = MachineSpec.parse("4x1,4x2")
        assert resolve_machines(spec, 8) is spec
        with pytest.raises(ValueError):
            resolve_machines(spec, 16)

    def test_default_pattern_cycles_to_p(self):
        with use_machines("1,4"):
            assert default_machines() == MachineSpec.parse("1,4")
            resolved = resolve_machines(None, 6)
            assert resolved.speeds == (1.0, 4.0) * 3
        assert default_machines() is None

    def test_use_machines_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_machines("2x1,2x2"):
                raise RuntimeError("boom")
        assert default_machines() is None

    def test_settings_reject_non_spec(self):
        with pytest.raises(TypeError):
            ExecutionSettings(machines="4x1,4x2")
        spec = MachineSpec.parse("4x1,4x2")
        assert ExecutionSettings(machines=spec).machines is spec
