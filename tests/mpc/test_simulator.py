"""Tests for the MPC simulator's accounting and semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc.simulator import LoadExceededError, MPCSimulation
from repro.storage import StorageManager


class TestBitAccounting:
    def test_bits_default_to_arity_times_value_bits(self):
        sim = MPCSimulation(p=4, value_bits=10)
        sim.begin_round()
        sim.send(2, "S1", [(1, 2), (3, 4), (5, 6)])
        load = sim.end_round()
        assert load.bits[2] == 3 * 2 * 10
        assert load.tuples[2] == 3

    def test_bits_override(self):
        sim = MPCSimulation(p=2, value_bits=10)
        sim.begin_round()
        sim.send(0, "S1", [(1,)], bits_per_tuple=100)
        load = sim.end_round()
        assert load.bits[0] == 100

    def test_max_load_is_over_rounds_and_servers(self):
        sim = MPCSimulation(p=3, value_bits=1)
        sim.begin_round()
        sim.send(0, "a", [(1, 1)])  # 2 bits
        sim.end_round()
        sim.begin_round()
        sim.send(1, "a", [(1, 1), (2, 2), (3, 3)])  # 6 bits
        sim.end_round()
        assert sim.report.max_load_bits == 6
        assert sim.report.num_rounds == 2
        assert sim.report.round_max_bits(0) == 2

    def test_total_and_replication(self):
        sim = MPCSimulation(p=2, value_bits=1)
        sim.begin_round()
        sim.send(0, "a", [(1, 1)])
        sim.send(1, "a", [(1, 1)])
        sim.end_round()
        assert sim.report.total_bits == 4
        assert sim.report.replication_rate(input_bits=2.0) == 2.0
        with pytest.raises(ValueError):
            sim.report.replication_rate(0)

    def test_server_total_bits(self):
        sim = MPCSimulation(p=2, value_bits=1)
        for _ in range(3):
            sim.begin_round()
            sim.send(1, "a", [(1,)])
            sim.end_round()
        assert sim.report.server_total_bits(1) == 3
        assert sim.report.server_total_bits(0) == 0


class TestSemantics:
    def test_state_persists_across_rounds(self):
        sim = MPCSimulation(p=2, value_bits=1)
        sim.begin_round()
        sim.send(0, "S", [(1, 2)])
        sim.end_round()
        sim.begin_round()
        sim.send(0, "S", [(3, 4)])
        sim.end_round()
        assert sim.state(0)["S"] == {(1, 2), (3, 4)}

    def test_broadcast(self):
        sim = MPCSimulation(p=3, value_bits=1)
        sim.begin_round()
        sim.broadcast("S", [(7, 8)])
        load = sim.end_round()
        assert all(sim.state(s)["S"] == {(7, 8)} for s in range(3))
        assert load.total_bits == 3 * 2

    def test_outputs_union(self):
        sim = MPCSimulation(p=3, value_bits=1)
        sim.output(0, [(1,)])
        sim.output(1, [(2,)])
        sim.output(2, [(1,)])
        assert sim.outputs() == {(1,), (2,)}
        assert sim.outputs_of(0) == {(1,)}
        assert sim.output_counts() == [1, 1, 1]

    def test_clear_all(self):
        sim = MPCSimulation(p=2, value_bits=1)
        sim.begin_round()
        sim.send(0, "S", [(1, 2)])
        sim.send(0, "T", [(3, 4)])
        sim.end_round()
        sim.clear_all("S")
        assert sim.state(0).get("S") is None
        assert sim.state(0)["T"] == {(3, 4)}
        sim.clear_all()
        assert sim.state(0) == {}

    def test_empty_send_costs_nothing(self):
        sim = MPCSimulation(p=1, value_bits=8)
        sim.begin_round()
        sim.send(0, "S", [])
        load = sim.end_round()
        assert load.total_bits == 0


class TestProtocolErrors:
    def test_send_outside_round(self):
        sim = MPCSimulation(p=1, value_bits=1)
        with pytest.raises(RuntimeError, match="outside a round"):
            sim.send(0, "S", [(1,)])

    def test_double_begin(self):
        sim = MPCSimulation(p=1, value_bits=1)
        sim.begin_round()
        with pytest.raises(RuntimeError, match="already inside"):
            sim.begin_round()

    def test_end_without_begin(self):
        sim = MPCSimulation(p=1, value_bits=1)
        with pytest.raises(RuntimeError, match="no round"):
            sim.end_round()

    def test_bad_destination(self):
        sim = MPCSimulation(p=2, value_bits=1)
        sim.begin_round()
        with pytest.raises(ValueError, match="destination"):
            sim.send(5, "S", [(1,)])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MPCSimulation(p=0, value_bits=1)
        with pytest.raises(ValueError):
            MPCSimulation(p=1, value_bits=0)
        with pytest.raises(ValueError):
            MPCSimulation(p=1, value_bits=1, on_overflow="explode")


class TestCapacity:
    def test_fail_mode_raises(self):
        # Delivery is streaming, so the overflow surfaces at the send
        # that breaches the cap (still inside the round).
        sim = MPCSimulation(p=1, value_bits=10, capacity_bits=25)
        sim.begin_round()
        with pytest.raises(LoadExceededError) as err:
            sim.send(0, "S", [(1,), (2,), (3,)])  # 30 bits > 25
        assert err.value.server == 0
        assert err.value.round_index == 1

    def test_drop_mode_truncates(self):
        sim = MPCSimulation(
            p=1, value_bits=10, capacity_bits=25, on_overflow="drop"
        )
        sim.begin_round()
        sim.send(0, "S", [(1,), (2,), (3,)])
        load = sim.end_round()
        assert load.bits[0] == 20  # two tuples fit
        assert len(sim.state(0)["S"]) == 2
        assert sim.report.dropped_bits == 10

    def test_capacity_is_per_round(self):
        sim = MPCSimulation(
            p=1, value_bits=10, capacity_bits=15, on_overflow="drop"
        )
        for _ in range(2):
            sim.begin_round()
            sim.send(0, "S", [(1,), (2,)])
            sim.end_round()
        # One tuple delivered per round.
        assert sim.report.max_load_bits == 10
        assert sim.report.dropped_bits == 20

    def test_under_capacity_untouched(self):
        sim = MPCSimulation(p=1, value_bits=10, capacity_bits=100)
        sim.begin_round()
        sim.send(0, "S", [(1,), (2,)])
        load = sim.end_round()
        assert load.bits[0] == 20
        assert sim.report.dropped_bits == 0


class TestReportSummary:
    def test_summary_mentions_rounds(self):
        sim = MPCSimulation(p=2, value_bits=1)
        sim.begin_round()
        sim.send(0, "S", [(1,)])
        sim.end_round()
        text = sim.report.summary()
        assert "p=2" in text and "round 1" in text


class TestLoadPercentiles:
    @staticmethod
    def _skewed_report(p=100):
        # Server s receives s bits in round 1; server 0 gets a huge
        # round-2 spike, so per-server maxima are [1000, 1, ..., 99].
        sim = MPCSimulation(p=p, value_bits=1)
        sim.begin_round()
        for s in range(1, p):
            sim.send(s, "S", [(1,)], bits_per_tuple=float(s))
        sim.end_round()
        sim.begin_round()
        sim.send(0, "S", [(9,)], bits_per_tuple=1000.0)
        sim.end_round()
        return sim.report

    def test_matches_manual_numpy(self):
        report = self._skewed_report()
        expected = np.array([1000.0] + [float(s) for s in range(1, 100)])
        assert np.array_equal(np.sort(report.server_bits_array()),
                              np.sort(expected))
        pct = report.load_percentiles()
        assert pct["max"] == report.max_load_bits == 1000.0
        assert pct["p50"] == float(np.percentile(expected, 50))
        assert pct["p90"] == float(np.percentile(expected, 90))
        assert pct["p99"] == float(np.percentile(expected, 99))
        # The heavy hitter detaches max from p99 -- the skew signal.
        assert pct["max"] > pct["p99"]

    def test_round_slice(self):
        report = self._skewed_report(p=4)
        round_one = report.server_bits_array(round_index=0)
        assert round_one.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_zero_load_servers_count(self):
        sim = MPCSimulation(p=10, value_bits=1)
        sim.begin_round()
        sim.send(3, "S", [(1,)], bits_per_tuple=100.0)
        sim.end_round()
        pct = sim.report.load_percentiles()
        assert pct["p50"] == 0.0  # nine idle servers dominate
        assert pct["max"] == 100.0

    def test_empty_report(self):
        sim = MPCSimulation(p=3, value_bits=1)
        pct = sim.report.load_percentiles()
        assert pct == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_summary_includes_percentiles(self):
        report = self._skewed_report()
        text = report.summary()
        assert "p50" in text and "p99" in text and "max" in text


class TestStorageSpooling:
    def test_array_fragments_spill_and_merge(self, tmp_path):
        with StorageManager(root=tmp_path, chunk_rows=4) as storage:
            sim = MPCSimulation(p=2, value_bits=8, storage=storage)
            sim.begin_round()
            rows = np.arange(40).reshape(20, 2)
            sim.send_array(0, "R", rows[:12])
            sim.send_array(0, "R", rows[12:])
            load = sim.end_round()
            assert load.bits[0] == 20 * 2 * 8
            assert storage.bytes_spilled > 0
            merged = sim.array_state(0)["R"]
            assert np.array_equal(merged, rows)

    def test_outputs_spill(self, tmp_path):
        with StorageManager(root=tmp_path, chunk_rows=4) as storage:
            sim = MPCSimulation(p=2, value_bits=8, storage=storage)
            rows = np.arange(30).reshape(15, 2)
            sim.output_array(0, rows[:10])
            sim.output_array(0, rows[10:])
            sim.output_array(1, rows[:2])
            assert sim.output_rows_total() == 17
            assert sim.outputs_of(1) == {(0, 1), (2, 3)}
            assert np.array_equal(sim.outputs_array(2), rows)

    def test_clear_drops_spool_files(self, tmp_path):
        with StorageManager(root=tmp_path, chunk_rows=2) as storage:
            sim = MPCSimulation(p=1, value_bits=8, storage=storage)
            sim.begin_round()
            sim.send_array(0, "R", np.arange(20).reshape(10, 2))
            sim.end_round()
            assert list(storage.root.glob("*.npy"))
            sim.clear_all()
            assert not list(storage.root.glob("*.npy"))
            assert sim.array_state(0) == {}
