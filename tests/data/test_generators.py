"""Tests for the synthetic data generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import chain_query, simple_join_query, star_query, triangle_query
from repro.data.generators import (
    degree_sequence_database,
    degree_sequence_relation,
    layered_path_database,
    layered_path_graph,
    matching_database,
    matching_relation,
    planted_heavy_hitter_database,
    random_graph_edges,
    triangle_database_from_edges,
    uniform_database,
    uniform_relation,
    zipf_relation,
)


class TestMatching:
    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=40, deadline=None)
    def test_matching_invariants(self, m, arity, seed):
        n = max(m, 1) * 2
        r = matching_relation("R", arity, m, n, seed)
        assert len(r) == m
        assert r.is_matching()

    def test_matching_requires_domain(self):
        with pytest.raises(ValueError):
            matching_relation("R", 2, 10, 5)

    def test_matching_database(self):
        q = triangle_query()
        d = matching_database(q, 50, 200, seed=1)
        assert d.is_matching_database()
        assert all(len(d[r]) == 50 for r in q.relation_names)

    def test_matching_database_per_relation_sizes(self):
        q = chain_query(2)
        d = matching_database(q, {"S1": 5, "S2": 9}, 100, seed=2)
        assert len(d["S1"]) == 5
        assert len(d["S2"]) == 9

    def test_matching_database_missing_size(self):
        with pytest.raises(ValueError, match="missing"):
            matching_database(chain_query(2), {"S1": 5}, 100)

    def test_deterministic_under_seed(self):
        q = chain_query(3)
        d1 = matching_database(q, 20, 100, seed=7)
        d2 = matching_database(q, 20, 100, seed=7)
        for name in q.relation_names:
            assert d1[name] == d2[name]


class TestUniform:
    def test_uniform_distinct(self):
        r = uniform_relation("R", 2, 100, 50, seed=3)
        assert len(r) == 100

    def test_uniform_capacity_check(self):
        with pytest.raises(ValueError):
            uniform_relation("R", 1, 11, 10)

    def test_uniform_database(self):
        q = simple_join_query()
        d = uniform_database(q, 30, 40, seed=4)
        assert all(len(d[r]) == 30 for r in q.relation_names)


class TestZipf:
    def test_zipf_is_skewed(self):
        r = zipf_relation("R", 2, 2000, 10_000, skew=1.2, seed=5)
        # Rank-1 value should be far heavier than the median value.
        hist = r.degrees((0,))
        top = max(hist.values())
        assert top > 20  # strongly skewed head

    def test_zipf_skew_positions(self):
        r = zipf_relation("R", 2, 500, 5000, skew=1.5, seed=6, skew_positions=(0,))
        assert r.max_degree((0,)) > r.max_degree((1,)) * 2

    def test_zipf_saturation_is_graceful(self):
        # n=1 forces a single value; only one distinct unary tuple exists.
        r = zipf_relation("R", 1, 10, 1, seed=7)
        assert len(r) == 1


class TestPlantedHitters:
    def test_example_4_1_all_tuples_share_z(self):
        q = simple_join_query()  # S1(x,z), S2(y,z)
        d = planted_heavy_hitter_database(q, 100, 1000, "z", 1.0, 7, seed=8)
        for name in ("S1", "S2"):
            assert d[name].degree((1,), (7,)) == len(d[name])

    def test_partial_fraction(self):
        q = simple_join_query()
        d = planted_heavy_hitter_database(q, 200, 4000, "z", 0.25, 3, seed=9)
        heavy = d["S1"].degree((1,), (3,))
        assert heavy == pytest.approx(50, abs=2)
        # The other values remain light.
        others = {
            v: c for (v,), c in d["S1"].degrees((1,)).items() if v != 3
        }
        assert max(others.values(), default=0) <= 2

    def test_relations_without_variable_are_matchings(self):
        q = chain_query(3)
        d = planted_heavy_hitter_database(q, 40, 400, "x1", 1.0, 5, seed=10)
        assert d["S3"].is_matching()
        assert d["S1"].degree((1,), (5,)) == 40

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_database(
                simple_join_query(), 10, 100, "z", 1.5
            )


class TestDegreeSequences:
    def test_exact_frequencies(self):
        freq = {3: 10, 8: 5, 2: 1}
        r = degree_sequence_relation("R", 2, 0, freq, 100, seed=11)
        assert len(r) == 16
        for value, count in freq.items():
            assert r.degree((0,), (value,)) == count
        # Non-keyed positions stay light (injection).
        assert r.max_degree((1,)) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            degree_sequence_relation("R", 2, 0, {0: 11}, 10)
        with pytest.raises(ValueError):
            degree_sequence_relation("R", 2, 0, {99: 1}, 10)
        with pytest.raises(IndexError):
            degree_sequence_relation("R", 2, 5, {0: 1}, 10)

    def test_star_database_from_degrees(self):
        q = star_query(2)
        freqs = {"S1": {0: 20, 1: 5}, "S2": {0: 10, 2: 3}}
        d = degree_sequence_database(q, "z", freqs, 200, seed=12)
        assert d["S1"].degree((0,), (0,)) == 20
        assert d["S2"].degree((0,), (2,)) == 3

    def test_star_database_validation(self):
        q = chain_query(2)
        with pytest.raises(KeyError):
            degree_sequence_database(q, "x1", {"S1": {0: 1}}, 10)
        with pytest.raises(ValueError):
            degree_sequence_database(
                q, "x0", {"S1": {0: 1}, "S2": {0: 1}}, 10
            )


class TestGraphs:
    def test_layered_path_graph_shape(self):
        edges, num_vertices = layered_path_graph(4, 10, seed=13)
        assert num_vertices == 50
        assert len(edges) == 40
        # Every left endpoint in layer i, right endpoint in layer i+1.
        for u, v in edges:
            assert v // 10 == u // 10 + 1

    def test_layered_path_database_is_matching(self):
        d = layered_path_database(3, 8, seed=14)
        assert set(d.relation_names) == {"S1", "S2", "S3"}
        assert d.is_matching_database()
        assert all(len(d[r]) == 8 for r in d.relation_names)

    def test_layered_components_are_paths(self):
        import networkx as nx

        edges, num_vertices = layered_path_graph(5, 6, seed=15)
        g = nx.Graph(edges)
        g.add_nodes_from(range(num_vertices))
        components = list(nx.connected_components(g))
        assert len(components) == 6
        assert all(len(c) == 6 for c in components)

    def test_random_graph_edges(self):
        edges = random_graph_edges(20, 50, seed=16)
        assert len(edges) == 50
        assert all(u < v for u, v in edges)
        with pytest.raises(ValueError):
            random_graph_edges(3, 10)

    def test_triangle_database_symmetric(self):
        edges = {(0, 1), (1, 2), (0, 2)}
        d = triangle_database_from_edges(edges, 3)
        assert len(d["S1"]) == 6
        assert (1, 0) in d["S1"]

    def test_layered_validation(self):
        with pytest.raises(ValueError):
            layered_path_graph(0, 5)


class TestColumnarBackends:
    """The vectorized (``backend="numpy"``) matching / zipf generators."""

    def test_matching_numpy_invariants(self):
        r = matching_relation("R", 3, 500, 2000, seed=11, backend="numpy")
        assert len(r) == 500
        assert r.is_matching()
        arr = r.to_array()
        assert arr.shape == (500, 3)
        assert 0 <= arr.min() and arr.max() < 2000

    def test_matching_numpy_deterministic(self):
        a = matching_relation("R", 2, 200, 1000, seed=1, backend="numpy")
        b = matching_relation("R", 2, 200, 1000, seed=1, backend="numpy")
        c = matching_relation("R", 2, 200, 1000, seed=2, backend="numpy")
        assert a == b
        assert a != c

    def test_matching_numpy_empty(self):
        r = matching_relation("R", 2, 0, 10, backend="numpy")
        assert len(r) == 0

    def test_matching_numpy_database(self):
        q = triangle_query()
        d = matching_database(q, 100, 500, seed=3, backend="numpy")
        assert d.is_matching_database()
        assert all(len(d[r]) == 100 for r in q.relation_names)
        d2 = matching_database(q, 100, 500, seed=3, backend="numpy")
        for name in q.relation_names:
            assert d[name] == d2[name]
        # Independent streams per relation: relations must differ.
        assert d["S1"] != d["S2"].renamed("S1")

    def test_zipf_numpy_is_skewed(self):
        r = zipf_relation("R", 2, 2000, 10_000, skew=1.2, seed=5,
                          backend="numpy")
        assert len(r) <= 2000
        top = max(r.degrees((0,)).values())
        assert top > 20

    def test_zipf_numpy_skew_positions(self):
        r = zipf_relation("R", 2, 500, 5000, skew=1.5, seed=6,
                          skew_positions=(0,), backend="numpy")
        assert r.max_degree((0,)) > r.max_degree((1,)) * 2

    def test_zipf_numpy_saturation_is_graceful(self):
        r = zipf_relation("R", 1, 10, 1, seed=7, backend="numpy")
        assert len(r) == 1

    def test_zipf_numpy_deterministic(self):
        a = zipf_relation("R", 2, 300, 1000, skew=1.0, seed=9, backend="numpy")
        b = zipf_relation("R", 2, 300, 1000, skew=1.0, seed=9, backend="numpy")
        assert a == b

    def test_zipf_numpy_database_domain(self):
        from repro.data.generators import zipf_database

        q = star_query(2)
        d = zipf_database(q, m=400, n=400, skew=1.0, seed=4, backend="numpy")
        for name in q.relation_names:
            arr = d[name].to_array()
            assert arr.max() < 400 and arr.min() >= 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            matching_relation("R", 2, 10, 20, backend="jax")
        with pytest.raises(ValueError, match="backend"):
            zipf_relation("R", 2, 10, 20, backend="jax")
