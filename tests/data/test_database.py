"""Tests for Database instances."""

from __future__ import annotations

import pytest

from repro.core.families import chain_query, triangle_query
from repro.data.database import Database
from repro.data.relation import Relation


def db(domain=10, **relations):
    rels = [Relation(name, len(next(iter(ts))) if ts else 2, ts)
            for name, ts in relations.items()]
    return Database(rels, domain)


class TestConstruction:
    def test_duplicate_relation_rejected(self):
        r = Relation("R", 1, [(1,)])
        with pytest.raises(ValueError, match="duplicate"):
            Database([r, r], 10)

    def test_domain_violation_rejected(self):
        r = Relation("R", 1, [(10,)])
        with pytest.raises(ValueError, match="outside domain"):
            Database([r], 10)

    def test_container_protocol(self):
        d = db(S1={(1, 2)}, S2={(2, 3)})
        assert "S1" in d and "nope" not in d
        assert len(d) == 2
        assert d["S1"].tuples == {(1, 2)}
        assert {r.name for r in d} == {"S1", "S2"}

    def test_relation_lookup_error(self):
        d = db(S1={(1, 2)})
        with pytest.raises(KeyError):
            d.relation("S9")


class TestValidation:
    def test_validate_for_query(self):
        q = chain_query(2)
        d = db(S1={(1, 2)}, S2={(2, 3)})
        d.validate_for(q)  # should not raise

    def test_missing_relation(self):
        q = chain_query(2)
        d = db(S1={(1, 2)})
        with pytest.raises(KeyError):
            d.validate_for(q)

    def test_arity_mismatch(self):
        q = chain_query(1)  # S1 binary
        d = Database([Relation("S1", 1, [(1,)])], 10)
        with pytest.raises(ValueError, match="arity"):
            d.validate_for(q)


class TestDerived:
    def test_statistics(self):
        q = chain_query(2)
        d = db(S1={(1, 2), (3, 4)}, S2={(2, 3)})
        stats = d.statistics(q)
        assert stats.tuples("S1") == 2
        assert stats.tuples("S2") == 1
        assert stats.domain_size == 10

    def test_matching_detection(self):
        d1 = db(S1={(1, 2), (3, 4)}, S2={(5, 6)})
        assert d1.is_matching_database()
        d2 = db(S1={(1, 2), (1, 4)})
        assert not d2.is_matching_database()

    def test_with_relation_and_restrict(self):
        d = db(S1={(1, 2)})
        d2 = d.with_relation(Relation("S2", 2, [(3, 4)]))
        assert "S2" in d2 and "S2" not in d
        d3 = d2.restrict(["S2"])
        assert len(d3) == 1
        with pytest.raises(KeyError):
            d2.restrict(["S9"])

    def test_renamed(self):
        d = db(S1={(1, 2)})
        d2 = d.renamed({"S1": "R"})
        assert "R" in d2 and "S1" not in d2

    def test_total_tuples(self):
        d = db(S1={(1, 2), (3, 4)}, S2={(2, 3)})
        assert d.total_tuples() == 3

    def test_triangle_schema_roundtrip(self):
        q = triangle_query()
        d = db(S1={(1, 2)}, S2={(2, 3)}, S3={(3, 1)})
        stats = d.statistics(q)
        assert stats.total_tuples == 3
