"""Storage-backed generation: chunked relations born on disk.

The generators' out-of-core contract: with ``storage=`` they produce
:class:`ChunkedRelation` instances written chunk-by-chunk (the matching
generator in O(chunk) memory via Feistel-permutation columns), with the
same distributional invariants as their in-memory streams --
injective columns for matchings, distinct zipf rows -- deterministic
per seed, and valid against the domain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.families import star_query, triangle_query
from repro.data.arrays import unique_rows
from repro.data.generators import (
    matching_database,
    matching_relation,
    zipf_database,
    zipf_relation,
)
from repro.storage import ChunkedRelation, StorageManager


@pytest.fixture
def storage(tmp_path):
    manager = StorageManager(root=tmp_path / "spill", chunk_rows=128)
    yield manager
    manager.close()


class TestMatchingStorage:
    def test_is_a_chunked_matching(self, storage):
        rel = matching_relation("R", 3, 900, 1000, seed=5, storage=storage)
        assert isinstance(rel, ChunkedRelation)
        assert len(rel) == 900
        assert rel.spilled_chunks > 0
        arr = rel.to_array()
        for column in range(3):
            assert len(np.unique(arr[:, column])) == 900  # injection
        assert arr.min() >= 0 and arr.max() < 1000
        assert rel.is_matching()

    def test_deterministic_per_seed(self, storage):
        a = matching_relation("R", 2, 300, 400, seed=11, storage=storage)
        b = matching_relation("R", 2, 300, 400, seed=11, storage=storage)
        c = matching_relation("R", 2, 300, 400, seed=12, storage=storage)
        assert np.array_equal(a.to_array(), b.to_array())
        assert not np.array_equal(a.to_array(), c.to_array())

    def test_chunk_memory_bound(self, storage):
        # The streaming path buffers at most one chunk: every closed
        # chunk is exactly chunk_rows tall and already on disk.
        rel = matching_relation(
            "R", 2, 1000, 1000, seed=0, storage=storage, chunk_rows=100
        )
        assert rel.num_chunks == 10
        assert rel.spilled_chunks >= 9
        chunks = list(rel.chunks())
        assert all(len(c) == 100 for c in chunks)

    def test_m_equals_n_is_a_permutation(self, storage):
        rel = matching_relation("R", 1, 777, 777, seed=2, storage=storage)
        assert sorted(rel.to_array()[:, 0].tolist()) == list(range(777))

    def test_rejects_m_above_n(self, storage):
        with pytest.raises(ValueError, match="m <= n"):
            matching_relation("R", 2, 10, 5, storage=storage)

    def test_empty(self, storage):
        rel = matching_relation("R", 2, 0, 10, storage=storage)
        assert len(rel) == 0
        assert rel.to_array().shape == (0, 2)

    def test_database_is_valid_and_matching(self, storage):
        query = triangle_query()
        db = matching_database(
            query, m=500, n=800, seed=3, storage=storage, chunk_rows=64
        )
        assert all(
            isinstance(db[name], ChunkedRelation)
            for name in query.relation_names
        )
        assert db.is_matching_database()
        assert db.domain_size == 800
        # Relations draw independent permutations.
        arrays = [db[name].to_array() for name in query.relation_names]
        assert not np.array_equal(arrays[0], arrays[1])


class TestZipfStorage:
    def test_distinct_rows_in_domain(self, storage):
        rel = zipf_relation(
            "Z", 2, 600, 300, skew=1.0, seed=4, storage=storage,
            chunk_rows=100,
        )
        assert isinstance(rel, ChunkedRelation)
        arr = rel.to_array()
        assert len(arr) == 600
        assert len(unique_rows(arr)) == 600
        assert arr.min() >= 0 and arr.max() < 300

    def test_deterministic_per_seed(self, storage):
        a = zipf_relation("Z", 2, 200, 100, seed=9, storage=storage)
        b = zipf_relation("Z", 2, 200, 100, seed=9, storage=storage)
        assert np.array_equal(a.to_array(), b.to_array())

    def test_skew_shows_up(self, storage):
        rel = zipf_relation(
            "Z", 2, 2000, 4000, skew=1.5, seed=1, storage=storage,
            skew_positions=(0,),
        )
        arr = rel.to_array()
        # Rank-0 must dominate a high-rank band under skew=1.5.
        head = int((arr[:, 0] == 0).sum())
        tail = int(((arr[:, 0] >= 2000) & (arr[:, 0] < 3000)).sum())
        assert head > tail

    def test_saturates_gracefully(self, storage):
        # Domain of 4 distinct binary tuples over [2]: asking for more
        # saturates below m without spinning forever.
        rel = zipf_relation("Z", 2, 10, 2, skew=0.5, seed=0, storage=storage)
        arr = rel.to_array()
        assert len(arr) == 4
        assert len(unique_rows(arr)) == 4

    def test_wide_rows_fall_back_to_dense_dedup(self, storage):
        # arity * value_bits > 63 cannot pack; the fallback must still
        # produce distinct in-domain rows.
        rel = zipf_relation(
            "W", 8, 50, 2**9, skew=0.8, seed=6, storage=storage
        )
        arr = rel.to_array()
        assert len(arr) == 50
        assert len(unique_rows(arr)) == 50

    def test_database(self, storage):
        query = star_query(2)
        db = zipf_database(
            query, m=300, n=150, skew=1.0, seed=2, storage=storage
        )
        assert all(
            isinstance(db[name], ChunkedRelation)
            for name in query.relation_names
        )
