"""Tests for the Relation data type."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation, relation_from_pairs

pairs = st.sets(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=0, max_size=30
)


def rel(tuples, name="R", arity=2):
    return Relation(name, arity, tuples)


class TestConstruction:
    def test_deduplicates(self):
        r = rel([(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2

    def test_arities_checked(self):
        with pytest.raises(ValueError):
            Relation("R", 2, [(1, 2, 3)])
        with pytest.raises(ValueError):
            Relation("R", 0, [])

    def test_container_protocol(self):
        r = rel([(1, 2)])
        assert (1, 2) in r
        assert (2, 1) not in r
        assert list(r) == [(1, 2)]

    def test_equality_and_hash(self):
        a = rel([(1, 2), (3, 4)])
        b = rel([(3, 4), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != rel([(1, 2)])

    def test_sorted_tuples_deterministic(self):
        r = rel([(3, 4), (1, 2), (1, 1)])
        assert r.sorted_tuples() == [(1, 1), (1, 2), (3, 4)]


class TestDegrees:
    def test_degree_single_position(self):
        r = rel([(1, 2), (1, 3), (2, 3)])
        assert r.degree((0,), (1,)) == 2
        assert r.degree((0,), (9,)) == 0

    def test_degree_pair(self):
        r = rel([(1, 2), (1, 3)])
        assert r.degree((0, 1), (1, 2)) == 1

    def test_degrees_histogram(self):
        r = rel([(1, 2), (1, 3), (2, 3)])
        assert dict(r.degrees((1,))) == {(2,): 1, (3,): 2}

    def test_max_degree(self):
        r = rel([(1, 2), (1, 3), (2, 3)])
        assert r.max_degree((0,)) == 2
        assert rel([]).max_degree((0,)) == 0

    def test_heavy_hitters(self):
        r = rel([(1, 2), (1, 3), (1, 4), (2, 5)])
        assert r.heavy_hitters(0, 3) == {1: 3}
        assert r.heavy_hitters(0, 4) == {}

    def test_position_bounds_checked(self):
        r = rel([(1, 2)])
        with pytest.raises(IndexError):
            r.degree((5,), (1,))
        with pytest.raises(IndexError):
            r.project((2,))


class TestOperators:
    def test_project(self):
        r = rel([(1, 2), (1, 3)])
        assert r.project((0,)).tuples == {(1,)}
        assert r.project((1, 0)).tuples == {(2, 1), (3, 1)}

    def test_select(self):
        r = rel([(1, 2), (1, 3), (2, 3)])
        assert r.select((0,), (1,)).tuples == {(1, 2), (1, 3)}

    def test_semijoin_antijoin_partition(self):
        r = rel([(1, 2), (3, 4), (5, 6)])
        s = rel([(2, 9), (6, 9)], name="S")
        semi = r.semijoin(s, (1,), (0,))
        anti = r.antijoin(s, (1,), (0,))
        assert semi.tuples == {(1, 2), (5, 6)}
        assert anti.tuples == {(3, 4)}
        assert semi.tuples | anti.tuples == r.tuples
        assert not semi.tuples & anti.tuples

    @given(pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_semijoin_antijoin_algebra(self, a, b):
        r = rel(a)
        s = rel(b, name="S")
        semi = r.semijoin(s, (0,), (1,))
        anti = r.antijoin(s, (0,), (1,))
        assert semi.tuples | anti.tuples == r.tuples
        assert not semi.tuples & anti.tuples

    def test_union_difference(self):
        a = rel([(1, 2)])
        b = rel([(3, 4)])
        assert len(a.union(b)) == 2
        assert a.union(b).difference(b) == a
        with pytest.raises(ValueError):
            a.union(Relation("X", 1, [(1,)]))

    def test_filter(self):
        r = rel([(1, 2), (3, 4)])
        assert r.filter(lambda t: t[0] == 1).tuples == {(1, 2)}

    def test_index(self):
        r = rel([(1, 2), (1, 3), (2, 3)])
        idx = r.index((0,))
        assert sorted(idx[(1,)]) == [(1, 2), (1, 3)]
        assert idx[(2,)] == [(2, 3)]


class TestInvariants:
    def test_matching_detection(self):
        assert rel([(1, 2), (3, 4)]).is_matching()
        assert not rel([(1, 2), (1, 4)]).is_matching()
        assert not rel([(1, 2), (3, 2)]).is_matching()

    def test_column_and_active_domain(self):
        r = rel([(1, 2), (3, 4)])
        assert r.column(0) == {1, 3}
        assert r.active_domain() == {1, 2, 3, 4}

    def test_from_pairs(self):
        r = relation_from_pairs("E", [(0, 1)])
        assert r.arity == 2 and len(r) == 1
