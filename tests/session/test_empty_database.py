"""Degenerate inputs through the full session path.

A database whose relations are all empty produces zero answers, zero
measured load -- and must still render every report surface: the
``summary()`` prediction-ratio line used to be skipped whenever the
ratio was falsy, which silently hid the (legitimate) 0.00x of a
zero-load run against a positive prediction.
"""

from __future__ import annotations

from repro.core.families import star_query, triangle_query
from repro.data import Database, Relation
from repro.session import Session


def empty_database(query, domain_size=16):
    return Database(
        [Relation(name, query.arity(name), []) for name in query.relation_names],
        domain_size=domain_size,
    )


class TestEmptyDatabase:
    def test_run_succeeds_with_no_answers(self):
        q = triangle_query()
        with Session(p=4, seed=0) as session:
            result = session.run(q, empty_database(q))
        assert set(result.answers) == set()
        assert result.load_report.total_bits == 0.0

    def test_summary_renders_a_zero_ratio(self):
        q = triangle_query()
        with Session(p=4, seed=0) as session:
            result = session.run(q, empty_database(q))
        report = result.load_report
        text = report.summary()
        ratio = report.prediction_ratio()
        if ratio is not None:
            # The guard under test: ratio 0.0 must still be rendered.
            assert f"{ratio:.2f}x" in text

    def test_workload_summary_and_record_line_render(self):
        q = star_query(2)
        with Session(p=4, seed=0) as session:
            session.run(q, empty_database(q), label="empty")
            text = session.workload_summary()
        assert "empty" in text

    def test_traced_empty_run_reconciles(self, tmp_path):
        from repro.trace import TraceQuery

        q = triangle_query()
        with Session(p=4, seed=0, trace=tmp_path) as session:
            result = session.run(q, empty_database(q))
            record = session.history[0]
        assert record.trace_path is not None
        query = TraceQuery(record.trace_path)
        assert query.total_bits() == 0.0
        assert query.reconcile(result.load_report) == {}
