"""``Session.run_many``: concurrency must not change anything.

The acceptance property: the same jobs with the same seeds produce
identical results -- answers, per-server loads, truncation, history
records -- whatever ``max_workers`` is, because each job's seed derives
from ``(session seed, job index)`` via ``hashing.derive_seed`` and the
shared storage manager is thread-safe.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.families import simple_join_query, star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.hashing.family import derive_seed
from repro.session import Job, Session

TINY_BUDGET = 1


def workload():
    tq = triangle_query()
    sq = star_query(2)
    jq = simple_join_query()
    return [
        Job(tq, matching_database(tq, m=150, n=600, seed=0), label="tri"),
        Job(sq, zipf_database(sq, m=200, n=80, skew=1.0, seed=1),
            strategy="skew-star", label="star"),
        Job(jq, matching_database(jq, m=200, n=800, seed=2), label="join"),
        Job(tq, zipf_database(tq, m=180, n=50, skew=1.1, seed=3),
            strategy="skew-triangle", label="tri-skew"),
    ]


def run_with_workers(max_workers, **session_knobs):
    with Session(p=8, seed=42, **session_knobs) as session:
        results = session.run_many(workload(), max_workers=max_workers)
        # Materialize inside the session: spooled outputs die with it.
        snapshot = [
            (r.answers, [dict(rl.bits) for rl in r.load_report.rounds],
             r.strategy)
            for r in results
        ]
        # Timing fields (wall clock, per-phase split) legitimately vary
        # between runs; everything else must be identical.
        history = [
            replace(rec, wall_seconds=0.0, phase_seconds={})
            for rec in session.history
        ]
    return snapshot, history


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_concurrent_equals_sequential(self, workers):
        sequential, seq_history = run_with_workers(1)
        concurrent, conc_history = run_with_workers(workers)
        assert concurrent == sequential
        assert conc_history == seq_history

    def test_concurrent_equals_sequential_with_shared_storage(self):
        sequential, seq_history = run_with_workers(
            1, memory_budget_bytes=TINY_BUDGET
        )
        concurrent, conc_history = run_with_workers(
            4, memory_budget_bytes=TINY_BUDGET
        )
        assert concurrent == sequential
        assert conc_history == seq_history

    def test_storage_mode_matches_in_memory(self):
        in_memory, _ = run_with_workers(2)
        chunked, _ = run_with_workers(2, memory_budget_bytes=TINY_BUDGET)
        assert chunked == in_memory


class TestSeeding:
    def test_jobs_derive_distinct_seeds(self):
        with Session(p=8, seed=7) as session:
            session.run_many(workload(), max_workers=2)
            seeds = [record.seed for record in session.history]
        assert seeds == [derive_seed(7, i) for i in range(len(seeds))]
        assert len(set(seeds)) == len(seeds)

    def test_explicit_job_seed_matches_single_run(self):
        tq = triangle_query()
        db = matching_database(tq, m=120, n=480, seed=0)
        with Session(p=8, seed=0) as session:
            [batch] = session.run_many(
                [Job(tq, db, strategy="hypercube", seed=13)]
            )
            single = session.run(tq, db, strategy="hypercube", seed=13)
            assert batch.answers == single.answers
            assert (
                batch.load_report.rounds[0].bits
                == single.load_report.rounds[0].bits
            )


class TestBatchSemantics:
    def test_results_in_job_order_with_labels(self):
        with Session(p=8, seed=0) as session:
            results = session.run_many(workload(), max_workers=4)
            labels = [record.label for record in session.history]
            assert labels == ["tri", "star", "join", "tri-skew"]
            assert [r.strategy for r in results][1] == "skew-star"
            assert [r.strategy for r in results][3] == "skew-triangle"

    def test_empty_batch(self):
        with Session(p=8) as session:
            assert session.run_many([]) == []
            assert session.history == []

    def test_bare_pairs_accepted(self):
        tq = triangle_query()
        db = matching_database(tq, m=100, n=400, seed=0)
        with Session(p=8) as session:
            results = session.run_many([(tq, db), (tq, db)])
            assert len(results) == 2
            assert len(session.history) == 2

    def test_invalid_max_workers(self):
        with Session(p=8) as session:
            with pytest.raises(ValueError, match="max_workers"):
                session.run_many(workload(), max_workers=0)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_failed_job_keeps_successful_history(self, workers):
        # One bad job re-raises, but its siblings' records survive.
        tq = triangle_query()
        db = matching_database(tq, m=80, n=320, seed=0)
        jobs = [
            Job(tq, db, label="good-0"),
            Job(tq, db, strategy="skew-star", label="bad"),  # inapplicable
            Job(tq, db, label="good-2"),
        ]
        with Session(p=8, seed=0) as session:
            with pytest.raises(ValueError, match="not applicable"):
                session.run_many(jobs, max_workers=workers)
            labels = [record.label for record in session.history]
        assert labels == ["good-0", "good-2"]
