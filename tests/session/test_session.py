"""``repro.session``: the unified front door must change nothing.

The acceptance property: ``Session.run`` pinned to a strategy is
bit-identical -- answers, per-server per-round loads, capacity
truncation -- to the corresponding legacy free function with the same
knobs, across strategies x backends x storage modes; and every result
class satisfies the :class:`RunResult` protocol.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import star_query, triangle_query
from repro.data.generators import (
    matching_database,
    uniform_database,
    zipf_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan
from repro.planner import execute as planner_execute
from repro.session import ClusterConfig, RunResult, Session
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage import StorageManager

from tests.conftest import random_queries

#: A 1-byte budget: every database's assumed footprint exceeds it, so
#: the session always engages its shared out-of-core manager.
TINY_BUDGET = 1


def assert_identical(a: RunResult, b: RunResult) -> None:
    """Bit-identity over the RunResult protocol surface."""
    assert a.answers == b.answers
    report_a, report_b = a.load_report, b.load_report
    assert report_a.num_rounds == report_b.num_rounds
    for round_a, round_b in zip(report_a.rounds, report_b.rounds):
        assert round_a.bits == round_b.bits
        assert round_a.tuples == round_b.tuples
        assert round_a.dropped_bits == round_b.dropped_bits
    assert a.rounds == b.rounds


def star_case(seed):
    q = star_query(2)
    return q, zipf_database(q, m=250, n=100, skew=1.0, seed=seed)


def triangle_case(seed):
    q = triangle_query()
    return q, zipf_database(q, m=220, n=60, skew=1.1, seed=seed)


def matching_triangle_case(seed):
    q = triangle_query()
    return q, matching_database(q, m=150, n=600, seed=seed)


class TestBitIdentityToLegacy:
    """session.run(strategy=...) == the legacy free function."""

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    @pytest.mark.parametrize("with_budget", [False, True])
    @pytest.mark.parametrize("seed", range(2))
    def test_hypercube(self, backend, with_budget, seed):
        if backend == "tuples" and with_budget:
            pytest.skip("the tuple engine cannot stream chunks")
        q, db = matching_triangle_case(seed)
        budget = TINY_BUDGET if with_budget else None
        with Session(p=16, backend=backend, seed=seed,
                     memory_budget_bytes=budget) as session:
            mine = session.run(q, db, strategy="hypercube")
            if with_budget:
                legacy_storage = StorageManager.from_budget(TINY_BUDGET)
            else:
                legacy_storage = None
            legacy = run_hypercube(
                q, db, 16, seed=seed, backend=backend,
                storage=legacy_storage,
            )
            assert_identical(mine, legacy)
            assert mine.answers == evaluate(q, db)
            if legacy_storage is not None:
                legacy_storage.close()

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    @pytest.mark.parametrize("with_budget", [False, True])
    @pytest.mark.parametrize("seed", range(2))
    def test_skew_star(self, backend, with_budget, seed):
        if backend == "tuples" and with_budget:
            pytest.skip("the tuple engine cannot stream chunks")
        q, db = star_case(seed)
        budget = TINY_BUDGET if with_budget else None
        with Session(p=8, backend=backend, seed=seed,
                     memory_budget_bytes=budget) as session:
            mine = session.run(q, db, strategy="skew-star")
            if with_budget:
                legacy_storage = StorageManager.from_budget(TINY_BUDGET)
            else:
                legacy_storage = None
            legacy = run_star_skew(
                q, db, 8, seed=seed, backend=backend,
                storage=legacy_storage,
            )
            assert_identical(mine, legacy)
            if legacy_storage is not None:
                legacy_storage.close()

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    @pytest.mark.parametrize("with_budget", [False, True])
    @pytest.mark.parametrize("seed", range(2))
    def test_skew_triangle(self, backend, with_budget, seed):
        if backend == "tuples" and with_budget:
            pytest.skip("the tuple engine cannot stream chunks")
        q, db = triangle_case(seed)
        budget = TINY_BUDGET if with_budget else None
        with Session(p=8, backend=backend, seed=seed,
                     memory_budget_bytes=budget) as session:
            mine = session.run(q, db, strategy="skew-triangle")
            if with_budget:
                legacy_storage = StorageManager.from_budget(TINY_BUDGET)
            else:
                legacy_storage = None
            legacy = run_triangle_skew(
                db, 8, seed=seed, backend=backend, storage=legacy_storage
            )
            assert_identical(mine, legacy)
            if legacy_storage is not None:
                legacy_storage.close()

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    @pytest.mark.parametrize("with_budget", [False, True])
    def test_multiround(self, backend, with_budget):
        if backend == "tuples" and with_budget:
            pytest.skip("the tuple engine cannot stream chunks")
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=60, n=60, seed=0)
        budget = TINY_BUDGET if with_budget else None
        with Session(p=8, backend=backend, seed=2,
                     memory_budget_bytes=budget) as session:
            mine = session.run(
                plan.query, db, strategy="multiround", plan=plan
            )
            if with_budget:
                legacy_storage = StorageManager.from_budget(TINY_BUDGET)
            else:
                legacy_storage = None
            legacy = run_plan(
                plan, db, 8, seed=2, backend=backend, storage=legacy_storage
            )
            assert_identical(mine, legacy)
            if legacy_storage is not None:
                legacy_storage.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_planner_default_route(self, seed):
        q, db = triangle_case(seed)
        with Session(p=8, seed=seed) as session:
            mine = session.run(q, db)
        legacy = planner_execute(q, db, 8, seed=seed)
        assert mine.strategy == legacy.strategy
        assert_identical(mine, legacy)

    @given(query=random_queries(),
           seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=15, deadline=None)
    def test_property_random_queries(self, query, seed):
        n = 8
        sizes = {a.relation: min(20, n**a.arity) for a in query.atoms}
        db = uniform_database(query, m=sizes, n=n, seed=seed)
        legacy = run_hypercube(query, db, 8, seed=seed)
        with Session(p=8, seed=seed) as session:
            mine = session.run(query, db, strategy="hypercube")
        assert_identical(mine, legacy)


class TestCapacityThreading:
    """A session capacity cap truncates exactly like the legacy knob."""

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_hypercube_drop(self, backend):
        q, db = triangle_case(seed=4)
        capacity = 900.0
        with Session(p=8, backend=backend, seed=1, capacity_bits=capacity,
                     on_overflow="drop") as session:
            mine = session.run(q, db, strategy="hypercube")
            legacy = run_hypercube(
                q, db, 8, seed=1, backend=backend,
                capacity_bits=capacity, on_overflow="drop",
            )
            assert legacy.load_report.dropped_bits > 0
            assert_identical(mine, legacy)

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_star_drop(self, backend):
        q, db = star_case(seed=5)
        capacity = 700.0
        with Session(p=8, backend=backend, seed=1, capacity_bits=capacity,
                     on_overflow="drop") as session:
            mine = session.run(q, db, strategy="skew-star")
            legacy = run_star_skew(
                q, db, 8, seed=1, backend=backend,
                capacity_bits=capacity, on_overflow="drop",
            )
            assert legacy.load_report.dropped_bits > 0
            assert_identical(mine, legacy)


class TestRunResultProtocol:
    """All five result classes satisfy RunResult structurally."""

    def test_all_result_types_conform(self):
        q, db = matching_triangle_case(seed=0)
        sq, sdb = star_case(seed=0)
        plan = chain_plan(4, 0.0)
        pdb = matching_database(plan.query, m=40, n=40, seed=0)
        results = [
            run_hypercube(q, db, 8, seed=0),
            run_star_skew(sq, sdb, 8, seed=0),
            run_triangle_skew(db, 8, seed=0),
            run_plan(plan, pdb, 8, seed=0),
            planner_execute(q, db, 8, seed=0),
        ]
        expected_strategies = [
            "hypercube", "skew-star", "skew-triangle", "multiround",
        ]
        for result, expected in zip(results, expected_strategies):
            assert isinstance(result, RunResult)
            assert result.strategy == expected
            assert result.rounds == result.load_report.num_rounds
            array = result.answers_array()
            assert len(array) == len(result.answers)
        planned = results[-1]
        assert isinstance(planned, RunResult)
        assert planned.predicted_bits is not None
        assert len(planned.answers_array()) == len(planned.answers)

    def test_baselines_conform_and_are_labeled(self):
        from repro.hypercube.baselines import (
            run_broadcast_join,
            run_parallel_hash_join,
            run_single_server,
        )
        from repro.core.families import simple_join_query

        q = simple_join_query()
        db = matching_database(q, m=60, n=240, seed=1)
        assert run_single_server(q, db, 4).strategy == "single-server"
        assert run_parallel_hash_join(q, db, 4).strategy == "hash-join"
        assert run_broadcast_join(q, db, 4).strategy == "broadcast"
        for result in (run_single_server(q, db, 4),):
            assert isinstance(result, RunResult)


class TestSessionSemantics:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="server"):
            ClusterConfig(p=0)
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(p=4, backend="pandas")
        with pytest.raises(ValueError, match="on_overflow"):
            ClusterConfig(p=4, on_overflow="explode")
        with pytest.raises(ValueError, match="hash_method"):
            ClusterConfig(p=4, hash_method="md5")
        with pytest.raises(ValueError, match="chunk_rows"):
            ClusterConfig(p=4, chunk_rows=0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ClusterConfig(p=4, memory_budget_bytes=0)

    def test_config_or_knobs_not_both(self):
        with pytest.raises(TypeError, match="not both"):
            Session(ClusterConfig(p=4), p=8)

    def test_closed_session_rejects_runs(self):
        q, db = matching_triangle_case(seed=0)
        session = Session(p=4)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(q, db)

    def test_owned_storage_lifecycle(self):
        q, db = matching_triangle_case(seed=1)
        with Session(p=8, memory_budget_bytes=TINY_BUDGET) as session:
            result = session.run(q, db, strategy="hypercube")
            assert session.storage is not None
            root = session.storage.root
            assert root.exists()
            # Materialize before close: outputs live in the spill dir.
            _ = result.answers
        assert session.storage is None
        assert not root.exists()

    def test_no_storage_under_generous_budget(self):
        q, db = matching_triangle_case(seed=1)
        with Session(p=8, memory_budget_bytes=2**34) as session:
            session.run(q, db, strategy="hypercube")
            assert session.storage is None

    def test_tuples_backend_with_budget_not_enforced(self):
        # The engine's storage_optional contract: a non-streaming
        # winner runs in memory instead of raising.
        q, db = matching_triangle_case(seed=2)
        with Session(p=8, backend="tuples",
                     memory_budget_bytes=TINY_BUDGET) as session:
            mine = session.run(q, db, strategy="hypercube")
            legacy = run_hypercube(q, db, 8, seed=0, backend="tuples")
            assert_identical(mine, legacy)

    def test_unsupported_override_rejected(self):
        q, db = star_case(seed=0)
        with Session(p=8) as session:
            with pytest.raises(ValueError, match="does not accept"):
                session.run(q, db, strategy="skew-star",
                            shares={"x0": 2})

    def test_hitters_override_accepted_by_skew_strategies(self):
        from repro.planner import DataStatistics
        from repro.skew.star import star_center

        sq, sdb = star_case(seed=1)
        star_stats = DataStatistics.from_database(sq, sdb, 8)
        tq, tdb = triangle_case(seed=1)
        tri_stats = DataStatistics.from_database(tq, tdb, 8)
        with Session(p=8, seed=1) as session:
            star_pre = session.run(
                sq, sdb, strategy="skew-star",
                hitters=star_stats.hitters[star_center(sq)],
            )
            star_scan = session.run(sq, sdb, strategy="skew-star")
            assert_identical(star_pre, star_scan)
            tri_pre = session.run(
                tq, tdb, strategy="skew-triangle",
                hitters=tri_stats.hitters,
            )
            tri_scan = session.run(tq, tdb, strategy="skew-triangle")
            assert_identical(tri_pre, tri_scan)

    def test_mismatched_plan_override_rejected(self):
        # A plan built for a different query must not run silently
        # under the pinned query's name.
        from repro.multiround.plans import chain_plan

        q, db = matching_triangle_case(seed=0)
        wrong_plan = chain_plan(4, 0.0)
        with Session(p=8) as session:
            with pytest.raises(ValueError, match="plan answers"):
                session.run(q, db, strategy="multiround", plan=wrong_plan)

    def test_pinned_twin_strategies(self):
        q, db = matching_triangle_case(seed=3)
        with Session(p=16, seed=1) as session:
            tuples_run = session.run(q, db, strategy="hypercube-tuples")
            numpy_run = session.run(q, db, strategy="hypercube-numpy")
        assert_identical(tuples_run, numpy_run)

    def test_history_and_explain(self):
        q, db = matching_triangle_case(seed=0)
        with Session(p=8, seed=0) as session:
            assert session.history == []
            session.run(q, db, strategy="hypercube", label="first")
            session.run(q, db)
            table = session.plan(q, db).table()
        assert "hypercube" in table
        assert len(session.history) == 2
        first, second = session.history
        assert first.label == "first"
        assert second.label == "run-1"
        assert first.strategy == "hypercube"
        assert first.max_load_bits > 0
        assert first.percentiles["max"] == first.max_load_bits
        summary = session.workload_summary()
        assert "first" in summary and "per-run L percentiles" in summary
        pct = session.workload_percentiles()
        assert pct["max"] >= pct["p50"] >= 0

    def test_seed_override_matches_config_seed(self):
        q, db = matching_triangle_case(seed=0)
        with Session(p=8, seed=7) as session:
            by_config = session.run(q, db, strategy="hypercube")
        with Session(p=8, seed=0) as session:
            by_override = session.run(q, db, strategy="hypercube", seed=7)
        assert_identical(by_config, by_override)
