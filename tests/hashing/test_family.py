"""Tests for the PRF hash family and grid partitioner."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.family import GridPartitioner, HashFamily, HashFunction


class TestHashFunction:
    def test_deterministic(self):
        h1 = HashFunction(1, 2, 100)
        h2 = HashFunction(1, 2, 100)
        assert [h1(i) for i in range(50)] == [h2(i) for i in range(50)]

    def test_different_salts_differ(self):
        h1 = HashFunction(1, 2, 1_000_000)
        h2 = HashFunction(1, 3, 1_000_000)
        values = [h1(i) == h2(i) for i in range(200)]
        assert sum(values) < 5  # collisions only by chance

    def test_range(self):
        h = HashFunction(7, 0, 13)
        assert all(0 <= h(i) < 13 for i in range(-50, 500))

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            HashFunction(0, 0, 0)

    def test_roughly_uniform(self):
        k = 16
        h = HashFunction(42, 9, k)
        counts = [0] * k
        samples = 16_000
        for i in range(samples):
            counts[h(i)] += 1
        expected = samples / k
        # Loose 3-sigma style band: sqrt(expected) ~ 31.
        assert all(abs(c - expected) < 6 * math.sqrt(expected) for c in counts)

    @given(st.integers(), st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_any_input_in_range(self, value, buckets):
        h = HashFunction(0, 1, buckets)
        assert 0 <= h(value) < buckets


class TestVectorizedHash:
    @pytest.mark.parametrize("method", ["splitmix64", "blake2b"])
    def test_hash_array_matches_scalar(self, method):
        h = HashFunction(12345, 7, 97, method=method)
        values = np.array(
            list(range(-300, 300)) + [2**63 - 1, -(2**63), 0], dtype=np.int64
        )
        vectorized = h.hash_array(values)
        assert vectorized.tolist() == [h(int(v)) for v in values]

    @pytest.mark.parametrize("method", ["splitmix64", "blake2b"])
    def test_hash_array_never_populates_cache(self, method):
        h = HashFunction(1, 2, 100, method=method)
        h.hash_array(np.arange(1000))
        assert not h._cache

    def test_hash_array_rejects_floats(self):
        h = HashFunction(0, 0, 10)
        with pytest.raises(TypeError):
            h.hash_array(np.array([1.5, 2.5]))

    def test_methods_differ(self):
        split = HashFunction(5, 1, 1_000_000, method="splitmix64")
        blake = HashFunction(5, 1, 1_000_000, method="blake2b")
        assert [split(i) for i in range(50)] != [blake(i) for i in range(50)]

    def test_splitmix_uniform(self):
        k = 16
        h = HashFunction(42, 9, k)
        counts = np.bincount(h.hash_array(np.arange(16_000)), minlength=k)
        expected = 16_000 / k
        assert all(abs(c - expected) < 6 * math.sqrt(expected) for c in counts)


class TestCacheBounds:
    def test_blake2b_cache_capped(self):
        h = HashFunction(0, 0, 10, method="blake2b", cache_size=8)
        for i in range(50):
            h(i)
        assert len(h._cache) == 8

    def test_cache_disabled(self):
        h = HashFunction(0, 0, 10, method="blake2b", cache_size=0)
        for i in range(50):
            h(i)
        assert not h._cache

    def test_splitmix_scalar_does_not_cache(self):
        h = HashFunction(0, 0, 10)
        for i in range(50):
            h(i)
        assert not h._cache

    def test_family_passes_cache_size_through(self):
        family = HashFamily(3, method="blake2b", cache_size=4)
        h = family.function(0, 10)
        for i in range(20):
            h(i)
        assert len(h._cache) == 4

    def test_rejects_negative_cache_size(self):
        with pytest.raises(ValueError):
            HashFunction(0, 0, 10, cache_size=-1)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            HashFunction(0, 0, 10, method="md5")


class TestHashFamily:
    def test_functions_have_distinct_salts(self):
        fam = HashFamily(3)
        fs = fam.functions(3, [10, 10, 10])
        outputs = [tuple(f(i) for i in range(100)) for f in fs]
        assert outputs[0] != outputs[1] != outputs[2]

    def test_function_count_validation(self):
        with pytest.raises(ValueError):
            HashFamily(0).functions(2, [4])


class TestGridPartitioner:
    def test_bin_of_shape(self):
        grid = GridPartitioner([4, 5, 6])
        cell = grid.bin_of((10, 20, 30))
        assert len(cell) == 3
        assert all(0 <= c < s for c, s in zip(cell, (4, 5, 6)))
        assert grid.num_bins == 120

    def test_bin_is_componentwise(self):
        # Changing one coordinate changes only that dimension's bucket.
        grid = GridPartitioner([8, 8])
        a = grid.bin_of((1, 2))
        b = grid.bin_of((1, 3))
        assert a[0] == b[0]

    def test_destinations_subcube(self):
        grid = GridPartitioner([3, 4, 5])
        cells = grid.destinations((7, None, 9))
        assert len(cells) == 4  # replicated along the unknown dimension
        fixed0 = {c[0] for c in cells}
        fixed2 = {c[2] for c in cells}
        assert len(fixed0) == 1 and len(fixed2) == 1
        assert {c[1] for c in cells} == {0, 1, 2, 3}

    def test_destinations_fully_known_is_single_cell(self):
        grid = GridPartitioner([3, 3])
        cells = grid.destinations((1, 2))
        assert cells == [grid.bin_of((1, 2))]

    def test_full_replication(self):
        grid = GridPartitioner([2, 2])
        assert len(grid.destinations((None, None))) == 4

    def test_linear_index_bijective(self):
        grid = GridPartitioner([3, 4])
        seen = {
            grid.linear_index((i, j)) for i in range(3) for j in range(4)
        }
        assert seen == set(range(12))

    def test_linear_index_bounds(self):
        grid = GridPartitioner([3, 4])
        with pytest.raises(ValueError):
            grid.linear_index((3, 0))

    def test_arity_checked(self):
        grid = GridPartitioner([3, 4])
        with pytest.raises(ValueError):
            grid.bin_of((1,))
        with pytest.raises(ValueError):
            grid.destinations((1,))

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            GridPartitioner([0, 2])
