"""Tests for the Appendix A balls-in-bins bounds and simulators."""

from __future__ import annotations

import math

import pytest

from repro.hashing.balls import (
    adversarial_weights,
    bennett_h,
    kl_bernoulli,
    max_load_exceed_probability,
    simulate_grid_partition,
    simulate_weighted_balls,
    weighted_balls_tail_bound,
    weighted_balls_tail_bound_kl,
)


class TestBennettH:
    def test_zero(self):
        assert bennett_h(0.0) == pytest.approx(0.0)

    def test_monotone_increasing(self):
        xs = [0.1, 0.5, 1.0, 2.0, 5.0]
        hs = [bennett_h(x) for x in xs]
        assert all(a < b for a, b in zip(hs, hs[1:]))

    def test_known_value(self):
        # h(1) = 2 ln 2 - 1.
        assert bennett_h(1.0) == pytest.approx(2 * math.log(2) - 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bennett_h(-0.1)


class TestKL:
    def test_zero_when_equal(self):
        assert kl_bernoulli(0.3, 0.3) == pytest.approx(0.0)

    def test_positive_otherwise(self):
        assert kl_bernoulli(0.5, 0.1) > 0

    def test_footnote_8_inequality(self):
        # K * D((1+d)/K || 1/K) >= (1+d) ln(1+d) - d = h(d).
        for k in (4, 16, 64):
            for delta in (0.5, 1.0, 3.0):
                if (1 + delta) / k >= 1:
                    continue
                lhs = k * kl_bernoulli((1 + delta) / k, 1 / k)
                assert lhs >= bennett_h(delta) - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            kl_bernoulli(1.5, 0.5)
        with pytest.raises(ValueError):
            kl_bernoulli(0.5, 0.0)


class TestBoundFormulas:
    def test_kl_bound_no_larger_than_h_bound(self):
        for k in (8, 64):
            for beta in (0.1, 1.0):
                for delta in (0.5, 2.0):
                    if (1 + delta) / k >= 1:
                        continue
                    assert weighted_balls_tail_bound_kl(
                        k, beta, delta
                    ) <= weighted_balls_tail_bound(k, beta, delta) + 1e-12

    def test_bound_decreases_with_delta(self):
        values = [weighted_balls_tail_bound(16, 0.5, d) for d in (0.5, 1, 2, 4)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_bound_increases_with_beta(self):
        assert weighted_balls_tail_bound(16, 2.0, 1.0) > weighted_balls_tail_bound(
            16, 0.5, 1.0
        )

    def test_kl_bound_saturates_to_zero(self):
        assert weighted_balls_tail_bound_kl(4, 1.0, 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_balls_tail_bound(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            weighted_balls_tail_bound_kl(1, 1.0, 1.0)


class TestSimulation:
    def test_unit_balls_concentrate(self):
        # 10_000 unit balls in 10 bins: max load should be near 1000.
        result = simulate_weighted_balls([1.0] * 10_000, 10, trials=20, seed=1)
        assert result.mean_load == pytest.approx(1000.0)
        assert max(result.max_loads) < 1200
        assert min(result.max_loads) >= 1000

    def test_exceed_probability_monotone(self):
        result = simulate_weighted_balls([1.0] * 2000, 8, trials=30, seed=2)
        p_low = max_load_exceed_probability(result, 0.01)
        p_high = max_load_exceed_probability(result, 0.5)
        assert p_low >= p_high

    def test_heavy_ball_forces_large_max(self):
        # One ball carries all the weight: max load always equals it.
        result = simulate_weighted_balls([1000.0] + [0.0] * 99, 10, trials=5, seed=3)
        assert all(load == 1000.0 for load in result.max_loads)

    def test_empirical_within_theorem_a1(self):
        # The empirical exceedance probability never beats the bound
        # (statistically; the bound is loose so this is a safe check).
        m, k, beta = 4000, 8, 0.02
        weights = adversarial_weights(m, k, beta, seed=4)
        result = simulate_weighted_balls(weights, k, trials=40, seed=5)
        for delta in (0.2, 0.5, 1.0):
            bound = min(1.0, weighted_balls_tail_bound(k, beta, delta))
            empirical = max_load_exceed_probability(result, delta)
            assert empirical <= bound + 0.1

    def test_grid_partition_matching_tuples(self):
        # A matching relation spreads well over a 4x4 grid.
        tuples = [(i, 1000 + i) for i in range(1600)]
        result = simulate_grid_partition(tuples, [4, 4], trials=10, seed=6)
        assert result.mean_load == pytest.approx(100.0)
        assert max(result.max_loads) < 170

    def test_grid_partition_skew_hits_one_row(self):
        # All tuples share the first attribute: only 4 of 16 bins used,
        # max load >= m / p_2 (Theorem A.5 / Corollary 4.3 behaviour).
        tuples = [(7, i) for i in range(400)]
        result = simulate_grid_partition(tuples, [4, 4], trials=5, seed=7)
        assert min(result.max_loads) >= 400 / 4

    def test_grid_weights_validation(self):
        with pytest.raises(ValueError):
            simulate_grid_partition([(1, 2)], [2, 2], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_grid_partition([(1,)], [2, 2])

    def test_adversarial_weights_sum(self):
        w = adversarial_weights(1000, 10, 0.5, seed=8)
        assert sum(w) == pytest.approx(1000.0)
        assert max(w) <= 0.5 * 1000 / 10 + 1e-9
