"""Weighted (non-uniform) hash buckets: exactness and scalar/vector parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MachineSpec
from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    HashFunction,
    bucket_boundaries,
    grid_dimension_weights,
)


class TestBucketBoundaries:
    def test_interior_count_and_monotonicity(self):
        bounds = bucket_boundaries((1.0, 2.0, 1.0))
        assert len(bounds) == 2
        assert bounds[0] < bounds[1] < 2**64

    def test_proportional_split(self):
        bounds = bucket_boundaries((1.0, 3.0))
        assert bounds[0] == 2**64 // 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_boundaries((1.0, 0.0))
        with pytest.raises(ValueError):
            bucket_boundaries((1.0, -2.0))


class TestWeightedHashFunction:
    @pytest.mark.parametrize("method", ("splitmix64", "blake2b"))
    def test_scalar_matches_vectorized(self, method):
        h = HashFunction(7, 3, 8, method=method,
                         weights=(1, 1, 1, 1, 4, 4, 4, 4))
        values = np.arange(-500, 500, dtype=np.int64)
        vector = h.hash_array(values)
        scalar = [h(int(v)) for v in values]
        assert vector.tolist() == scalar

    def test_all_equal_weights_normalize_to_modulo_path(self):
        plain = HashFunction(7, 3, 8)
        weighted = HashFunction(7, 3, 8, weights=(2.0,) * 8)
        assert weighted.weights is None
        values = np.arange(1000, dtype=np.int64)
        assert np.array_equal(weighted.hash_array(values),
                              plain.hash_array(values))

    def test_distribution_tracks_weights(self):
        h = HashFunction(0, 0, 2, weights=(1.0, 3.0))
        buckets = h.hash_array(np.arange(40_000, dtype=np.int64))
        share = float(np.mean(buckets == 1))
        assert share == pytest.approx(0.75, abs=0.02)

    def test_weight_arity_checked(self):
        with pytest.raises(ValueError):
            HashFunction(0, 0, 4, weights=(1.0, 2.0))


class TestGridWeights:
    def test_uniform_machines_collapse_to_none(self):
        assert grid_dimension_weights((2, 2), None) is None
        assert grid_dimension_weights((2, 2), MachineSpec.uniform(4)) is None

    def test_one_dimensional_marginal_is_exact(self):
        machines = MachineSpec.parse("1,1,3,3")
        weights = grid_dimension_weights((4,), machines)
        assert weights == ((0.125, 0.125, 0.375, 0.375),)

    def test_share_one_dimensions_skipped(self):
        machines = MachineSpec.parse("2x1,2x3")
        weights = grid_dimension_weights((4, 1), machines)
        assert weights is not None
        assert weights[1] is None

    def test_row_major_marginals(self):
        # Grid (2, 2) over speeds (1, 1, 3, 3): dimension 0 separates
        # servers {0,1} from {2,3} (mass 2 vs 6); dimension 1 separates
        # {0,2} from {1,3} (mass 4 vs 4 -- uniform, collapses to None).
        machines = MachineSpec.parse("2x1,2x3")
        weights = grid_dimension_weights((2, 2), machines)
        assert weights == ((0.25, 0.75), None)

    def test_grid_partitioner_canonicalizes_uniform(self):
        grid = GridPartitioner((2, 2), HashFamily(0),
                               weights=((0.5, 0.5), (0.5, 0.5)))
        assert grid.weights is None

    def test_weighted_grid_routes_more_to_heavy_buckets(self):
        family = HashFamily(1)
        grid = GridPartitioner((4,), family, weights=((1, 1, 3, 3),))
        counts = [0] * 4
        for v in range(20_000):
            counts[grid.bin_of((v,))[0]] += 1
        assert counts[2] + counts[3] > 2.5 * (counts[0] + counts[1])
