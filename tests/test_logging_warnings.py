"""The ``repro`` logging namespace and its silent-fallback warnings.

Three fallbacks used to happen silently; each now emits one
``logging`` warning on the ``repro.*`` namespace (never a Python
``warnings`` warning, so ``filterwarnings = error`` test suites stay
quiet): the tuple backend forcing an explicitly requested pool to
serial, the planner pricing a pre-heterogeneity ``estimate()`` against
the homogeneous model, and a process-pool worker degrading nested
fan-out to serial execution.
"""

from __future__ import annotations

import logging


import repro
from repro.config import ExecutionSettings, MachineSpec
from repro.core.families import triangle_query
from repro.core.stats import Statistics
from repro.parallel import pool as pool_module
from repro.parallel.pool import SerialPool, get_pool
from repro.planner import Strategy, default_strategies, plan
from repro.planner.cost import CostEstimate
from repro.planner.optimizer import _LEGACY_ESTIMATE_WARNED


def test_root_logger_has_null_handler():
    handlers = logging.getLogger("repro").handlers
    assert any(isinstance(h, logging.NullHandler) for h in handlers)
    # Importing repro must not configure real handlers for the caller.
    assert all(isinstance(h, logging.NullHandler) for h in handlers)


class TestForcedSerialWarning:
    def test_explicit_pool_on_tuples_backend_warns(self, caplog):
        settings = ExecutionSettings(backend="tuples", pool="thread")
        with caplog.at_level(logging.WARNING, logger="repro.config"):
            resolved = settings.resolve()
        assert resolved.pool == "serial"
        assert any(
            "forcing pool" in rec.message for rec in caplog.records
        )

    def test_defaulted_pool_stays_silent(self, caplog):
        settings = ExecutionSettings(backend="tuples", pool=None)
        with caplog.at_level(logging.WARNING, logger="repro.config"):
            resolved = settings.resolve()
        assert resolved.pool == "serial"
        assert not caplog.records


class TestLegacyEstimateWarning:
    def make_legacy(self):
        class Legacy(Strategy):
            name = "legacy-test"
            summary = "pre-heterogeneity estimate() signature"

            def applicable(self, query, dstats, p):
                return None

            def estimate(self, query, dstats, p):
                return CostEstimate(1.0, 1, p, "legacy")

        return Legacy

    def test_three_arg_estimate_warns_once_per_class(self, caplog):
        Legacy = self.make_legacy()
        _LEGACY_ESTIMATE_WARNED.discard(Legacy)
        q = triangle_query()
        stats = Statistics.uniform(q, m=100, domain_size=128)
        machines = MachineSpec((1.0, 2.0)).cycle_to(8)
        pool = list(default_strategies()) + [Legacy()]
        logger = "repro.planner.optimizer"
        with caplog.at_level(logging.WARNING, logger=logger):
            explained = plan(q, stats, 8, strategies=pool,
                             machines=machines)
            plan(q, stats, 8, strategies=pool, machines=machines)
        warned = [
            rec for rec in caplog.records
            if "pre-heterogeneity" in rec.message
        ]
        assert len(warned) == 1  # once per class, not per plan() call
        # The legacy strategy still got priced (homogeneous model).
        assert explained.candidate("legacy-test").estimate is not None
        _LEGACY_ESTIMATE_WARNED.discard(Legacy)

    def test_builtin_strategies_do_not_warn(self, caplog):
        q = triangle_query()
        stats = Statistics.uniform(q, m=100, domain_size=128)
        machines = MachineSpec((1.0, 2.0)).cycle_to(8)
        logger = "repro.planner.optimizer"
        with caplog.at_level(logging.WARNING, logger=logger):
            plan(q, stats, 8, machines=machines)
        assert not caplog.records


class TestNestedPoolWarning:
    def test_worker_degrades_to_serial_and_warns_once(
        self, caplog, monkeypatch
    ):
        monkeypatch.setattr(pool_module, "_IN_WORKER", True)
        monkeypatch.setattr(pool_module, "_NESTED_WARNED", False)
        logger = "repro.parallel.pool"
        with caplog.at_level(logging.WARNING, logger=logger):
            first = get_pool("thread")
            second = get_pool("process")
        assert isinstance(first, SerialPool)
        assert isinstance(second, SerialPool)
        warned = [
            rec for rec in caplog.records if "nested" in rec.message
        ]
        assert len(warned) == 1  # once per worker process

    def test_parent_process_is_unaffected(self, caplog):
        assert not pool_module._IN_WORKER
        with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
            pool = get_pool("thread", max_workers=2)
            try:
                assert not isinstance(pool, SerialPool)
            finally:
                pool.close()
        assert not caplog.records
