"""Tests for the one-round HyperCube algorithm (paper Section 3.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import (
    binom_query,
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.database import Database
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    uniform_database,
)
from repro.data.relation import Relation
from repro.hashing.family import GridPartitioner
from repro.hypercube.algorithm import (
    resolve_shares,
    route_relation,
    route_relation_arrays,
    run_hypercube,
)
from repro.hypercube.analysis import (
    predicted_load_bits,
    predicted_load_bits_skewed,
    predicted_load_tuples,
)
from repro.join.multiway import evaluate
from repro.mpc.simulator import LoadExceededError


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        [
            triangle_query(),
            chain_query(3),
            star_query(3),
            simple_join_query(),
            binom_query(3, 2),
        ],
        ids=lambda q: q.name,
    )
    @pytest.mark.parametrize("p", [4, 8, 27])
    def test_matches_sequential_on_matchings(self, query, p):
        db = matching_database(query, m=40, n=200, seed=11)
        result = run_hypercube(query, db, p, seed=5)
        assert result.answers == evaluate(query, db)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sequential_on_uniform(self, seed):
        q = triangle_query()
        db = uniform_database(q, m=60, n=25, seed=seed)
        result = run_hypercube(q, db, p=8, seed=seed)
        assert result.answers == evaluate(q, db)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_chain_random_seeds(self, seed):
        q = chain_query(2)
        db = uniform_database(q, m=30, n=12, seed=seed)
        result = run_hypercube(q, db, p=6, seed=seed)
        assert result.answers == evaluate(q, db)

    def test_correct_even_with_skew(self):
        # Skew hurts the load, never the correctness.
        q = simple_join_query()
        db = planted_heavy_hitter_database(q, 50, 500, "z", 1.0, 3, seed=7)
        result = run_hypercube(q, db, p=8, seed=1)
        assert result.answers == evaluate(q, db)

    def test_custom_shares_still_correct(self):
        q = triangle_query()
        db = matching_database(q, m=30, n=100, seed=3)
        result = run_hypercube(q, db, p=8, shares={"x1": 8, "x2": 1, "x3": 1})
        assert result.answers == evaluate(q, db)

    def test_non_perfect_power_p(self):
        q = triangle_query()
        db = matching_database(q, m=30, n=100, seed=4)
        result = run_hypercube(q, db, p=10, seed=2)
        assert result.answers == evaluate(q, db)
        assert math.prod(result.shares.values()) <= 10


class TestInconsistentRepeatedVariables:
    """Tuples binding a repeated variable inconsistently ship zero bits."""

    def query(self):
        return ConjunctiveQuery(
            (Atom("R", ("x", "x")), Atom("S", ("x", "y"))), name="loop"
        )

    def database(self):
        # (1, 2) and (4, 5) bind x inconsistently in R(x, x): droppable.
        return Database(
            [
                Relation("R", 2, [(1, 1), (1, 2), (3, 3), (4, 5)]),
                Relation("S", 2, [(1, 5), (3, 7)]),
            ],
            10,
        )

    def test_route_relation_drops_inconsistent_tuples(self):
        grid = GridPartitioner([3, 2])
        routed = list(
            route_relation(grid, ("x", "y"), ("x", "x"), [(1, 1), (1, 2), (4, 5)])
        )
        shipped = {t for _, t in routed}
        assert shipped == {(1, 1)}
        # The consistent tuple replicates along the unbound y axis only.
        assert len(routed) == 2

    def test_route_relation_arrays_drops_inconsistent_tuples(self):
        import numpy as np

        grid = GridPartitioner([3, 2])
        batches = list(
            route_relation_arrays(
                grid, ("x", "y"), ("x", "x"), np.array([[1, 1], [1, 2], [4, 5]])
            )
        )
        shipped = {
            tuple(row) for _, batch in batches for row in batch.tolist()
        }
        assert shipped == {(1, 1)}
        assert sum(len(batch) for _, batch in batches) == 2

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_inconsistent_tuples_contribute_zero_bits(self, backend):
        query, db = self.query(), self.database()
        result = run_hypercube(
            query, db, p=6, shares={"x": 3, "y": 2}, seed=0, backend=backend
        )
        assert result.answers == evaluate(query, db) == {(1, 5), (3, 7)}
        # Load accounting matches Eq. 9 over *consistent* tuples only:
        # R ships its 2 consistent tuples, replicated along y's share 2;
        # S ships its 2 tuples exactly once each.  The 2 inconsistent
        # R-tuples contribute zero bits.
        bits = db.statistics(query).value_bits
        expected = (2 * 2 + 2) * 2 * bits
        assert result.report.total_bits == expected


class TestShares:
    def test_lp_shares_for_triangle(self):
        q = triangle_query()
        db = matching_database(q, m=64, n=256, seed=0)
        result = run_hypercube(q, db, p=64)
        assert result.shares == {"x1": 4, "x2": 4, "x3": 4}

    def test_star_shares_go_to_z(self):
        q = star_query(2)
        db = matching_database(q, m=64, n=256, seed=0)
        result = run_hypercube(q, db, p=16)
        assert result.shares["z"] == 16

    def test_resolve_shares_validation(self):
        q = triangle_query()
        db = matching_database(q, m=16, n=64, seed=0)
        stats = db.statistics(q)
        with pytest.raises(ValueError, match="exceeds"):
            resolve_shares(q, stats, 4, shares={"x1": 4, "x2": 2, "x3": 1})
        with pytest.raises(ValueError, match=">= 1"):
            resolve_shares(q, stats, 4, shares={"x1": 0, "x2": 1, "x3": 1})

    def test_explicit_exponents(self):
        q = simple_join_query()
        db = matching_database(q, m=16, n=64, seed=0)
        result = run_hypercube(q, db, p=16, exponents={"z": 1.0})
        assert result.shares["z"] == 16


class TestLoads:
    def test_matching_load_near_prediction(self):
        # C3 with m=1500, p=64: predicted ~ m / p^{2/3} tuples/relation.
        q = triangle_query()
        m, p = 1500, 64
        db = matching_database(q, m=m, n=2**14, seed=9)
        stats = db.statistics(q)
        result = run_hypercube(q, db, p, seed=9)
        predicted = predicted_load_bits(q, stats, result.shares)
        # Load counts all three relations; allow constant ~ 3x plus
        # hashing fluctuation.
        assert result.max_load_bits <= 5 * predicted
        assert result.max_load_bits >= predicted  # can't beat one relation's share

    def test_skewed_load_matches_corollary_4_3(self):
        # All tuples share z: hashing on z routes them to one server.
        q = simple_join_query()
        m, p = 400, 16
        db = planted_heavy_hitter_database(q, m, 4000, "z", 1.0, 5, seed=10)
        stats = db.statistics(q)
        result = run_hypercube(q, db, p, exponents={"z": 1.0}, seed=3)
        skew_prediction = predicted_load_bits_skewed(q, stats, result.shares)
        # Everything lands on one server: the load reaches Theta(M).
        assert result.max_load_bits >= stats.bits("S1")
        assert result.max_load_bits <= 2 * skew_prediction

    def test_predicted_load_tuples_formula(self):
        q = triangle_query()
        db = matching_database(q, m=100, n=1000, seed=0)
        stats = db.statistics(q)
        shares = {"x1": 4, "x2": 4, "x3": 1}
        # S1(x1,x2): 100/16; S2(x2,x3): 100/4; S3(x3,x1): 100/4.
        assert predicted_load_tuples(q, stats, shares) == pytest.approx(25.0)

    def test_capacity_abort(self):
        q = simple_join_query()
        db = planted_heavy_hitter_database(q, 200, 2000, "z", 1.0, 5, seed=1)
        with pytest.raises(LoadExceededError):
            run_hypercube(
                q, db, p=16, exponents={"z": 1.0},
                capacity_bits=100.0, on_overflow="fail",
            )

    def test_capacity_drop_loses_answers(self):
        q = simple_join_query()
        db = planted_heavy_hitter_database(q, 200, 2000, "z", 1.0, 5, seed=1)
        full = evaluate(q, db)
        result = run_hypercube(
            q, db, p=16, exponents={"z": 1.0},
            capacity_bits=500.0, on_overflow="drop",
        )
        assert result.report.dropped_bits > 0
        assert result.answers < full  # strict subset

    def test_skip_local_join(self):
        q = triangle_query()
        db = matching_database(q, m=50, n=200, seed=2)
        result = run_hypercube(q, db, p=8, skip_local_join=True)
        assert result.answers == set()
        assert result.max_load_bits > 0


class TestReplication:
    def test_triangle_replication_factor(self):
        # With shares (4,4,4), each tuple of each relation is replicated
        # 4 times: total bits = 4 * |I|.
        q = triangle_query()
        db = matching_database(q, m=200, n=2048, seed=5)
        stats = db.statistics(q)
        result = run_hypercube(q, db, p=64, seed=5)
        assert result.replication_rate(stats) == pytest.approx(4.0, rel=1e-6)
