"""Backend equivalence: the columnar engine must be bit-identical.

The property the acceptance criteria demand: for randomized queries and
databases under a fixed seed, ``run_hypercube(..., backend="numpy")``
produces exactly the same answers, the same per-server loads (bits and
tuples), and the same :class:`LoadReport` bit totals as the reference
tuple-at-a-time backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import chain_query, star_query, triangle_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.database import Database
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    uniform_database,
    zipf_database,
)
from repro.data.relation import Relation
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate

from tests.conftest import random_queries


def assert_backends_identical(query, db, p, seed=0, hash_method="splitmix64"):
    tuples = run_hypercube(
        query, db, p, seed=seed, backend="tuples", hash_method=hash_method
    )
    arrays = run_hypercube(
        query, db, p, seed=seed, backend="numpy", hash_method=hash_method
    )
    assert arrays.answers == tuples.answers
    assert arrays.shares == tuples.shares
    assert arrays.report.num_rounds == tuples.report.num_rounds
    for round_a, round_t in zip(arrays.report.rounds, tuples.report.rounds):
        assert round_a.bits == round_t.bits
        assert round_a.tuples == round_t.tuples
    assert arrays.report.total_bits == tuples.report.total_bits
    assert arrays.report.max_load_bits == tuples.report.max_load_bits
    return tuples, arrays


class TestPropertyEquivalence:
    @given(query=random_queries(), seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=30, deadline=None)
    def test_randomized_queries_and_databases(self, query, seed):
        n = 8
        sizes = {a.relation: min(25, n**a.arity) for a in query.atoms}
        db = uniform_database(query, m=sizes, n=n, seed=seed)
        tuples, _ = assert_backends_identical(query, db, p=8, seed=seed)
        assert tuples.answers == evaluate(query, db)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=10, deadline=None)
    def test_triangle_uniform(self, seed):
        query = triangle_query()
        db = uniform_database(query, m=60, n=25, seed=seed)
        tuples, _ = assert_backends_identical(query, db, p=8, seed=seed)
        assert tuples.answers == evaluate(query, db)


class TestKnownWorkloads:
    @pytest.mark.parametrize("p", [4, 8, 27])
    def test_matching_chain(self, p):
        query = chain_query(3)
        db = matching_database(query, m=40, n=200, seed=11)
        assert_backends_identical(query, db, p, seed=5)

    def test_star_zipf(self):
        query = star_query(3)
        db = zipf_database(query, m=80, n=50, skew=1.2, seed=3)
        assert_backends_identical(query, db, p=16, seed=3)

    def test_planted_skew(self):
        query = ConjunctiveQuery(
            (Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))), name="J"
        )
        db = planted_heavy_hitter_database(query, 50, 500, "z", 1.0, 3, seed=7)
        assert_backends_identical(query, db, p=8, seed=1)

    def test_capacity_drop_identical_truncation(self):
        # Both backends route in canonical order, so a binding capacity
        # cap with on_overflow="drop" discards the same tuples: not
        # just equal loads, equal *answers*.
        query = ConjunctiveQuery(
            (Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))), name="J"
        )
        db = planted_heavy_hitter_database(query, 200, 2000, "z", 1.0, 5, seed=1)
        results = [
            run_hypercube(
                query, db, p=16, exponents={"z": 1.0}, seed=3,
                capacity_bits=333.3, on_overflow="drop", backend=backend,
            )
            for backend in ("tuples", "numpy")
        ]
        assert results[0].report.dropped_bits > 0
        assert results[0].report.dropped_bits == results[1].report.dropped_bits
        for round_t, round_a in zip(
            results[0].report.rounds, results[1].report.rounds
        ):
            assert round_t.bits == round_a.bits
        assert results[0].answers == results[1].answers

    def test_blake2b_flag_cross_check(self):
        # The legacy hash stays available behind the flag and the
        # backends agree under it too.
        query = triangle_query()
        db = uniform_database(query, m=50, n=20, seed=9)
        assert_backends_identical(query, db, p=8, seed=9, hash_method="blake2b")

    def test_hash_methods_place_differently(self):
        # Sanity: the two PRFs are genuinely different functions.
        query = triangle_query()
        db = uniform_database(query, m=60, n=30, seed=2)
        split = run_hypercube(query, db, p=8, seed=2, hash_method="splitmix64")
        blake = run_hypercube(query, db, p=8, seed=2, hash_method="blake2b")
        assert split.answers == blake.answers == evaluate(query, db)
        assert split.report.rounds[0].bits != blake.report.rounds[0].bits

    def test_repeated_variable_atom(self):
        query = ConjunctiveQuery(
            (Atom("R", ("x", "x")), Atom("S", ("x", "y"))), name="loop"
        )
        db = Database(
            [
                Relation("R", 2, [(1, 1), (1, 2), (3, 3), (4, 5)]),
                Relation("S", 2, [(1, 5), (3, 7), (2, 9)]),
            ],
            10,
        )
        tuples, _ = assert_backends_identical(query, db, p=6, seed=0)
        assert tuples.answers == evaluate(query, db) == {(1, 5), (3, 7)}


class TestColumnarPlumbing:
    def test_relation_array_roundtrip(self):
        rel = Relation("R", 3, [(2, 1, 0), (0, 1, 2), (2, 1, 0)])
        arr = rel.to_array()
        assert arr.shape == (2, 3)
        assert arr.tolist() == [[0, 1, 2], [2, 1, 0]]
        assert rel.to_array() is arr  # cached
        assert not arr.flags.writeable
        back = Relation.from_array("R", arr)
        assert back == rel

    def test_from_array_deduplicates(self):
        rel = Relation.from_array("R", np.array([[1, 2], [1, 2], [3, 4]]))
        assert len(rel) == 2

    def test_database_arrays(self):
        query = triangle_query()
        db = matching_database(query, m=10, n=50, seed=0)
        arrays = db.arrays(query)
        assert set(arrays) == set(query.relation_names)
        rebuilt = Database.from_arrays(arrays, db.domain_size)
        for name in arrays:
            assert rebuilt[name] == db[name]

    def test_skip_local_join_numpy(self):
        query = triangle_query()
        db = matching_database(query, m=50, n=200, seed=2)
        result = run_hypercube(query, db, p=8, skip_local_join=True, backend="numpy")
        assert result.answers == set()
        assert result.max_load_bits > 0
