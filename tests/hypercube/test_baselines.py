"""Tests for the baseline one-round algorithms."""

from __future__ import annotations

import pytest

from repro.core.families import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    uniform_database,
)
from repro.hypercube.baselines import (
    run_broadcast_join,
    run_parallel_hash_join,
    run_single_server,
)
from repro.join.multiway import evaluate


class TestSingleServer:
    def test_correct_and_load_is_input_size(self):
        q = triangle_query()
        db = matching_database(q, m=40, n=160, seed=1)
        stats = db.statistics(q)
        result = run_single_server(q, db, p=8)
        assert result.answers == evaluate(q, db)
        assert result.max_load_bits == pytest.approx(stats.total_bits)

    def test_degenerate_parallelism(self):
        # The paper's point: L = M means no parallelism at all.
        q = simple_join_query()
        db = matching_database(q, m=30, n=120, seed=2)
        result = run_single_server(q, db, p=64)
        assert result.report.server_total_bits(1) == 0.0


class TestParallelHashJoin:
    def test_simple_join_correct(self):
        q = simple_join_query()
        db = uniform_database(q, m=50, n=30, seed=3)
        result = run_parallel_hash_join(q, db, p=8)
        assert result.answers == evaluate(q, db)
        assert result.shares["z"] == 8

    def test_good_load_without_skew(self):
        q = simple_join_query()
        m, p = 800, 16
        db = matching_database(q, m=m, n=2**13, seed=4)
        stats = db.statistics(q)
        result = run_parallel_hash_join(q, db, p=p)
        # Without skew the hash join achieves ~ 2M/p bits per server.
        fair_share = 2 * stats.bits("S1") / p
        assert result.max_load_bits <= 3 * fair_share

    def test_terrible_load_with_skew(self):
        # Example 4.1: everything shares one z: load Theta(M).
        q = simple_join_query()
        db = planted_heavy_hitter_database(q, 300, 3000, "z", 1.0, 9, seed=5)
        stats = db.statistics(q)
        result = run_parallel_hash_join(q, db, p=16)
        assert result.answers == evaluate(q, db)
        assert result.max_load_bits >= stats.bits("S1") + stats.bits("S2")

    def test_star_query_join_key(self):
        q = star_query(3)
        db = matching_database(q, m=60, n=240, seed=6)
        result = run_parallel_hash_join(q, db, p=8)
        assert result.answers == evaluate(q, db)

    def test_no_common_variable_needs_explicit_key(self):
        q = chain_query(3)
        db = matching_database(q, m=10, n=40, seed=7)
        with pytest.raises(ValueError, match="common"):
            run_parallel_hash_join(q, db, p=4)
        result = run_parallel_hash_join(q, db, p=4, join_variables=["x1"])
        assert result.answers == evaluate(q, db)


class TestBroadcastJoin:
    def test_correct(self):
        q = triangle_query()
        db = uniform_database(q, m=40, n=25, seed=8)
        result = run_broadcast_join(q, db, p=6)
        assert result.answers == evaluate(q, db)

    def test_partitions_largest_by_default(self):
        q = simple_join_query()
        db = matching_database(q, {"S1": 10, "S2": 500}, n=2000, seed=9)
        stats = db.statistics(q)
        result = run_broadcast_join(q, db, p=10)
        assert result.answers == evaluate(q, db)
        # Load ~ broadcast small + partitioned slice of large.
        upper = stats.bits("S1") + 3 * stats.bits("S2") / 10
        assert result.max_load_bits <= upper

    def test_unknown_partition_relation(self):
        q = simple_join_query()
        db = matching_database(q, m=5, n=20, seed=10)
        with pytest.raises(KeyError):
            run_broadcast_join(q, db, p=2, partition_relation="zzz")

    def test_matches_hc_regime_for_tiny_relation(self):
        # Lemma 3.18: relations with M_j < M/p are broadcast by the HC
        # optimum; the explicit broadcast join then performs comparably.
        q = simple_join_query()
        db = matching_database(q, {"S1": 4, "S2": 400}, n=1600, seed=11)
        result = run_broadcast_join(q, db, p=8, partition_relation="S2")
        assert result.answers == evaluate(q, db)
