"""The ``python -m repro`` command line: parsing, plan subcommand, exits."""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

import pytest

from repro.__main__ import TourCheckFailed, _check, main, parse_query


class TestParseQuery:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("triangle", "C3"),
            ("C3", "C3"),
            ("c5", "C5"),
            ("L4", "L4"),
            ("T3", "T3"),
            ("SP2", "SP2"),
            ("sp2", "SP2"),
            ("K4", "K4"),
            ("join", "join"),
            ("B4_2", "B4_2"),
        ],
    )
    def test_known_names(self, name, expected):
        assert parse_query(name).name == expected

    def test_unknown_name(self):
        with pytest.raises(argparse.ArgumentTypeError, match="unknown query"):
            parse_query("nonsense")


class TestCheck:
    def test_passing_check_is_silent(self):
        _check(True, "fine")

    def test_failing_check_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            _check(False, "broken invariant")
        assert excinfo.value.code == 1
        assert isinstance(excinfo.value, TourCheckFailed)


class TestPlanSubcommand:
    def test_plan_prints_explain_table(self, capsys):
        main(["plan", "triangle", "--p", "8", "--m", "120", "--n", "512"])
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "hypercube" in out
        assert "pruned" in out

    def test_plan_execute_checks_answers(self, capsys):
        main([
            "plan", "join", "--p", "8", "--m", "150", "--n", "600",
            "--skew", "0.8", "--execute",
        ])
        out = capsys.readouterr().out
        assert "executed" in out
        assert "answers" in out
        assert "p50" in out and "p99" in out  # per-server percentiles

    def test_memory_budget_selects_out_of_core(self, capsys):
        # 4000 tuples * 2 cols * 8 bytes * 2 relations = 128 KiB of
        # input; a 0.1 MiB budget forces chunked execution.
        main([
            "plan", "join", "--p", "8", "--m", "4000", "--n", "16000",
            "--execute", "--memory-budget-mb", "0.1",
        ])
        out = capsys.readouterr().out
        assert "out-of-core" in out
        assert "chunked execution" in out

    def test_memory_budget_large_stays_in_memory(self, capsys):
        main([
            "plan", "join", "--p", "8", "--m", "200", "--n", "800",
            "--execute", "--memory-budget-mb", "512",
        ])
        out = capsys.readouterr().out
        assert "in-memory" in out
        assert "fits" in out


class TestBackendFlag:
    def test_backend_flag_sets_default_for_the_run(self, capsys):
        import repro

        previous = repro.default_backend()
        try:
            main(["--backend", "tuples", "plan", "T2", "--p", "4",
                  "--m", "50", "--n", "200"])
            assert repro.default_backend() == "tuples"
        finally:
            repro.set_default_backend(previous)
        out = capsys.readouterr().out
        assert "EXPLAIN" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--backend", "pandas", "plan", "T2"])


class TestRunSubcommand:
    def test_run_prints_workload_summary(self, capsys):
        main(["run", "triangle", "--p", "8", "--m", "120", "--n", "480",
              "--repeat", "3", "--max-workers", "2"])
        out = capsys.readouterr().out
        assert "session workload: p=8, 3 run(s)" in out
        assert "job-0" in out and "job-2" in out
        assert "per-run L percentiles" in out

    def test_run_pinned_strategy(self, capsys):
        main(["run", "join", "--p", "8", "--m", "150", "--skew", "0.8",
              "--strategy", "hypercube"])
        out = capsys.readouterr().out
        assert "job-0: hypercube" in out

    def test_run_memory_budget_reports_spill(self, capsys):
        main(["run", "join", "--p", "8", "--m", "4000",
              "--memory-budget-mb", "0.1"])
        out = capsys.readouterr().out
        assert "out-of-core" in out

    def test_run_capacity_drop(self, capsys):
        main(["run", "triangle", "--p", "8", "--m", "200",
              "--capacity-bits", "2000", "--on-overflow", "drop"])
        out = capsys.readouterr().out
        assert "session workload" in out

    def test_run_inapplicable_strategy_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["run", "triangle", "--p", "8", "--m", "100",
                  "--strategy", "no-such-strategy"])


class TestSubprocessExitCodes:
    """The real contract CI relies on: exit status of the module."""

    @staticmethod
    def _run(*args):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            timeout=600,
        )

    def test_plan_subcommand_exits_zero(self):
        result = self._run("plan", "T2", "--p", "8", "--m", "100",
                           "--n", "400")
        assert result.returncode == 0, result.stderr
        assert "EXPLAIN" in result.stdout

    def test_bad_query_exits_nonzero(self):
        result = self._run("plan", "nonsense")
        assert result.returncode != 0
