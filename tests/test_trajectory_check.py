"""The CI perf-regression gate in ``benchmarks/collect_trajectory.py``."""

from __future__ import annotations

import importlib.util
import json
import pathlib


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "collect_trajectory", REPO_ROOT / "benchmarks" / "collect_trajectory.py"
)
collect = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(collect)


def fresh_rows():
    return [
        {"name": "bench_route", "mean_s": 0.010, "stddev_s": 0.001,
         "rounds": 5},
        {"name": "bench_join", "mean_s": 0.020, "stddev_s": 0.002,
         "rounds": 5,
         "extra_info": {"makespan_bits": 1000.0, "note": "text"}},
    ]


def entry_for(rows, host=None, collected_at="2026-01-01T00:00:00Z"):
    return {
        "collected_at": collected_at,
        "host": host if host is not None else collect.host_info(),
        "version": "1.7.0",
        "benchmarks": rows,
    }


class TestComparableHosts:
    def test_same_cpus_and_arch_match(self):
        host = collect.host_info()
        assert collect.comparable_hosts(host, dict(host))

    def test_differing_cpus_do_not(self):
        host = collect.host_info()
        other = dict(host, cpus=(host.get("cpus") or 0) + 64)
        assert not collect.comparable_hosts(host, other)


class TestCheckAgainstBaseline:
    def test_passes_against_identical_baseline(self):
        trajectory = [entry_for(fresh_rows())]
        failures, notes = collect.check_against_baseline(
            fresh_rows(), trajectory, tolerance=1.5
        )
        assert failures == []
        assert notes == []

    def test_fails_on_injected_2x_regression(self):
        trajectory = [entry_for(fresh_rows())]
        slow = fresh_rows()
        slow[0]["mean_s"] *= 2  # the acceptance scenario
        failures, _ = collect.check_against_baseline(
            slow, trajectory, tolerance=1.5
        )
        assert len(failures) == 1
        assert "bench_route" in failures[0]
        assert "2.00x" in failures[0]

    def test_no_comparable_host_notes_and_passes(self):
        foreign = dict(collect.host_info())
        foreign["cpus"] = (foreign.get("cpus") or 0) + 64
        trajectory = [entry_for(fresh_rows(), host=foreign)]
        slow = fresh_rows()
        slow[0]["mean_s"] *= 10
        failures, notes = collect.check_against_baseline(
            slow, trajectory, tolerance=1.5
        )
        assert failures == []  # wall clock never compared across hosts
        assert any("no comparable-host baseline" in n for n in notes)

    def test_extra_info_facts_checked_host_independently(self):
        foreign = dict(collect.host_info())
        foreign["cpus"] = (foreign.get("cpus") or 0) + 64
        trajectory = [entry_for(fresh_rows(), host=foreign)]
        worse = fresh_rows()
        worse[1]["extra_info"]["makespan_bits"] = 5000.0  # model units
        failures, _ = collect.check_against_baseline(
            worse, trajectory, tolerance=1.5
        )
        assert len(failures) == 1
        assert "makespan_bits" in failures[0]

    def test_latest_entry_wins_for_facts(self):
        old = fresh_rows()
        old[1]["extra_info"]["makespan_bits"] = 100.0
        trajectory = [
            entry_for(old, collected_at="2026-01-01T00:00:00Z"),
            entry_for(fresh_rows(), collected_at="2026-02-01T00:00:00Z"),
        ]
        # 1000.0 would be 10x the stale entry, but matches the latest.
        failures, _ = collect.check_against_baseline(
            fresh_rows(), trajectory, tolerance=1.5
        )
        assert failures == []

    def test_new_benchmark_has_no_history_to_fail(self):
        trajectory = [entry_for(fresh_rows())]
        rows = fresh_rows() + [
            {"name": "bench_new", "mean_s": 99.0, "stddev_s": 0.0,
             "rounds": 3}
        ]
        failures, _ = collect.check_against_baseline(
            rows, trajectory, tolerance=1.5
        )
        assert failures == []


class TestMainCheckMode:
    def run_main(self, argv, capsys):
        try:
            collect.main(argv)
        except SystemExit as exc:
            return int(exc.code or 0), capsys.readouterr()
        return 0, capsys.readouterr()

    def write_artifact(self, tmp_path, rows):
        artifact = {
            "benchmarks": [
                {"fullname": row["name"],
                 "stats": {"mean": row["mean_s"],
                           "stddev": row["stddev_s"],
                           "rounds": row["rounds"]},
                 **({"extra_info": row["extra_info"]}
                    if "extra_info" in row else {})}
                for row in rows
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(artifact))
        return str(path)

    def test_check_passes_and_does_not_append(self, tmp_path, capsys):
        baseline = tmp_path / "trajectory.json"
        baseline.write_text(json.dumps([entry_for(fresh_rows())]))
        artifact = self.write_artifact(tmp_path, fresh_rows())
        code, captured = self.run_main(
            ["--from-json", artifact, "--check",
             "--baseline", str(baseline)], capsys,
        )
        assert code == 0
        assert "perf check passed" in captured.out
        assert len(json.loads(baseline.read_text())) == 1  # unchanged

    def test_check_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "trajectory.json"
        baseline.write_text(json.dumps([entry_for(fresh_rows())]))
        slow = fresh_rows()
        slow[0]["mean_s"] *= 2
        artifact = self.write_artifact(tmp_path, slow)
        code, captured = self.run_main(
            ["--from-json", artifact, "--check",
             "--baseline", str(baseline)], capsys,
        )
        assert code == 1
        assert "PERF REGRESSION" in captured.err

    def test_tolerance_must_exceed_one(self, tmp_path, capsys):
        artifact = self.write_artifact(tmp_path, fresh_rows())
        code, _ = self.run_main(
            ["--from-json", artifact, "--check", "--tolerance", "0.9"],
            capsys,
        )
        assert code != 0


class TestExecutionContext:
    def test_context_shape(self):
        context = collect.execution_context()
        assert "pool" in context
        assert "machines" in context
        # The repo is a git checkout: the SHA should resolve here.
        sha = context.get("git_sha")
        assert sha is None or (isinstance(sha, str) and len(sha) >= 7)
