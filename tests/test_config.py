"""The system-wide backend switch (`repro.config`)."""

from __future__ import annotations

import pytest

import repro
from repro.config import (
    default_backend,
    resolve_backend,
    resolve_generator_backend,
    set_default_backend,
    use_backend,
)
from repro.core.families import triangle_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube
from repro.multiround.executor import run_plan
from repro.multiround.plans import generic_plan


@pytest.fixture
def restore_backend():
    previous = default_backend()
    yield
    set_default_backend(previous)


class TestSwitch:
    def test_ships_with_numpy_default(self):
        assert default_backend() == "numpy"

    def test_set_returns_previous(self, restore_backend):
        assert set_default_backend("tuples") == "numpy"
        assert default_backend() == "tuples"
        assert set_default_backend("numpy") == "tuples"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("pandas")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("pandas")
        with pytest.raises(ValueError, match="unknown generator backend"):
            resolve_generator_backend("tuples")

    def test_resolution(self, restore_backend):
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("tuples") == "tuples"
        assert resolve_generator_backend(None) == "numpy"
        set_default_backend("tuples")
        assert resolve_backend(None) == "tuples"
        # Generators stay on their own default: switching execution
        # engines must never change the data a seed produces.
        assert resolve_generator_backend(None) == "numpy"
        assert resolve_generator_backend("python") == "python"

    def test_generators_invariant_under_execution_switch(
        self, restore_backend
    ):
        q = triangle_query()
        a = matching_database(q, m=20, n=100, seed=7)
        set_default_backend("tuples")
        b = matching_database(q, m=20, n=100, seed=7)
        assert all(a[r] == b[r] for r in q.relation_names)

    def test_exported_at_package_level(self):
        assert repro.default_backend is default_backend
        assert repro.set_default_backend is set_default_backend
        assert repro.use_backend is use_backend


class TestUseBackendContextManager:
    def test_restores_on_exit(self):
        assert default_backend() == "numpy"
        with use_backend("tuples") as active:
            assert active == "tuples"
            assert default_backend() == "tuples"
        assert default_backend() == "numpy"

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("tuples"):
                assert default_backend() == "tuples"
                raise RuntimeError("boom")
        assert default_backend() == "numpy"

    def test_nests(self):
        with use_backend("tuples"):
            with use_backend("numpy"):
                assert default_backend() == "numpy"
            assert default_backend() == "tuples"
        assert default_backend() == "numpy"

    def test_rejects_unknown_without_clobbering(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with use_backend("pandas"):
                pass  # pragma: no cover
        assert default_backend() == "numpy"

    def test_governs_executors_in_scope(self):
        q = triangle_query()
        db = matching_database(q, m=30, n=150, seed=1)
        with use_backend("tuples"):
            reference = run_hypercube(q, db, p=4, seed=0)
        columnar = run_hypercube(q, db, p=4, seed=0)
        assert reference.answers == columnar.answers
        assert all(
            not reference.simulation.server(s).array_fragments
            for s in range(4)
        )
        assert any(
            columnar.simulation.server(s).array_fragments for s in range(4)
        )


class TestSwitchGovernsExecutors:
    def test_hypercube_default_equals_explicit_numpy(self, restore_backend):
        q = triangle_query()
        db = matching_database(q, m=80, n=400, seed=0)
        implicit = run_hypercube(q, db, p=8, seed=1)
        explicit = run_hypercube(q, db, p=8, seed=1, backend="numpy")
        assert implicit.answers == explicit.answers
        assert implicit.report.total_bits == explicit.report.total_bits
        # Default runs store array fragments, the tuple path would not.
        assert any(
            implicit.simulation.server(s).array_fragments for s in range(8)
        )
        set_default_backend("tuples")
        reference = run_hypercube(q, db, p=8, seed=1)
        assert reference.answers == implicit.answers
        assert all(
            not reference.simulation.server(s).array_fragments
            for s in range(8)
        )

    def test_multiround_default_follows_switch(self, restore_backend):
        q = triangle_query()
        plan = generic_plan(q)
        db = matching_database(q, m=60, n=300, seed=2)
        columnar = run_plan(plan, db, p=8, seed=0, keep_view_fragments=True)
        import numpy as np

        assert all(
            isinstance(c, np.ndarray) for c in columnar.view_fragments["V1"]
        )
        set_default_backend("tuples")
        tuple_run = run_plan(plan, db, p=8, seed=0, keep_view_fragments=True)
        assert all(
            isinstance(c, set) for c in tuple_run.view_fragments["V1"]
        )
        assert tuple_run.answers == columnar.answers
        assert tuple_run.report.total_bits == columnar.report.total_bits
