"""Heterogeneity end-to-end: uniform bit-identity, caps, planner, trace.

The heterogeneous machine model's central invariant is that the uniform
spec is *bit-identical* to the pre-heterogeneity code paths: equal
speeds normalize away to the unweighted modulo hash and absent
per-machine caps leave the global capacity comparisons untouched.
These tests pin that down for all four engines across backends, pools
and storage, then exercise the genuinely heterogeneous behavior --
per-server caps in :class:`LoadExceededError`, makespan pricing in the
planner, speed-weighted routing reducing measured makespan, and the
trace/record/summary plumbing.
"""

from __future__ import annotations

import pytest

from repro import (
    ClusterConfig,
    MachineSpec,
    Session,
    matching_database,
    plan_query,
    star_query,
    triangle_query,
    use_machines,
    zipf_database,
)
from repro.core.families import chain_query
from repro.hypercube import run_hypercube
from repro.hypercube.analysis import (
    predicted_load_bits_with_frequencies,
    predicted_makespan_bits,
    predicted_server_loads_bits,
)
from repro.join import evaluate
from repro.mpc.simulator import LoadExceededError, MPCSimulation
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan
from repro.planner.statistics import DataStatistics
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage.manager import StorageManager
from repro.trace import TraceQuery, TraceRecorder, tracing


def fingerprint(result):
    """Everything that must be bit-identical (see test_pool_identity)."""
    report = result.report
    return (
        sorted(result.answers),
        [sorted(r.bits.items()) for r in report.rounds],
        [sorted(r.tuples.items()) for r in report.rounds],
        [sorted(r.dropped_bits.items()) for r in report.rounds],
    )


HETERO = MachineSpec.parse("4x1,4x4")


@pytest.fixture(autouse=True)
def homogeneous_default():
    """Pin the machine default to None for every test in this module.

    The identity tests compare explicit specs against the bare
    ``machines=None`` path, which must mean *homogeneous* here even
    when the suite runs under ``REPRO_DEFAULT_MACHINES`` (the CI leg
    that reruns everything on a heterogeneous pattern).  Tests that
    exercise the default pattern set their own scope inside.
    """
    with use_machines(None):
        yield


# --------------------------------------------------------------------------
# Tentpole invariant: MachineSpec.uniform(p) is bit-identical to None.
# --------------------------------------------------------------------------


class TestUniformIdentity:
    @pytest.mark.parametrize("backend", ("tuples", "numpy"))
    @pytest.mark.parametrize("speed", (1.0, 2.5))
    def test_hypercube(self, backend, speed):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=3)
        plain = run_hypercube(q, db, 8, seed=1, backend=backend)
        uniform = run_hypercube(
            q, db, 8, seed=1, backend=backend,
            machines=MachineSpec.uniform(8, speed=speed),
        )
        assert fingerprint(uniform) == fingerprint(plain)

    @pytest.mark.parametrize("backend", ("tuples", "numpy"))
    def test_star_skew(self, backend):
        q = star_query(2)
        db = zipf_database(q, m=500, n=500, skew=1.0, seed=2)
        plain = run_star_skew(q, db, 8, seed=1, backend=backend)
        uniform = run_star_skew(
            q, db, 8, seed=1, backend=backend,
            machines=MachineSpec.uniform(8),
        )
        assert fingerprint(uniform) == fingerprint(plain)

    @pytest.mark.parametrize("backend", ("tuples", "numpy"))
    def test_triangle_skew(self, backend):
        q = triangle_query()
        db = zipf_database(q, m=400, n=400, skew=1.0, seed=4)
        plain = run_triangle_skew(db, 4, seed=1, backend=backend)
        uniform = run_triangle_skew(
            db, 4, seed=1, backend=backend, machines=MachineSpec.uniform(4),
        )
        assert fingerprint(uniform) == fingerprint(plain)

    @pytest.mark.parametrize("backend", ("tuples", "numpy"))
    def test_multiround(self, backend):
        q = chain_query(4)
        db = matching_database(q, m=400, n=1600, seed=5)
        plan = chain_plan(4)
        plain = run_plan(plan, db, 8, seed=1, backend=backend)
        uniform = run_plan(
            plan, db, 8, seed=1, backend=backend,
            machines=MachineSpec.uniform(8),
        )
        assert fingerprint(uniform) == fingerprint(plain)

    @pytest.mark.parametrize("pool", ("thread", "process"))
    def test_across_pools(self, pool):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=3)
        plain = run_hypercube(q, db, 8, seed=1, pool="serial")
        uniform = run_hypercube(
            q, db, 8, seed=1, pool=pool, max_workers=2,
            machines=MachineSpec.uniform(8),
        )
        assert fingerprint(uniform) == fingerprint(plain)

    def test_with_storage(self, tmp_path):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=3)
        plain = run_hypercube(q, db, 8, seed=1)
        with StorageManager(root=tmp_path / "spill", chunk_rows=64) as st:
            uniform = run_hypercube(
                q, db, 8, seed=1, storage=st,
                machines=MachineSpec.uniform(8),
            )
            assert fingerprint(uniform) == fingerprint(plain)

    def test_truncation_identical_under_uniform_spec(self):
        q = triangle_query()
        db = matching_database(q, m=400, n=1600, seed=3)
        kwargs = dict(seed=1, capacity_bits=3000.0, on_overflow="drop")
        plain = run_hypercube(q, db, 8, **kwargs)
        assert plain.report.dropped_bits > 0
        uniform = run_hypercube(
            q, db, 8, machines=MachineSpec.uniform(8), **kwargs
        )
        assert fingerprint(uniform) == fingerprint(plain)

    def test_session_records_uniform_as_homogeneous(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=0)
        with Session(p=8, seed=0) as session:
            plain = session.run(q, db)
            baseline = fingerprint(plain)
        with Session(p=8, seed=0, machines=MachineSpec.uniform(8)) as session:
            uniform = session.run(q, db)
            record = session.history[-1]
        assert fingerprint(uniform) == baseline
        # Degenerate spec: the record carries no heterogeneity fields.
        assert record.machines is None
        assert record.makespan_bits is None

    def test_predicted_loads_reduce_to_homogeneous(self):
        q = triangle_query()
        db = matching_database(q, m=500, n=2000, seed=0)
        dstats = DataStatistics.from_database(q, db, 8)
        shares = {v: 2 for v in q.variables}
        classic = predicted_load_bits_with_frequencies(
            q, dstats.stats, shares, dstats.frequency_maps()
        )
        for spec in (None, MachineSpec.uniform(8), MachineSpec.uniform(8, 3.0)):
            loads = predicted_server_loads_bits(
                q, dstats.stats, shares, spec, dstats.frequency_maps()
            )
            assert max(loads) == pytest.approx(classic)
        assert predicted_makespan_bits(
            q, dstats.stats, shares, MachineSpec.uniform(8),
            dstats.frequency_maps(),
        ) == pytest.approx(classic)


# --------------------------------------------------------------------------
# Per-server capacities (satellite: LoadExceededError carries the
# breaching server's own cap).
# --------------------------------------------------------------------------


class TestPerServerCapacities:
    def test_error_carries_breaching_servers_cap(self):
        machines = MachineSpec(
            (1.0, 1.0), capacities=(10_000.0, 64.0)
        )
        sim = MPCSimulation(p=2, value_bits=32, machines=machines)
        sim.begin_round()
        sim.send(0, "R", [(1, 2)] * 10)  # well under server 0's cap
        with pytest.raises(LoadExceededError) as err:
            sim.send(1, "R", [(1, 2)] * 10)
        assert err.value.server == 1
        assert err.value.capacity == 64.0  # its own cap, not a global one
        assert err.value.bits > 64.0

    def test_global_cap_tightens_machine_cap(self):
        machines = MachineSpec((1.0, 1.0), capacities=(None, 1000.0))
        sim = MPCSimulation(p=2, value_bits=32, capacity_bits=64.0,
                            machines=machines)
        sim.begin_round()
        with pytest.raises(LoadExceededError) as err:
            sim.send(1, "R", [(1, 2)] * 10)
        assert err.value.capacity == 64.0

    def test_drop_mode_truncates_at_per_server_cap(self):
        machines = MachineSpec((1.0, 1.0), capacities=(None, 128.0))
        sim = MPCSimulation(p=2, value_bits=32, on_overflow="drop",
                            machines=machines)
        sim.begin_round()
        sim.send(0, "R", [(i, i) for i in range(10)])
        sim.send(1, "R", [(i, i) for i in range(10)])
        load = sim.end_round()
        assert load.dropped_bits.get(1, 0.0) > 0
        assert 0 not in load.dropped_bits  # uncapped server keeps all
        assert load.bits[1] <= 128.0

    def test_session_config_threads_per_server_caps(self):
        q = triangle_query()
        db = matching_database(q, m=400, n=1600, seed=3)
        # One crippled server out of eight: its cap binds, the rest don't.
        caps = tuple([None] * 7 + [900.0])
        machines = MachineSpec((1.0,) * 8, capacities=caps)
        config = ClusterConfig(p=8, seed=0, on_overflow="drop",
                               machines=machines)
        with Session(config) as session:
            result = session.run(q, db, strategy="hypercube")
        report = result.load_report
        assert report.dropped_bits > 0
        dropped_servers = {
            s for r in report.rounds for s in r.dropped_bits
        }
        assert dropped_servers == {7}


# --------------------------------------------------------------------------
# Heterogeneous behavior: planner pricing, weighted routing, makespan.
# --------------------------------------------------------------------------


class TestHeterogeneousPlanning:
    def test_explain_table_reports_makespan(self):
        q = triangle_query()
        db = matching_database(q, m=500, n=2000, seed=0)
        explained = plan_query(q, db, 8, machines=HETERO)
        table = explained.table()
        assert "machines: 4x1+4x4" in table
        assert "predicted span" in table
        assert explained.machines is HETERO

    def test_uniform_spec_prices_like_none(self):
        q = triangle_query()
        db = matching_database(q, m=500, n=2000, seed=0)
        plain = plan_query(q, db, 8)
        uniform = plan_query(q, db, 8, machines=MachineSpec.uniform(8))
        assert [
            (c.name, c.estimate.load_bits) for c in uniform.ranked
        ] == [(c.name, c.estimate.load_bits) for c in plain.ranked]

    def test_makespan_estimates_beat_homogeneous_load(self):
        # 4 fast machines shoulder more bits, so every speed-weighted
        # makespan estimate is at most the homogeneous L estimate.
        q = triangle_query()
        db = matching_database(q, m=500, n=2000, seed=0)
        plain = plan_query(q, db, 8)
        hetero = plan_query(q, db, 8, machines=HETERO)
        for candidate in hetero.ranked:
            classic = plain.candidate(candidate.name).estimate.load_bits
            assert candidate.estimate.load_bits <= classic + 1e-9


class TestHeterogeneousExecution:
    def test_weighted_shares_cut_measured_makespan(self):
        q = star_query(2)
        db = matching_database(q, m=2000, n=8000, seed=1)
        expected = evaluate(q, db)
        uniform = run_star_skew(q, db, 8, seed=1)
        weighted = run_star_skew(q, db, 8, seed=1, machines=HETERO)
        assert weighted.answers == expected
        assert uniform.answers == expected

        def makespan(result):
            return max(
                bits / HETERO.speed(s)
                for r in result.report.rounds
                for s, bits in r.bits.items()
            )

        # Speed-weighted routing must strictly beat uniform hashing on
        # the same heterogeneous cluster.
        assert makespan(weighted) < makespan(uniform)
        assert weighted.report.makespan_bits == pytest.approx(
            makespan(weighted)
        )

    def test_session_records_and_traces_machines(self, tmp_path):
        q = triangle_query()
        db = matching_database(q, m=400, n=1600, seed=0)
        config = ClusterConfig(p=8, seed=0, machines="4x1,4x4",
                               trace=tmp_path)
        with Session(config) as session:
            result = session.run(q, db, label="het")
            record = session.history[-1]
            summary = session.workload_summary()
        assert result.answers == evaluate(q, db)
        assert record.machines == "4x1+4x4"
        assert record.makespan_bits is not None
        assert "makespan" in record.line()
        assert "machines 4x1+4x4" in summary

        view = TraceQuery(record.trace_path)
        assert view.machines() == HETERO
        classes = view.speed_class_bits()
        assert [row["speed"] for row in classes] == [1.0, 4.0]
        assert sum(row["bits"] for row in classes) == pytest.approx(
            view.total_bits()
        )
        assert view.makespan_bits() == pytest.approx(record.makespan_bits)

    def test_config_rejects_mismatched_spec(self):
        with pytest.raises(ValueError):
            ClusterConfig(p=16, machines="4x1,4x4")

    def test_default_pattern_reaches_session(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=0)
        with use_machines("1,4"):
            with Session(p=8, seed=0) as session:
                session.run(q, db)
                record = session.history[-1]
        assert record.machines == MachineSpec.parse("1,4").cycle_to(8).describe()
        assert record.makespan_bits is not None

    def test_homogeneous_trace_has_no_machine_rows(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=1200, seed=0)
        recorder = TraceRecorder()
        with tracing(recorder):
            run_hypercube(q, db, 8, seed=1)
        view = TraceQuery(recorder.finish())
        assert view.machines() is None
        assert view.speed_class_bits() is None
        assert view.makespan_bits() is None
