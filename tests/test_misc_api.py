"""Coverage for smaller public API surfaces and error paths."""

from __future__ import annotations

import pytest

from repro.bounds.entropy import raw_size_bits
from repro.core.families import chain_query, triangle_query
from repro.core.lp import InfeasibleError, snap, snap_vector, solve_lp
from repro.core.stats import Statistics
from repro.data.generators import matching_database
from repro.hypercube.analysis import total_replication
from repro.join.multiway import output_relation
from repro.multiround.plans import chain_plan


class TestLPWrapper:
    def test_solve_min(self):
        # min x + y s.t. x + y >= 1 -> value 1.
        sol = solve_lp([1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-1.0])
        assert sol.value == pytest.approx(1.0)
        assert sum(sol.x) == pytest.approx(1.0)

    def test_solve_max(self):
        sol = solve_lp([1.0], a_ub=[[1.0]], b_ub=[5.0], maximize=True)
        assert sol.value == pytest.approx(5.0)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            solve_lp([1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])

    def test_unbounded_raises(self):
        with pytest.raises(InfeasibleError):
            solve_lp([1.0], maximize=True)

    def test_solution_iterable(self):
        sol = solve_lp([1.0, 0.0], a_ub=[[-1.0, 0.0]], b_ub=[-2.0])
        assert list(sol)[0] == pytest.approx(2.0)


class TestSnap:
    def test_snaps_near_rationals(self):
        assert snap(0.33333333331) == pytest.approx(1 / 3)
        assert snap(0.4999999999) == pytest.approx(0.5)

    def test_leaves_far_values(self):
        weird = 0.123456789
        assert snap(weird, max_denominator=8) == weird

    def test_vector(self):
        out = snap_vector([0.499999999999, 1.0000000001])
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(1.0)


class TestAnalysisHelpers:
    def test_total_replication_triangle(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 100, domain_size=1024)
        shares = {"x1": 4, "x2": 4, "x3": 4}
        # Each relation replicated 64/16 = 4 times.
        assert total_replication(q, stats, shares) == pytest.approx(
            4 * stats.total_bits
        )

    def test_raw_size_degenerate_domain(self):
        assert raw_size_bits(1, 5, 2) == 10.0


class TestOutputRelation:
    def test_packages_answers(self):
        q = chain_query(2)
        rel = output_relation(q, {(1, 2, 3)}, name="ans")
        assert rel.name == "ans"
        assert rel.arity == 3
        assert (1, 2, 3) in rel


class TestPlanIntrospection:
    def test_nodes_by_depth_structure(self):
        plan = chain_plan(8, 0.0)
        by_depth = plan.root.nodes_by_depth()
        assert sorted(by_depth) == [1, 2, 3]
        assert len(by_depth[1]) == 4  # four leaf-level binary joins

    def test_operator_schemas_cover_children(self):
        plan = chain_plan(4, 0.0)
        for nodes in plan.root.nodes_by_depth().values():
            for node in nodes:
                for child in node.children:
                    child_vars = (
                        set(child.variables)
                        if hasattr(child, "relation")
                        else set(child.schema)
                    )
                    assert child_vars <= set(node.schema)


class TestPublicImports:
    def test_star_exports(self):
        import repro
        import repro.bounds
        import repro.hashing
        import repro.hypercube
        import repro.multiround
        import repro.skew

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_database_statistics_roundtrip(self):
        q = triangle_query()
        db = matching_database(q, m=10, n=40, seed=0)
        stats = db.statistics(q)
        assert stats.total_tuples == 30
        assert stats.value_bits == 6  # ceil(log2 40)
