"""Planner behaviour: ranking, pruning, execution, acceptance margins."""

from __future__ import annotations

import pytest

from repro.core.families import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.core.stats import Statistics
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    zipf_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.planner import (
    DataStatistics,
    OneRoundHyperCube,
    Strategy,
    default_strategies,
    execute,
    plan,
    register,
)


class TestPlanTable:
    def test_triangle_covers_at_least_five_strategies(self):
        """Acceptance: ranked cost table >= 5 strategies for C3."""
        q = triangle_query()
        stats = Statistics.uniform(q, m=1000, domain_size=4096)
        explained = plan(q, stats, 64)
        assert len(explained.ranked) >= 5
        names = {c.name for c in explained.ranked}
        assert {"hypercube", "skew-oblivious", "skew-triangle",
                "multiround"} <= names

    def test_accepts_statistics_database_and_datastatistics(self):
        q = triangle_query()
        db = matching_database(q, m=200, n=1024, seed=0)
        from_stats = plan(q, db.statistics(q), 16)
        from_db = plan(q, db, 16)
        from_dstats = plan(q, DataStatistics.from_database(q, db, 16), 16)
        for explained in (from_stats, from_db, from_dstats):
            assert explained.winner.applicable
        # A matching database has no heavy hitters, so all three agree.
        assert from_db.winner.name == from_dstats.winner.name

    def test_rejects_mismatched_statistics(self):
        q = triangle_query()
        other = star_query(2)
        stats = Statistics.uniform(other, m=100, domain_size=100)
        with pytest.raises(ValueError, match="different query"):
            plan(q, stats, 16)

    def test_pruning_reasons(self):
        q = chain_query(3)
        stats = Statistics.uniform(q, m=100, domain_size=100)
        explained = plan(q, stats, 16)
        pruned = {c.name: c.reason for c in explained.pruned}
        assert "skew-star" in pruned
        assert "skew-triangle" in pruned
        assert "hash-join" in pruned
        for reason in pruned.values():
            assert reason

    def test_table_renders(self):
        q = triangle_query()
        stats = Statistics.uniform(q, m=1000, domain_size=4096)
        explained = plan(q, stats, 64)
        table = explained.table()
        assert "EXPLAIN" in table
        assert "pruned" in table
        assert "hypercube" in table
        assert str(explained) == table

    def test_ranking_is_by_predicted_load(self):
        q = triangle_query()
        stats = Statistics.uniform(q, m=1000, domain_size=4096)
        explained = plan(q, stats, 64)
        loads = [c.estimate.load_bits for c in explained.ranked]
        assert loads == sorted(loads)
        assert explained.lower_bound_bits > 0
        assert explained.winner.estimate.load_bits >= 0


class TestSkewRouting:
    """The planner switches strategy exactly when skew warrants it."""

    def test_matching_star_prefers_hypercube(self):
        q = star_query(2)
        db = matching_database(q, m=1000, n=8192, seed=1)
        explained = plan(q, db, 16)
        assert explained.winner.name == "hypercube"

    def test_skewed_star_prefers_skew_aware(self):
        q = star_query(2)
        db = zipf_database(q, m=2000, n=2000, skew=1.0, seed=2)
        explained = plan(q, db, 16)
        assert explained.winner.name == "skew-star"

    def test_threshold_crossing(self):
        """Planner flips to skew-star once a hitter crosses m/p."""
        q = star_query(2)
        p = 16
        light = planted_heavy_hitter_database(
            q, m=1600, n=8192, variable="z", hitter_fraction=0.01, seed=3
        )
        heavy = planted_heavy_hitter_database(
            q, m=1600, n=8192, variable="z", hitter_fraction=0.5, seed=3
        )
        assert plan(q, light, p).winner.name == "hypercube"
        assert plan(q, heavy, p).winner.name == "skew-star"

    def test_skewed_triangle_prefers_skew_triangle(self):
        q = triangle_query()
        db = planted_heavy_hitter_database(
            q, m=2000, n=10000, variable="x1", hitter_fraction=0.5, seed=3
        )
        explained = plan(q, db, 64)
        assert explained.winner.name == "skew-triangle"


class TestExecute:
    @pytest.mark.parametrize(
        "query,db_seed",
        [
            (triangle_query(), 0),
            (star_query(2), 1),
            (chain_query(3), 2),
            (simple_join_query(), 3),
        ],
        ids=["triangle", "star", "chain", "join"],
    )
    def test_answers_match_sequential_join(self, query, db_seed):
        """Acceptance: execute() is bit-identical to join.evaluate."""
        db = matching_database(query, m=300, n=2048, seed=db_seed)
        result = execute(query, db, 16, seed=db_seed)
        assert result.answers == evaluate(query, db)

    def test_skewed_answers_match_sequential_join(self):
        q = star_query(2)
        db = zipf_database(q, m=1000, n=1000, skew=1.0, seed=5)
        result = execute(q, db, 16)
        assert result.answers == evaluate(q, db)

    def test_execute_reuses_precomputed_statistics(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=2048, seed=0)
        explained = plan(q, db, 16)
        result = execute(q, db, 16, stats=explained.statistics)
        assert result.plan.statistics is explained.statistics
        assert result.answers == evaluate(q, db)

    def test_prediction_attached_to_report(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=2048, seed=0)
        result = execute(q, db, 16)
        report = result.report
        assert report.strategy == result.strategy
        assert report.predicted_load_bits == result.predicted_load_bits
        assert report.prediction_ratio() is not None
        assert "planner" in report.summary()

    def test_forced_strategy(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=2048, seed=0)
        result = execute(q, db, 16, strategy="hypercube-numpy")
        assert result.strategy == "hypercube-numpy"
        assert result.answers == evaluate(q, db)

    def test_forcing_inapplicable_strategy_raises(self):
        q = chain_query(3)
        db = matching_database(q, m=100, n=1024, seed=0)
        with pytest.raises(ValueError, match="not applicable"):
            execute(q, db, 16, strategy="skew-star")

    def test_summary_renders(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=2048, seed=0)
        result = execute(q, db, 16)
        summary = result.summary()
        assert "EXPLAIN" in summary
        assert "executed" in summary


class TestAcceptanceMargin:
    def test_zipf_star_beats_hypercube_by_predicted_margin(self):
        """Acceptance: on a zipf-skewed star join the planner's pick
        beats vanilla HyperCube's measured max-load by the margin its
        own cost model predicted, within 2x.

        Pinned to the homogeneous cluster: the margins compare raw
        max-load against the homogeneous cost forms, which a
        ``REPRO_DEFAULT_MACHINES`` pattern (the CI heterogeneous leg)
        would deliberately skew.
        """
        from repro.config import use_machines

        with use_machines(None):
            self._check_margin()

    def _check_margin(self):
        q = star_query(2)
        p = 16
        db = zipf_database(q, m=2000, n=2000, skew=1.0, seed=2)

        explained = plan(q, db, p)
        winner = explained.winner
        assert winner.name != "hypercube"
        predicted_margin = (
            explained.candidate("hypercube").estimate.load_bits
            / winner.estimate.load_bits
        )
        assert predicted_margin > 1.0

        hc = run_hypercube(q, db, p, seed=0)
        picked = execute(q, db, p, seed=0)
        measured_margin = hc.max_load_bits / picked.max_load_bits
        assert measured_margin > 1.0, "planner's pick must actually win"
        agreement = measured_margin / predicted_margin
        assert 0.5 <= agreement <= 2.0, (
            f"measured margin {measured_margin:.2f} vs predicted "
            f"{predicted_margin:.2f}"
        )


class TestRegistry:
    def test_default_strategies_have_unique_names(self):
        names = [s.name for s in default_strategies()]
        assert len(names) == len(set(names))

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register(OneRoundHyperCube("tuples"))

    def test_register_and_use_custom_strategy(self):
        class Never(Strategy):
            name = "never"
            summary = "always pruned"

            def applicable(self, query, dstats, p):
                return "test strategy, never applicable"

        q = triangle_query()
        stats = Statistics.uniform(q, m=100, domain_size=128)
        pool = list(default_strategies()) + [Never()]
        explained = plan(q, stats, 16, strategies=pool)
        assert explained.candidate("never").reason
