"""Sampled heavy-hitter statistics (`sample_heavy_hitters`).

The paper's remark that x-statistics "can be easily obtained from small
samples of the input", quantified: on zipf data the sampled estimator
must find every comfortably-heavy value, bound the relative error on
their frequencies, and slot into the planner exactly where the exact
statistics go.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.families import star_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.generators import zipf_database, zipf_relation
from repro.data.database import Database
from repro.planner import plan as planner_plan
from repro.planner.statistics import DataStatistics, sample_heavy_hitters
from repro.skew.heavy_hitters import HitterStatistics
from repro.storage import StorageManager

P = 16
M = 20_000
N = 5_000
SAMPLE = 4_000


@pytest.fixture(scope="module")
def zipf_db():
    query = star_query(2)
    return query, zipf_database(query, m=M, n=N, skew=1.1, seed=7)


class TestErrorBounds:
    def test_zipf_estimation_error_bounded(self, zipf_db):
        query, db = zipf_db
        exact = HitterStatistics.from_database(query, db, "z", 1.0, P)
        sampled = sample_heavy_hitters(
            query, db, "z", P, sample_rows=SAMPLE, seed=0
        )
        assert sampled.variable == "z"
        for relation in exact.frequencies:
            m = len(db[relation])
            threshold = m / P
            for value, frequency in exact.frequencies[relation].items():
                estimate = sampled.frequency(relation, value)
                if frequency >= 2 * threshold:
                    # Comfortably heavy: must be detected, and the
                    # estimate must be within 25% relative error
                    # (expected sample count >= 2 * SAMPLE / P = 500,
                    # so 25% is ~5 sigma).
                    assert estimate > 0, (
                        f"missed hitter {value} ({frequency}) in {relation}"
                    )
                    assert abs(estimate - frequency) <= 0.25 * frequency
                if estimate > 0:
                    # Anything reported is at least borderline: no
                    # estimate may exceed 2x its true frequency.
                    assert estimate <= 2 * frequency + threshold

    def test_no_wild_false_positives(self, zipf_db):
        query, db = zipf_db
        sampled = sample_heavy_hitters(
            query, db, "z", P, sample_rows=SAMPLE, seed=1
        )
        for relation, estimates in sampled.frequencies.items():
            m = len(db[relation])
            position = query.atom(relation).variables.index("z")
            degrees = db[relation].degrees((position,))
            for value in estimates:
                # Reported values are genuinely at least half-heavy.
                assert degrees[(value,)] >= 0.25 * m / P

    def test_seed_determinism(self, zipf_db):
        query, db = zipf_db
        a = sample_heavy_hitters(query, db, "z", P, sample_rows=512, seed=3)
        b = sample_heavy_hitters(query, db, "z", P, sample_rows=512, seed=3)
        assert a.frequencies == b.frequencies


class TestPlannerIntegration:
    def test_from_sample_feeds_the_planner(self, zipf_db):
        query, db = zipf_db
        sampled = DataStatistics.from_sample(
            query, db, P, sample_rows=SAMPLE, seed=0
        )
        exact = DataStatistics.from_database(query, db, P)
        assert set(sampled.hitters) == set(exact.hitters)
        ranked_sampled = planner_plan(query, sampled, P)
        ranked_exact = planner_plan(query, exact, P)
        # Same strategy universe (sampling must not change which
        # strategies apply), and the sampled winner's predicted cost
        # stays within 2x of the exact winner's -- near-ties may flip
        # the pick, but never to something the exact model prices off
        # by more than the sampling noise.
        def applicable(ranked):
            return {c.name for c in ranked.ranked}

        assert applicable(ranked_sampled) == applicable(ranked_exact)
        ratio = (
            ranked_sampled.winner.estimate.load_bits
            / ranked_exact.winner.estimate.load_bits
        )
        assert 0.5 <= ratio <= 2.0

    def test_exact_stays_the_default(self, zipf_db):
        query, db = zipf_db
        default = DataStatistics.from_database(query, db, P)
        exact = HitterStatistics.from_database(query, db, "z", 1.0, P)
        assert default.hitters["z"].frequencies == exact.frequencies


class TestEdgeCases:
    def test_empty_relation(self):
        query = ConjunctiveQuery(
            (Atom("R", ("x", "z")), Atom("S", ("z", "y"))), name="j"
        )
        db = Database.from_arrays(
            {
                "R": np.empty((0, 2), dtype=np.int64),
                "S": np.array([[1, 2]], dtype=np.int64),
            },
            10,
        )
        sampled = sample_heavy_hitters(query, db, "z", 4, sample_rows=16)
        assert sampled.frequencies["R"] == {}

    def test_variable_not_in_relation_skipped(self, zipf_db):
        query, db = zipf_db
        sampled = sample_heavy_hitters(query, db, "x1", P, sample_rows=256)
        assert set(sampled.frequencies) == {"S1"}

    def test_chunked_relation_sampled_without_materializing(self, tmp_path):
        query = star_query(2)
        with StorageManager(root=tmp_path, chunk_rows=512) as storage:
            rel = zipf_relation(
                "S1", 2, 8_000, 2_000, skew=1.2, seed=5, storage=storage
            )
            db = Database(
                [rel, zipf_relation("S2", 2, 8_000, 2_000, skew=1.2, seed=6,
                                    storage=storage)],
                2_000,
            )
            sampled = sample_heavy_hitters(
                query, db, "z", 8, sample_rows=2_000, seed=0
            )
            exact = HitterStatistics.from_database(query, db, "z", 1.0, 8)
            for relation in exact.frequencies:
                threshold = len(db[relation]) / 8
                for value, frequency in exact.frequencies[relation].items():
                    if frequency >= 2 * threshold:
                        assert sampled.frequency(relation, value) > 0

    def test_validation(self, zipf_db):
        query, db = zipf_db
        with pytest.raises(ValueError, match="sample_rows"):
            sample_heavy_hitters(query, db, "z", P, sample_rows=0)
        with pytest.raises(ValueError, match="p must be"):
            sample_heavy_hitters(query, db, "z", 0)
