"""Memory-budgeted planner execution (`execute(..., memory_budget_bytes=)`).

The engine's budget contract: a binding budget opens a storage manager
and runs streaming winners chunked (attaching the manager to the
result); winners that cannot stream -- pinned tuple twins, in-memory
baselines, or any strategy under the tuple default backend -- run
in-memory with ``.storage is None`` so callers can tell the budget was
not enforced, and never crash.  Budgeted runs also plan from *sampled*
statistics so the exact frequency scan cannot blow the budget first.
"""

from __future__ import annotations

import pytest

from repro.config import use_backend
from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.join.multiway import evaluate
from repro.planner import execute
from repro.planner.engine import IN_MEMORY_FOOTPRINT_FACTOR
from repro.planner.strategies import default_strategies


@pytest.fixture(scope="module")
def triangle_db():
    query = triangle_query()
    return query, matching_database(query, m=2000, n=8000, seed=0)


class TestBudgetSelection:
    def test_binding_budget_runs_chunked(self, triangle_db):
        query, db = triangle_db
        assert db.total_bytes() * IN_MEMORY_FOOTPRINT_FACTOR > 1
        planned = execute(
            query, db, 8, strategy="hypercube-numpy", memory_budget_bytes=1
        )
        try:
            assert planned.storage is not None
            assert not planned.storage.closed
            assert "out-of-core" in planned.summary()
            assert planned.answers == evaluate(query, db)
        finally:
            planned.storage.close()

    def test_loose_budget_stays_in_memory(self, triangle_db):
        query, db = triangle_db
        planned = execute(
            query, db, 8, memory_budget_bytes=64 * 2**30
        )
        assert planned.storage is None
        assert planned.answers == evaluate(query, db)

    def test_chunked_results_match_in_memory(self, triangle_db):
        query, db = triangle_db
        reference = execute(query, db, 8, strategy="hypercube-numpy")
        budgeted = execute(
            query, db, 8, strategy="hypercube-numpy",
            stats=reference.plan.statistics,  # same (exact) statistics
            memory_budget_bytes=1,
        )
        try:
            assert budgeted.max_load_bits == reference.max_load_bits
            assert budgeted.answers == reference.answers
        finally:
            budgeted.storage.close()


class TestNonStreamingWinners:
    def test_tuples_twin_declines_budget_honestly(self, triangle_db):
        query, db = triangle_db
        planned = execute(
            query, db, 8, strategy="hypercube-tuples", memory_budget_bytes=1
        )
        assert planned.storage is None  # budget NOT enforced, and said so
        assert "out-of-core" not in planned.summary()

    def test_explicit_storage_with_nonstreaming_winner_raises(self, triangle_db):
        # An explicit manager is a demand, not a hint: refusing beats
        # silently dropping the caller's memory constraint.
        from repro.storage import StorageManager

        query, db = triangle_db
        with StorageManager() as manager:
            with pytest.raises(ValueError, match="cannot stream"):
                execute(
                    query, db, 8, strategy="hypercube-tuples",
                    storage=manager,
                )

    def test_tuple_default_backend_never_crashes(self):
        # The skew-aware strategies resolve backend=None at run time;
        # under the tuple default they must decline the manager, not
        # raise "requires the numpy backend".
        query = star_query(2)
        db = zipf_database(query, m=1500, n=600, skew=1.2, seed=2)
        with use_backend("tuples"):
            planned = execute(
                query, db, 8, strategy="skew-star", memory_budget_bytes=1
            )
            assert planned.storage is None
            assert planned.answers == evaluate(query, db)

    def test_streams_capability_tracks_backend(self):
        by_name = {s.name: s for s in default_strategies()}
        assert by_name["hypercube-numpy"].streams()
        assert not by_name["hypercube-tuples"].streams()
        assert not by_name["single-server"].streams()
        assert by_name["hypercube"].streams()  # numpy default
        assert by_name["skew-star"].streams()
        with use_backend("tuples"):
            assert not by_name["hypercube"].streams()
            assert not by_name["skew-star"].streams()
            assert not by_name["multiround"].streams()
            assert by_name["multiround-numpy"].streams()


class TestSampledStatsUnderBudget:
    def test_budgeted_run_uses_sampled_statistics(self, triangle_db, monkeypatch):
        query, db = triangle_db
        from repro.planner import engine as engine_module
        from repro.planner.statistics import DataStatistics

        calls = {"exact": 0, "sampled": 0}
        real_exact = DataStatistics.from_database.__func__
        real_sampled = DataStatistics.from_sample.__func__

        def spy_exact(cls, *a, **k):
            calls["exact"] += 1
            return real_exact(cls, *a, **k)

        def spy_sampled(cls, *a, **k):
            calls["sampled"] += 1
            return real_sampled(cls, *a, **k)

        monkeypatch.setattr(
            engine_module.DataStatistics, "from_database",
            classmethod(spy_exact),
        )
        monkeypatch.setattr(
            engine_module.DataStatistics, "from_sample",
            classmethod(spy_sampled),
        )
        planned = execute(
            query, db, 8, strategy="hypercube-numpy", memory_budget_bytes=1
        )
        try:
            assert calls["sampled"] == 1 and calls["exact"] == 0
            assert planned.answers == evaluate(query, db)
        finally:
            planned.storage.close()
