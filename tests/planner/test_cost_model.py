"""Cost-model accuracy: predictions vs measured loads, per strategy.

The planner's promise is that its closed-form estimates track what the
simulator actually measures, within the constant factors the paper's
O-bounds allow.  Each test runs one strategy on a matching (skew-free)
or zipf-skewed database and checks ``measured / predicted`` stays in a
band: predictions must neither wildly undersell (band upper edge) nor
wildly oversell (band lower edge) the real load.
"""

from __future__ import annotations

import pytest

from repro.core.families import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.data.generators import matching_database, zipf_database
from repro.planner import DataStatistics, default_strategies, plan
from repro.planner.cost import CostEstimate


def _strategy(name):
    for s in default_strategies():
        if s.name == name:
            return s
    raise KeyError(name)


def _measure(name, query, db, p, seed=0):
    """Run one strategy; return (estimate, outcome)."""
    strategy = _strategy(name)
    dstats = DataStatistics.from_database(query, db, p)
    assert strategy.applicable(query, dstats, p) is None
    estimate = strategy.estimate(query, dstats, p)
    outcome = strategy.run(query, db, p, seed=seed)
    return estimate, outcome


# Bands: measured / predicted must land in [low, high].  The paper's
# bounds are big-O with small constants; hashing noise and per-server
# summation keep real executions within a small factor of the closed
# forms.
MATCHING_BANDS = {
    "hypercube": (0.3, 2.0),
    "hypercube-numpy": (0.3, 2.0),
    "skew-oblivious": (0.3, 2.0),
    "skew-triangle": (0.2, 2.0),
    "multiround": (0.2, 3.0),
    "broadcast": (0.5, 1.5),
    "single-server": (0.99, 1.01),
}


class TestMatchingTriangle:
    """Skew-free triangle at p=16: every applicable strategy's band."""

    @pytest.fixture(scope="class")
    def setup(self):
        q = triangle_query()
        db = matching_database(q, m=600, n=4096, seed=7)
        return q, db

    @pytest.mark.parametrize("name", sorted(MATCHING_BANDS))
    def test_prediction_band(self, setup, name):
        q, db = setup
        estimate, outcome = _measure(name, q, db, p=16)
        assert isinstance(estimate, CostEstimate)
        assert estimate.load_bits > 0
        ratio = outcome.max_load_bits / estimate.load_bits
        low, high = MATCHING_BANDS[name]
        assert low <= ratio <= high, (
            f"{name}: measured {outcome.max_load_bits:.0f} vs predicted "
            f"{estimate.load_bits:.0f} (ratio {ratio:.2f})"
        )


class TestMatchingStar:
    def test_star_strategy_band(self):
        q = star_query(2)
        db = matching_database(q, m=800, n=4096, seed=3)
        estimate, outcome = _measure("skew-star", q, db, p=16)
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.3 <= ratio <= 2.0

    def test_hash_join_band(self):
        q = simple_join_query()
        db = matching_database(q, m=800, n=4096, seed=4)
        estimate, outcome = _measure("hash-join", q, db, p=16)
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.3 <= ratio <= 2.0


class TestMatchingChain:
    def test_multiround_band(self):
        q = chain_query(4)
        db = matching_database(q, m=800, n=4096, seed=5)
        estimate, outcome = _measure("multiround", q, db, p=16)
        assert estimate.rounds >= 2
        assert outcome.report.num_rounds == estimate.rounds
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.2 <= ratio <= 3.0


class TestZipfSkew:
    """Skewed inputs: the skew-aware formulas stay predictive and the
    frequency-corrected HyperCube estimate stops underselling."""

    @pytest.fixture(scope="class")
    def star_setup(self):
        q = star_query(2)
        db = zipf_database(q, m=2000, n=2000, skew=1.0, seed=2)
        return q, db

    def test_star_prediction_band(self, star_setup):
        q, db = star_setup
        estimate, outcome = _measure("skew-star", q, db, p=16)
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.3 <= ratio <= 2.0

    def test_hypercube_prediction_band(self, star_setup):
        q, db = star_setup
        estimate, outcome = _measure("hypercube", q, db, p=16)
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.4 <= ratio <= 2.0

    def test_triangle_prediction_band(self):
        q = triangle_query()
        db = zipf_database(q, m=800, n=800, skew=1.0, seed=9)
        estimate, outcome = _measure("skew-triangle", q, db, p=8)
        ratio = outcome.max_load_bits / estimate.load_bits
        assert 0.2 <= ratio <= 2.0


class TestStatsOnlyBounds:
    """The max-form statistics-only bounds track their exact database
    counterparts.  Frequencies below the hitter threshold are invisible
    to the statistics, so the stats form may sit at or below the exact
    form -- never above it."""

    def test_star_stats_bound_matches_database_bound(self):
        from repro.skew.heavy_hitters import HitterStatistics
        from repro.skew.star import (
            star_center,
            star_skew_load_bound,
            star_skew_load_bound_from_stats,
        )

        q = star_query(2)
        db = zipf_database(q, m=2000, n=2000, skew=1.0, seed=2)
        hitters = HitterStatistics.from_database(q, db, star_center(q), 1.0, 16)
        from_stats = star_skew_load_bound_from_stats(
            q, db.statistics(q), hitters, 16
        )
        assert from_stats == pytest.approx(star_skew_load_bound(q, db, 16))

    def test_triangle_stats_bound_lower_bounds_database_bound(self):
        from repro.skew.heavy_hitters import HitterStatistics
        from repro.skew.triangle import (
            triangle_skew_load_bound,
            triangle_skew_load_bound_from_stats,
        )

        q = triangle_query()
        db = zipf_database(q, m=800, n=800, skew=1.0, seed=9)
        hitters = {
            v: HitterStatistics.from_database(q, db, v, 1.0, 8)
            for v in q.variables
        }
        exact = triangle_skew_load_bound(db, 8)
        from_stats = triangle_skew_load_bound_from_stats(
            db.statistics(q), hitters, 8
        )
        assert 0 < from_stats <= exact * (1 + 1e-9)


class TestEstimateStructure:
    def test_rounds_and_servers(self):
        q = triangle_query()
        db = matching_database(q, m=300, n=2048, seed=0)
        explained = plan(q, db, 16)
        for candidate in explained.ranked:
            est = candidate.estimate
            assert est.rounds >= 1
            assert est.servers >= 16 or candidate.name == "single-server"

    def test_sort_key_orders_by_load_first(self):
        a = CostEstimate(10.0, 5, 100)
        b = CostEstimate(20.0, 1, 1)
        assert a.sort_key() < b.sort_key()
