"""The lint/type tooling contract.

ruff and mypy are CI-installed dev tools (the ``lint`` extra), not
runtime dependencies, so these tests assert the *configuration* always
and run the tools only where they are installed.
"""

import pathlib
import shutil
import subprocess
import sys
import tomllib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


def pyproject():
    with open(REPO / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)


class TestConfig:
    def test_ruff_config_present(self):
        data = pyproject()
        assert data["tool"]["ruff"]["target-version"] == "py311"
        assert "F" in data["tool"]["ruff"]["lint"]["select"]

    def test_mypy_allowlist_covers_public_surface(self):
        data = pyproject()
        assert data["tool"]["mypy"]["ignore_errors"] is True
        overrides = data["tool"]["mypy"]["overrides"]
        checked = {
            m for o in overrides if o.get("ignore_errors") is False
            for m in o["module"]
        }
        for module in ("repro.session", "repro.config",
                       "repro.planner.optimizer", "repro.checks.engine"):
            assert module in checked

    def test_py_typed_marker_ships(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()
        packages = pyproject()["tool"]["setuptools"]["package-data"]
        assert "py.typed" in packages["repro"]

    def test_lint_extra_declared(self):
        extras = pyproject()["project"]["optional-dependencies"]
        joined = " ".join(extras["lint"])
        assert "ruff" in joined and "mypy" in joined


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "."], cwd=REPO, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    subprocess.run(
        [sys.executable, "-c", "import mypy"], capture_output=True
    ).returncode != 0,
    reason="mypy not installed",
)
def test_mypy_allowlist_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"], cwd=REPO, capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
