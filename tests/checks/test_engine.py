"""Engine semantics: suppressions, JSON schema, determinism, traversal."""

import json
import pathlib

from repro.checks import (
    SCHEMA,
    check_paths,
    check_source,
    all_rules,
    render_json,
)
from repro.checks.engine import iter_source_files

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_justified_suppressions_silence_findings(self):
        result = check_paths([FIXTURES / "suppressed.py"])
        assert result.findings == ()

    def test_reasonless_suppression_does_not_suppress(self):
        result = check_paths([FIXTURES / "bad_suppression.py"])
        rules = [(f.rule, f.line) for f in result.findings]
        # The bare allow() is itself a finding AND leaves the
        # wall-clock finding on its line alive.
        assert ("suppression", 7) in rules
        assert ("wall-clock", 7) in rules
        # Unknown rule ids are reported even with a reason.
        assert ("suppression", 8) in rules
        assert len(rules) == 3

    def test_trailing_comment_suppresses_own_line(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: allow(wall-clock) -- test reason\n"
        )
        assert check_source("x.py", src, all_rules()) == []

    def test_standalone_comment_suppresses_next_code_line(self):
        src = (
            "import time\n"
            "# repro: allow(wall-clock) -- test reason\n"
            "\n"
            "t = time.time()\n"
        )
        assert check_source("x.py", src, all_rules()) == []

    def test_suppression_does_not_leak_past_its_line(self):
        src = (
            "import time\n"
            "a = time.time()  # repro: allow(wall-clock) -- test reason\n"
            "b = time.time()\n"
        )
        findings = check_source("x.py", src, all_rules())
        assert [(f.rule, f.line) for f in findings] == [("wall-clock", 3)]

    def test_suppression_in_string_literal_is_inert(self):
        src = (
            "import time\n"
            'note = "# repro: allow(wall-clock) -- not a comment"\n'
            "t = time.time()\n"
        )
        findings = check_source("x.py", src, all_rules())
        assert [(f.rule, f.line) for f in findings] == [("wall-clock", 3)]

    def test_multi_rule_suppression(self):
        src = (
            "import random\n"
            "import time\n"
            "# repro: allow(wall-clock, unseeded-random) -- test reason\n"
            "x = time.time() + random.random()\n"
        )
        assert check_source("x.py", src, all_rules()) == []


class TestJsonSchema:
    def test_schema_tag_and_layout(self):
        result = check_paths([FIXTURES / "parent_accounting.py"])
        payload = json.loads(render_json(result))
        assert payload["schema"] == SCHEMA == "repro.checks/1"
        assert payload["files"] == 1
        assert isinstance(payload["findings"], list)
        (finding,) = payload["findings"]
        # Exact key set is the CI contract: consumers parse this.
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "parent-accounting"
        assert finding["line"] == 12

    def test_clean_result_shape(self):
        result = check_paths([FIXTURES / "suppressed.py"])
        payload = json.loads(render_json(result))
        assert payload == {"schema": SCHEMA, "files": 1, "findings": []}


class TestTraversal:
    def test_findings_are_deterministically_sorted(self):
        result = check_paths([FIXTURES])
        keys = [f.sort_key() for f in result.findings]
        assert keys == sorted(keys)
        again = check_paths([FIXTURES])
        assert again.findings == result.findings

    def test_directory_traversal_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import time\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        files = list(iter_source_files([tmp_path]))
        assert [f.name for f in files] == ["a.py"]

    def test_missing_path_is_an_error(self, tmp_path):
        try:
            list(iter_source_files([tmp_path / "nope"]))
        except FileNotFoundError:
            pass
        else:
            raise AssertionError("missing path should not read as clean")

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = check_source("bad.py", "def broken(:\n", all_rules())
        assert [f.rule for f in findings] == ["syntax"]
