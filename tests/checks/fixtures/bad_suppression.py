"""Reasonless/unknown suppressions: they suppress nothing and are findings."""

import time


def sloppy():
    started = time.time()  # repro: allow(wall-clock)
    # repro: allow(made-up-rule) -- the rule id does not exist
    return started
