"""Wall-clock reads in engine-shaped code (not a timing/metrics module)."""

import time
from time import perf_counter as pc


def measure():
    started = time.time()  # line 8: wall-clock
    elapsed = pc() - started  # line 9: wall-clock
    return elapsed
