"""Task bodies that cannot cross the spawn-context pickle boundary."""


def fan_out(pool, tasks, factor):
    results = list(pool.imap(lambda t: t * factor, tasks))  # line 5: pool-task

    def scaled(t):
        return t * factor

    results += list(pool.imap(scaled, tasks))  # line 10: pool-task
    return results
