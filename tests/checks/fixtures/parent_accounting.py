"""A worker task body mutating simulator accounting directly.

Under a process pool these sends happen in a throwaway worker (lost),
under threads they interleave nondeterministically; either way the
parent's serial replay is bypassed.
"""


def route_chunk_task(task):
    rows = task.source.load()
    for server, batch in enumerate(rows):
        task.sim.send_array(server, task.tag, batch)  # line 12: parent-accounting
    return task.tag
