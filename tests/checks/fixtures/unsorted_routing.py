"""Reconstruction of the PR 3 unsorted-fragment-routing bug.

Servers come out of a set union, so the send order -- and with it the
per-server accounting sequence -- depends on hash randomization.
"""


def route_fragments(sim, pending, fragments):
    for server in pending | {0}:  # line 9: sorted-iteration
        sim.send(server, "R/input", fragments[server])
    targets = list({s + 1 for s in pending})  # line 11: sorted-iteration
    return targets
