"""Entry points hand-rolling backend/pool defaults around repro.config."""


def run(query, backend=None, pool=None):
    backend = backend or "numpy"  # line 5: settings-resolution
    if pool is None:
        pool = "serial"  # line 7: settings-resolution
    return query, backend, pool
