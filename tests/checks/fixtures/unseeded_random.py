"""Global-state randomness: every call here breaks reproducibility."""

import random

import numpy as np
from numpy.random import default_rng


def scramble(items):
    random.shuffle(items)  # line 10: unseeded-random
    noise = np.random.rand(4)  # line 11: unseeded-random
    rng = default_rng()  # line 12: unseeded-random
    anon = random.Random()  # line 13: unseeded-random
    return items, noise, rng, anon


def fine(seed):
    rng = random.Random(seed)
    gen = default_rng(seed)
    return rng.random(), gen.random()
