"""Observability hooks used without the one-None-check discipline."""

from repro.metrics.registry import active_metrics


def record(rows):
    active_metrics().counter("rows_total").inc(len(rows))  # line 7: hook-guard
    for row in rows:
        metrics = active_metrics()  # line 9: hook-guard (refetch in loop)
        if metrics is not None:
            metrics.counter("rows_seen").inc()
    return rows


def disciplined(rows):
    metrics = active_metrics()
    if metrics is not None:
        metrics.counter("rows_total").inc(len(rows))
    return rows
