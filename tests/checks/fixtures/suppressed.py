"""Every violation here carries a justified suppression: zero findings."""

import random
import time


def bench_once(items):
    started = time.time()  # repro: allow(wall-clock) -- fixture: bench timing only
    # repro: allow(unseeded-random) -- fixture: exploratory shuffle, unrecorded
    random.shuffle(items)
    return time.time() - started  # repro: allow(wall-clock) -- fixture: bench timing only
