"""CLI contract: exit codes, --rule, --json, --list-rules, clean tree.

The clean-tree test is the acceptance criterion that matters most:
``python -m repro check src/`` must exit 0 on this repository, and
must do so quickly (the CI gate runs under ``timeout 30``).
"""

import io
import json
import pathlib
import time

import pytest

from repro.checks import cli, rule_ids

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"
SRC = REPO / "src"


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli.main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestExitCodes:
    def test_clean_input_exits_zero(self):
        code, out, _ = run_cli([str(FIXTURES / "suppressed.py")])
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one(self):
        code, out, _ = run_cli([str(FIXTURES / "wall_clock.py")])
        assert code == 1
        assert "wall-clock" in out

    def test_unknown_rule_exits_two(self):
        code, _, err = run_cli(["--rule", "bogus", str(FIXTURES)])
        assert code == 2
        assert "unknown rule" in err

    def test_missing_path_exits_two(self):
        code, _, err = run_cli([str(FIXTURES / "does_not_exist.py")])
        assert code == 2
        assert "does_not_exist" in err


class TestFilters:
    def test_rule_filter_restricts_findings(self):
        code, out, _ = run_cli(
            ["--rule", "wall-clock", str(FIXTURES)]
        )
        assert code == 1
        lines = [
            line for line in out.splitlines()
            if ": " in line and "finding" not in line
        ]
        assert any(": wall-clock:" in line for line in lines)
        # Only the selected rule plus suppression-hygiene meta-findings
        # may appear; the other invariant rules are filtered out.
        assert all(
            ": wall-clock:" in line or ": suppression:" in line
            for line in lines
        )

    def test_rule_filter_can_make_a_file_clean(self):
        code, _, _ = run_cli(
            ["--rule", "pool-task", str(FIXTURES / "wall_clock.py")]
        )
        assert code == 0

    def test_list_rules(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for rule in rule_ids():
            assert rule in out


class TestJson:
    def test_json_report_parses_and_matches_text_findings(self):
        code, out, _ = run_cli(["--json", str(FIXTURES / "wall_clock.py")])
        assert code == 1
        payload = json.loads(out)
        assert payload["schema"] == "repro.checks/1"
        assert [f["line"] for f in payload["findings"]] == [8, 9]


class TestCleanTree:
    def test_repo_src_is_clean(self):
        # THE shipping invariant: the analyzer exits 0 on its own tree.
        code, out, _ = run_cli([str(SRC)])
        assert code == 0, f"repo tree has findings:\n{out}"

    def test_src_scan_is_fast(self):
        # CI gates the scan under `timeout 30`; leave headroom here.
        started = time.perf_counter()
        code, _, _ = run_cli([str(SRC)])
        elapsed = time.perf_counter() - started
        assert code == 0
        assert elapsed < 30.0, f"analyzer took {elapsed:.1f}s over src/"


class TestMainModule:
    def test_repro_check_subcommand_clean(self, capsys):
        from repro.__main__ import main

        main(["check", str(SRC)])
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_repro_check_subcommand_exits_nonzero_on_findings(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["check", str(FIXTURES / "wall_clock.py")])
        assert excinfo.value.code == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_repro_check_rule_and_json_flags(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "check", "--json", "--rule", "wall-clock",
                str(FIXTURES / "wall_clock.py"),
            ])
        assert excinfo.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"wall-clock"}
