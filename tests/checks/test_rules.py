"""Each rule detects its known-bad fixture at the expected (file, line).

The fixture corpus under ``tests/checks/fixtures/`` is one file per
bug class, each a reconstruction of a real historical defect (the
``unsorted_routing`` fixture is the PR 3 fragment-routing bug).  The
fixtures are excluded from ruff and never imported; the analyzer reads
them as text.
"""

import pathlib

import pytest

from repro.checks import check_paths, rule_ids

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def findings_for(name):
    result = check_paths([FIXTURES / name])
    return [(f.rule, f.line) for f in result.findings]


def test_fixture_corpus_exists():
    assert FIXTURES.is_dir()
    assert len(list(FIXTURES.glob("*.py"))) >= 7


def test_unsorted_routing_reconstruction_detected():
    # The PR 3 bug: fragment sends ordered by set iteration.
    found = findings_for("unsorted_routing.py")
    assert ("sorted-iteration", 9) in found
    assert ("sorted-iteration", 11) in found
    assert all(rule == "sorted-iteration" for rule, _ in found)


def test_unseeded_random_detected():
    found = findings_for("unseeded_random.py")
    assert ("unseeded-random", 10) in found  # random.shuffle
    assert ("unseeded-random", 11) in found  # np.random.rand
    assert ("unseeded-random", 12) in found  # default_rng()
    assert ("unseeded-random", 13) in found  # random.Random()
    # The seeded twins in fine() are not findings.
    assert len(found) == 4


def test_wall_clock_detected_through_aliases():
    found = findings_for("wall_clock.py")
    assert ("wall-clock", 8) in found   # time.time()
    assert ("wall-clock", 9) in found   # from time import perf_counter as pc
    assert len(found) == 2


def test_lambda_and_closure_tasks_detected():
    found = findings_for("lambda_task.py")
    assert ("pool-task", 5) in found    # lambda
    assert ("pool-task", 10) in found   # nested def
    assert len(found) == 2


def test_parent_accounting_mutation_detected():
    found = findings_for("parent_accounting.py")
    assert found == [("parent-accounting", 12)]


def test_unguarded_and_loop_hooks_detected():
    found = findings_for("unguarded_hook.py")
    assert ("hook-guard", 7) in found   # inline use, no binding
    assert ("hook-guard", 9) in found   # re-fetched inside the loop
    # disciplined() is clean.
    assert len(found) == 2


def test_hand_rolled_defaults_detected():
    found = findings_for("hand_rolled_default.py")
    assert ("settings-resolution", 5) in found  # backend or "numpy"
    assert ("settings-resolution", 7) in found  # if pool is None: pool = ...
    assert len(found) == 2


def test_file_and_path_anchoring():
    result = check_paths([FIXTURES / "parent_accounting.py"])
    (finding,) = result.findings
    assert finding.path.endswith("parent_accounting.py")
    assert finding.rule == "parent-accounting"
    assert finding.line == 12
    assert finding.col > 0
    assert "send_array" in finding.message
    rendered = finding.render()
    assert rendered.startswith(finding.path)
    assert ":12:" in rendered


@pytest.mark.parametrize("rule", [
    "unseeded-random", "wall-clock", "sorted-iteration", "pool-task",
    "parent-accounting", "hook-guard", "settings-resolution",
])
def test_every_shipped_rule_is_registered(rule):
    assert rule in rule_ids()


def test_at_least_five_rules():
    assert len(rule_ids()) >= 5
