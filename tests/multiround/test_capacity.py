"""``capacity_bits`` threading into ``run_plan`` (per-round cap L).

The multi-round executor enforces the same per-server per-round
capacity that ``run_hypercube`` already supports: ``fail`` aborts with
:class:`LoadExceededError`, ``drop`` truncates -- and because every
backend routes each relation and view in canonical row order, the
truncated per-server prefixes (and therefore all downstream rounds and
the final answers) are identical under the tuple and columnar
backends.
"""

from __future__ import annotations

import pytest

from repro.data.generators import matching_database, zipf_database
from repro.mpc.simulator import LoadExceededError
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan


def run_both_backends(plan, db, **kwargs):
    tuples = run_plan(plan, db, backend="tuples", **kwargs)
    arrays = run_plan(plan, db, backend="numpy", **kwargs)
    return tuples, arrays


class TestCapacityThreading:
    def test_uncapped_runs_unchanged(self):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=60, n=60, seed=0)
        free = run_plan(plan, db, p=8, seed=0)
        capped = run_plan(plan, db, p=8, seed=0, capacity_bits=10**9)
        assert capped.answers == free.answers
        assert capped.report.total_bits == free.report.total_bits
        assert capped.report.dropped_bits == 0

    def test_fail_mode_raises(self):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=80, n=80, seed=1)
        for backend in ("tuples", "numpy"):
            with pytest.raises(LoadExceededError):
                run_plan(
                    plan, db, p=8, seed=0, backend=backend,
                    capacity_bits=50.0,
                )

    def test_rejects_bad_mode(self):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=10, n=10, seed=2)
        with pytest.raises(ValueError, match="on_overflow"):
            run_plan(plan, db, p=8, on_overflow="explode")

    @pytest.mark.parametrize("capacity", [800.0, 2000.0])
    def test_overcapacity_rounds_truncate_identically(self, capacity):
        # The satellite's acceptance: an over-capacity round truncates
        # the same tuples under both backends -- same per-round
        # per-server bits, same dropped bits, same final answers.
        plan = chain_plan(4, 0.0)
        db = zipf_database(plan.query, m=150, n=60, skew=1.0, seed=5)
        tuples, arrays = run_both_backends(
            plan, db, p=8, seed=2, capacity_bits=capacity,
            on_overflow="drop",
        )
        assert tuples.report.dropped_bits > 0
        assert arrays.report.dropped_bits == tuples.report.dropped_bits
        assert arrays.report.num_rounds == tuples.report.num_rounds
        for round_a, round_t in zip(
            arrays.report.rounds, tuples.report.rounds
        ):
            assert round_a.bits == round_t.bits
            assert round_a.tuples == round_t.tuples
            assert round_a.dropped_bits == round_t.dropped_bits
        assert arrays.answers == tuples.answers

    def test_drop_in_round_one_shrinks_later_views(self):
        # Dropped base tuples must propagate: the capped run's later
        # rounds ship no more than the uncapped run's.
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=100, n=100, seed=3)
        free = run_plan(plan, db, p=8, seed=1)
        capacity = 0.6 * free.report.rounds[0].max_bits
        capped = run_plan(
            plan, db, p=8, seed=1, capacity_bits=capacity, on_overflow="drop"
        )
        assert capped.report.dropped_bits > 0
        assert capped.report.total_bits < free.report.total_bits
        assert capped.answers.issubset(free.answers)

    def test_capacity_is_per_round_not_cumulative(self):
        # A cap binding in no single round must not fire even though
        # the summed traffic across rounds exceeds it.
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=40, n=40, seed=4)
        free = run_plan(plan, db, p=8, seed=0)
        per_round_max = max(r.max_bits for r in free.report.rounds)
        assert free.report.total_bits > per_round_max
        capped = run_plan(
            plan, db, p=8, seed=0, capacity_bits=per_round_max + 1.0
        )
        assert capped.answers == free.answers
        assert capped.report.dropped_bits == 0
