"""Tests for tuple-based MPC connected components (Theorem 5.20)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.data.generators import layered_path_graph, random_graph_edges
from repro.multiround.connected import connected_components_mpc


def reference_components(edges, num_vertices):
    g = nx.Graph(edges)
    g.add_nodes_from(range(num_vertices))
    return {frozenset(c) for c in nx.connected_components(g)}


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ["hash_to_min", "label_propagation"])
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, algorithm, seed):
        edges = random_graph_edges(60, 80, seed=seed)
        result = connected_components_mpc(
            edges, 60, p=8, seed=seed, algorithm=algorithm
        )
        assert result.converged
        mine = {frozenset(c) for c in result.components().values()}
        assert mine == reference_components(edges, 60)

    @pytest.mark.parametrize("algorithm", ["hash_to_min", "label_propagation"])
    def test_layered_graphs(self, algorithm):
        edges, n = layered_path_graph(6, 8, seed=4)
        result = connected_components_mpc(
            edges, n, p=8, seed=1, algorithm=algorithm
        )
        mine = {frozenset(c) for c in result.components().values()}
        assert mine == reference_components(edges, n)

    def test_labels_are_component_minima(self):
        edges = [(0, 1), (1, 2), (4, 5)]
        result = connected_components_mpc(edges, 6, p=4, seed=0)
        assert result.labels[0] == result.labels[1] == result.labels[2] == 0
        assert result.labels[4] == result.labels[5] == 4
        assert result.labels[3] == 3  # isolated

    def test_empty_graph(self):
        result = connected_components_mpc([], 5, p=2, seed=0)
        assert result.labels == {v: v for v in range(5)}

    def test_validation(self):
        with pytest.raises(ValueError):
            connected_components_mpc([(0, 9)], 5, p=2)
        with pytest.raises(ValueError):
            connected_components_mpc([], 0, p=2)
        with pytest.raises(ValueError):
            connected_components_mpc([], 3, p=2, algorithm="magic")


class TestRoundCounts:
    def test_hash_to_min_is_logarithmic_on_paths(self):
        # Hash-to-min on a path of length d converges in O(log d)
        # rounds; label propagation needs Theta(d).
        edges, n = layered_path_graph(32, 4, seed=5)
        h2m = connected_components_mpc(edges, n, p=8, seed=2)
        lp = connected_components_mpc(
            edges, n, p=8, seed=2, algorithm="label_propagation"
        )
        assert h2m.converged and lp.converged
        assert h2m.rounds <= 4 * math.ceil(math.log2(33))
        assert lp.rounds >= 32  # diameter-bound flooding
        assert h2m.rounds < lp.rounds

    def test_rounds_grow_with_path_length(self):
        lengths = [4, 16, 64]
        rounds = []
        for k in lengths:
            edges, n = layered_path_graph(k, 3, seed=6)
            result = connected_components_mpc(edges, n, p=8, seed=3)
            rounds.append(result.rounds)
        assert rounds[0] < rounds[1] < rounds[2]
        # Logarithmic-ish growth: quadrupling the length adds ~constant.
        assert rounds[2] - rounds[1] <= 2 * (rounds[1] - rounds[0]) + 2

    def test_max_rounds_cutoff(self):
        edges, n = layered_path_graph(30, 2, seed=7)
        result = connected_components_mpc(
            edges, n, p=4, seed=4, algorithm="label_propagation", max_rounds=3
        )
        assert not result.converged
        assert result.rounds <= 4


class TestLoads:
    def test_load_stays_near_m_over_p(self):
        # On the layered family the per-round load stays O(m/p) up to
        # logs: components are small so hash-to-min clusters stay small.
        edges, n = layered_path_graph(16, 16, seed=8)
        p = 8
        result = connected_components_mpc(edges, n, p=p, seed=5)
        m_bits = len(edges) * 2 * result.report.rounds[0].bits[
            next(iter(result.report.rounds[0].bits))
        ] / max(
            1, result.report.rounds[0].tuples[
                next(iter(result.report.rounds[0].tuples))
            ]
        )
        # Round-1 edge distribution: ~ 2m/p edges per server.
        round1 = result.report.rounds[0]
        assert round1.max_tuples <= 6 * (2 * len(edges)) / p + 16
