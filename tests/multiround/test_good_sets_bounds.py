"""Tests for (eps, r)-plans and the multi-round lower bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.families import chain_query, cycle_query, star_query
from repro.multiround.good_sets import (
    chain_epsilon_r_plan,
    contract_to_survivors,
    cycle_epsilon_r_plan,
    is_epsilon_good,
    minimal_hard_subqueries,
    validate_plan,
)
from repro.multiround.lowerbounds import (
    beta_constant,
    chain_round_lower_bound,
    connected_components_round_lower_bound,
    cycle_round_lower_bound,
    load_constant_for_failure,
    reported_fraction_bound,
    tau_star_of_plan,
    tree_like_round_lower_bound,
)
from repro.multiround.gamma import in_gamma_1, rounds_upper_bound


class TestContraction:
    def test_l5_keep_alternate_atoms(self):
        # The paper's L5/{S2,S4} example: keep S1, S3, S5.
        q = chain_query(5)
        contracted = contract_to_survivors(q, ["S1", "S3", "S5"])
        assert contracted.num_atoms == 3
        assert contracted.characteristic == q.characteristic

    def test_unknown_survivor(self):
        with pytest.raises(KeyError):
            contract_to_survivors(chain_query(2), ["S9"])


class TestEpsilonGood:
    def test_alternate_atoms_good_for_chain(self):
        q = chain_query(5)
        assert is_epsilon_good(q, ["S1", "S3", "S5"], 0.0)

    def test_adjacent_atoms_not_good(self):
        # {S1, S2} lies inside the Gamma^1_0 subquery L2.
        q = chain_query(5)
        assert not is_epsilon_good(q, ["S1", "S2", "S5"], 0.0)

    def test_whole_set_not_good(self):
        q = chain_query(3)
        assert not is_epsilon_good(q, ["S1", "S2", "S3"], 0.0)

    def test_empty_not_good(self):
        assert not is_epsilon_good(chain_query(3), [], 0.0)

    def test_complement_characteristic_matters(self):
        # For C3, dropping one atom leaves a path (chi = 0) but the two
        # kept atoms form an L2 in Gamma^1_0: not good.
        q = cycle_query(3)
        assert not is_epsilon_good(q, ["S1", "S2"], 0.0)

    def test_spacing_depends_on_eps(self):
        # At eps=0.5 (k_eps = 4), distance-2 atoms violate condition 1.
        q = chain_query(9)
        assert is_epsilon_good(q, ["S1", "S3", "S5", "S7", "S9"], 0.0)
        assert not is_epsilon_good(q, ["S1", "S3", "S5", "S7", "S9"], 0.5)
        assert is_epsilon_good(q, ["S1", "S5", "S9"], 0.5)


class TestPlans:
    @pytest.mark.parametrize("k", [3, 5, 8, 16, 32, 64])
    def test_chain_plan_valid_and_r_matches_lemma_5_6(self, k):
        plan = chain_epsilon_r_plan(k, 0.0)
        validate_plan(plan)
        assert plan.r == max(0, math.ceil(math.log2(k)) - 2)

    @pytest.mark.parametrize("k,eps", [(17, 0.5), (65, 0.5)])
    def test_chain_plan_eps_half(self, k, eps):
        plan = chain_epsilon_r_plan(k, eps)
        validate_plan(plan)
        assert plan.r >= math.ceil(math.log(k, 4)) - 2

    @pytest.mark.parametrize("k", [4, 6, 12, 24])
    def test_cycle_plan_valid(self, k):
        plan = cycle_epsilon_r_plan(k, 0.0)
        validate_plan(plan)
        # Lemma 5.7 promises at least floor(log_2(k/3)).
        assert plan.r >= math.floor(math.log2(k / 3))

    def test_chain_plan_needs_hard_query(self):
        with pytest.raises(ValueError):
            chain_epsilon_r_plan(2, 0.0)  # L2 in Gamma^1_0

    def test_cycle_plan_needs_hard_query(self):
        with pytest.raises(ValueError):
            cycle_epsilon_r_plan(4, 0.5)  # C4 in Gamma^1_{1/2} (m_eps=4)

    def test_validate_rejects_bad_plans(self):
        from repro.multiround.good_sets import EpsilonRPlan

        q = chain_query(5)
        bad = EpsilonRPlan(q, 0.0, (frozenset({"S1", "S2", "S5"}),))
        with pytest.raises(ValueError):
            validate_plan(bad)

    def test_stage_queries_shrink(self):
        plan = chain_epsilon_r_plan(16, 0.0)
        stages = plan.stage_queries()
        sizes = [s.num_atoms for s in stages]
        assert sizes == sorted(sizes, reverse=True)
        assert not in_gamma_1(stages[-1], 0.0)


class TestRoundLowerBounds:
    @pytest.mark.parametrize(
        "k,expected", [(2, 1), (4, 2), (8, 3), (16, 4), (5, 3)]
    )
    def test_corollary_5_15(self, k, expected):
        assert chain_round_lower_bound(k, 0.0) == expected

    def test_chain_bounds_are_tight(self):
        # The bushy-plan upper bound equals Cor 5.15's lower bound.
        from repro.multiround.gamma import chain_rounds_upper_bound

        for k in (4, 8, 16, 32):
            for eps in (0.0, 0.5):
                assert chain_rounds_upper_bound(
                    k, eps
                ) == chain_round_lower_bound(k, eps)

    def test_corollary_5_17_trees(self):
        q = chain_query(6)  # diameter 6
        assert tree_like_round_lower_bound(q, 0.0) == 3
        with pytest.raises(ValueError):
            tree_like_round_lower_bound(cycle_query(4), 0.0)

    @pytest.mark.parametrize("k,expected", [(5, 2), (6, 3)])
    def test_example_5_19(self, k, expected):
        # C6: tight 3 rounds; C5: lower bound 2, upper 3 (open gap).
        assert cycle_round_lower_bound(k, 0.0) == expected
        assert rounds_upper_bound(cycle_query(k), 0.0) == 3

    def test_cc_bound_grows_with_p(self):
        # The Theorem 5.20 constants are tiny (delta = 1/16 at eps=0),
        # so growth shows at asymptotic p -- exactly the Omega(log p)
        # claim, nothing more.
        values = [
            connected_components_round_lower_bound(2**e, 0.0)
            for e in (8, 64, 256, 1024, 4096)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]
        # Linear in log p: quadrupling the exponent ~ quadruples it.
        assert values[-1] >= 2 * values[-2] - 2

    def test_cc_bound_validation(self):
        with pytest.raises(ValueError):
            connected_components_round_lower_bound(1, 0.0)


class TestTheorem511:
    def test_tau_star_of_chain_plan(self):
        # For eps=0 plans on chains, hard subqueries are L3-shaped
        # (tau* = 2); tau*(M) should be 2.
        plan = chain_epsilon_r_plan(16, 0.0)
        assert tau_star_of_plan(plan) == pytest.approx(2.0)

    def test_beta_positive_and_finite(self):
        for k in (8, 16):
            plan = chain_epsilon_r_plan(k, 0.0)
            beta = beta_constant(plan)
            assert 0 < beta < 100

    def test_reported_fraction_small_load_vanishes(self):
        plan = chain_epsilon_r_plan(16, 0.0)
        m_bits = 2**22
        p = 2**10
        tiny_load = m_bits / p**3
        fraction = reported_fraction_bound(plan, tiny_load, m_bits, p)
        assert fraction < 1e-3

    def test_reported_fraction_clipped(self):
        plan = chain_epsilon_r_plan(8, 0.0)
        assert reported_fraction_bound(plan, 2**20, 2**20, 4) == 1.0
        assert reported_fraction_bound(plan, 0.0, 2**20, 4) == 0.0

    def test_load_constant_for_failure(self):
        plan = chain_epsilon_r_plan(16, 0.0)
        p = 2**10
        c = load_constant_for_failure(plan, p)
        assert c > 0
        m_bits = 2**22
        load = c * m_bits / p
        assert reported_fraction_bound(plan, load * 0.99, m_bits, p) < 1 / 9

    def test_minimal_hard_subqueries_chain(self):
        # For L4 at eps=0, the minimal hard subqueries are the two L3s.
        subs = minimal_hard_subqueries(chain_query(4), 0.0)
        assert len(subs) == 2
        assert all(s.num_atoms == 3 for s in subs)

    def test_minimal_hard_subqueries_star(self):
        # Stars are easy at every eps: nothing is hard.
        assert minimal_hard_subqueries(star_query(4), 0.0) == ()
