"""Tests for Gamma classes, plan builders, and the executor."""

from __future__ import annotations

import pytest

from repro.core.families import (
    chain_query,
    cycle_query,
    spk_query,
    star_query,
    triangle_query,
)
from repro.data.generators import matching_database, uniform_database
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.gamma import (
    chain_rounds_upper_bound,
    in_gamma_1,
    k_epsilon,
    m_epsilon,
    rounds_upper_bound,
    space_exponent_for_one_round,
)
from repro.multiround.plans import (
    chain_plan,
    cycle_plan,
    generic_plan,
    spk_plan,
    star_plan,
)


class TestGammaClasses:
    def test_k_epsilon_values(self):
        assert k_epsilon(0.0) == 2
        assert k_epsilon(0.5) == 4
        assert k_epsilon(2 / 3) == 6

    def test_m_epsilon_values(self):
        assert m_epsilon(0.0) == 2
        assert m_epsilon(0.5) == 4

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            k_epsilon(1.0)
        with pytest.raises(ValueError):
            m_epsilon(-0.1)

    def test_gamma_1_membership(self):
        # Gamma^1_0 = {tau* <= 1}: stars yes, L2 yes, triangles no.
        assert in_gamma_1(star_query(3), 0.0)
        assert in_gamma_1(chain_query(2), 0.0)
        assert not in_gamma_1(triangle_query(), 0.0)
        # At eps = 1/3, 1/(1-eps) = 3/2: the triangle becomes easy.
        assert in_gamma_1(triangle_query(), 1 / 3)

    def test_longest_chain_in_gamma1(self):
        # k_eps is exactly the longest chain in Gamma^1_eps.
        for eps in (0.0, 0.5):
            ke = k_epsilon(eps)
            assert in_gamma_1(chain_query(ke), eps)
            assert not in_gamma_1(chain_query(ke + 1), eps)

    def test_space_exponent_for_one_round(self):
        assert space_exponent_for_one_round(triangle_query()) == pytest.approx(1 / 3)
        assert space_exponent_for_one_round(star_query(4)) == 0.0


class TestRoundsUpperBound:
    """Table 3's round counts."""

    @pytest.mark.parametrize("k,expected", [(4, 2), (8, 3), (16, 4)])
    def test_chains_eps0(self, k, expected):
        # L_k at load O(M/p): ceil(log2 k) rounds.
        assert rounds_upper_bound(chain_query(k), 0.0) == expected

    def test_l16_eps_half_two_rounds(self):
        # Example 5.2: the bushy 4-ary plan needs 2 rounds; Lemma 5.4's
        # radius-based formula is looser (3).
        assert chain_rounds_upper_bound(16, 0.5) == 2
        assert rounds_upper_bound(chain_query(16), 0.5) == 3

    @pytest.mark.parametrize("k,expected", [(4, 1), (16, 2), (17, 3)])
    def test_chain_specific_bound_eps_half(self, k, expected):
        # L4 is already in Gamma^1_{1/2} (tau* = 2 = 1/(1-eps)).
        assert chain_rounds_upper_bound(k, 0.5) == expected

    def test_star_one_round(self):
        assert rounds_upper_bound(star_query(5), 0.0) == 1

    @pytest.mark.parametrize("k,expected", [(5, 3), (6, 3)])
    def test_cycles_example_5_19(self, k, expected):
        assert rounds_upper_bound(cycle_query(k), 0.0) == expected

    def test_spk_two_rounds(self):
        assert rounds_upper_bound(spk_query(3), 0.0) == 2

    def test_disconnected_rejected(self):
        from repro.core.query import Atom, ConjunctiveQuery

        q = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        with pytest.raises(ValueError):
            rounds_upper_bound(q, 0.0)


class TestPlanShapes:
    def test_chain_plan_depths(self):
        assert chain_plan(4, 0.0).depth == 2
        assert chain_plan(16, 0.0).depth == 4
        assert chain_plan(16, 0.5).depth == 2  # Example 5.2
        assert chain_plan(2, 0.0).depth == 1

    def test_chain_plan_operators_in_gamma1(self):
        plan = chain_plan(16, 0.5)
        for nodes in plan.root.nodes_by_depth().values():
            for node in nodes:
                assert in_gamma_1(node.operator, 0.5)

    def test_cycle_plan_depth(self):
        # Lemma 5.4 for C6 at eps=0: 3 rounds.
        assert cycle_plan(6, 0.0).depth == 3

    def test_spk_plan_depth(self):
        assert spk_plan(4).depth == 2

    def test_star_plan_depth(self):
        assert star_plan(5).depth == 1

    def test_generic_plan_depth_logarithmic(self):
        plan = generic_plan(chain_query(8), fanout=2)
        assert plan.depth == 3

    def test_describe_mentions_rounds(self):
        text = chain_plan(4, 0.0).describe()
        assert "round 1" in text and "round 2" in text

    def test_generic_plan_validation(self):
        from repro.core.query import Atom, ConjunctiveQuery

        q = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        with pytest.raises(ValueError):
            generic_plan(q)
        with pytest.raises(ValueError):
            generic_plan(triangle_query(), fanout=1)


class TestExecutor:
    @pytest.mark.parametrize("k,eps", [(4, 0.0), (8, 0.0), (16, 0.5), (5, 0.0)])
    def test_chain_plans_correct(self, k, eps):
        # Permutation databases (m = n) keep every intermediate join of
        # size n, so correctness is tested on non-trivial data.
        plan = chain_plan(k, eps)
        db = matching_database(plan.query, m=48, n=48, seed=k)
        result = run_plan(plan, db, p=16, seed=1)
        truth = evaluate(plan.query, db)
        assert len(truth) == 48
        assert result.answers == truth
        assert result.rounds == plan.depth

    def test_cycle_plan_correct(self):
        plan = cycle_plan(6, 0.0)
        db = matching_database(plan.query, m=40, n=40, seed=3)
        result = run_plan(plan, db, p=16, seed=2)
        assert result.answers == evaluate(plan.query, db)

    def test_spk_plan_correct(self):
        plan = spk_plan(3)
        db = matching_database(plan.query, m=40, n=300, seed=4)
        result = run_plan(plan, db, p=16, seed=3)
        assert result.answers == evaluate(plan.query, db)

    def test_generic_triangle_plan_correct(self):
        plan = generic_plan(triangle_query())
        db = uniform_database(plan.query, m=60, n=30, seed=5)
        result = run_plan(plan, db, p=8, seed=4)
        assert result.answers == evaluate(plan.query, db)

    def test_star_plan_matches_one_round(self):
        plan = star_plan(3)
        db = matching_database(plan.query, m=40, n=200, seed=6)
        result = run_plan(plan, db, p=8, seed=5)
        assert result.answers == evaluate(plan.query, db)
        assert result.rounds == 1

    def test_needs_two_servers(self):
        plan = star_plan(2)
        db = matching_database(plan.query, m=5, n=25, seed=7)
        with pytest.raises(ValueError):
            run_plan(plan, db, p=1)

    def test_example_5_2_load_shape(self):
        # L16 via two rounds of 4-way joins at load O(M/p^{1/2}).  The
        # four operators of round 1 share the p servers (Proposition
        # 5.1's constant-factor regime), so the measured per-server load
        # is at most (#relations routed) * M_rel/p^{1/2}, i.e. 16x the
        # per-relation figure, up to hashing variance.
        plan = chain_plan(16, 0.5)
        m, p = 256, 16
        db = matching_database(plan.query, m=m, n=m, seed=8)
        stats = db.statistics(plan.query)
        result = run_plan(plan, db, p=p, seed=6)
        truth = evaluate(plan.query, db)
        assert len(truth) == m
        assert result.answers == truth
        per_relation = stats.bits("S1") / p**0.5
        assert per_relation <= result.max_load_bits <= 2 * 16 * per_relation

    def test_bushier_plan_fewer_rounds_higher_load(self):
        m, p = 128, 16
        shallow = chain_plan(16, 0.5)  # 2 rounds
        deep = chain_plan(16, 0.0)  # 4 rounds
        db = matching_database(shallow.query, m=m, n=m, seed=9)
        res_shallow = run_plan(shallow, db, p=p, seed=7)
        res_deep = run_plan(deep, db, p=p, seed=7)
        assert res_shallow.rounds < res_deep.rounds
        assert res_shallow.answers == res_deep.answers
        assert len(res_deep.answers) == m
