"""Tests for instance-level contraction (Lemma 5.12's construction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import chain_query, cycle_query
from repro.data.generators import matching_database
from repro.join.multiway import evaluate
from repro.multiround.contraction import (
    apply_permutation,
    contract_instance,
    contraction_identity_holds,
    contraction_permutation,
)


class TestPermutation:
    def test_identity_outside_contracted_component(self):
        q = chain_query(3)
        db = matching_database(q, m=10, n=20, seed=1)
        mapping = contraction_permutation(q, db, ["S2"])
        # x0 is not in S2's component closure via S2 alone.
        assert mapping.apply_value("x0", 5) == 5

    def test_maps_component_values_to_representative(self):
        q = chain_query(2)
        db = matching_database(q, m=8, n=16, seed=2)
        mapping = contraction_permutation(q, db, ["S1"])
        # For every S1 tuple (a, b): sigma maps both endpoints to the
        # representative (x0's value).
        for a, b in db["S1"]:
            assert mapping.apply_value("x0", a) == mapping.apply_value("x1", b)

    def test_rejects_nonzero_characteristic(self):
        q = cycle_query(3)
        db = matching_database(q, m=5, n=15, seed=3)
        with pytest.raises(ValueError, match="characteristic"):
            contraction_permutation(q, db, ["S1", "S2", "S3"])

    def test_apply_permutation_preserves_sizes_on_matchings(self):
        q = chain_query(3)
        db = matching_database(q, m=12, n=12, seed=4)
        mapping = contraction_permutation(q, db, ["S2"])
        mapped = apply_permutation(q, db, mapping)
        # Permutations keep matchings matchings of the same size.
        for rel in q.relation_names:
            assert len(mapped[rel]) == len(db[rel])


class TestContractionIdentity:
    @pytest.mark.parametrize(
        "k,survivors",
        [
            (3, ["S1", "S3"]),
            (5, ["S1", "S3", "S5"]),
            (4, ["S1", "S4"]),
            (6, ["S1", "S4"]),
        ],
    )
    def test_chains(self, k, survivors):
        q = chain_query(k)
        db = matching_database(q, m=20, n=20, seed=k)
        assert contraction_identity_holds(q, db, survivors)

    @pytest.mark.parametrize("survivors", [["S1", "S3", "S5"], ["S1", "S4"]])
    def test_cycles(self, survivors):
        q = cycle_query(6)
        db = matching_database(q, m=15, n=15, seed=7)
        assert contraction_identity_holds(q, db, survivors)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_matchings(self, seed):
        q = chain_query(5)
        db = matching_database(q, m=12, n=12, seed=seed)
        assert contraction_identity_holds(q, db, ["S1", "S3", "S5"])

    def test_answer_counts_preserved_on_permutations(self):
        # chi(q|M) = chi(q): on permutation databases both queries have
        # ~n answers, and the contraction identity makes them equal.
        q = chain_query(5)
        db = matching_database(q, m=24, n=24, seed=9)
        cq, cdb, _ = contract_instance(q, db, ["S1", "S3", "S5"])
        assert len(evaluate(cq, cdb)) == len(evaluate(q, db))

    def test_contracted_schema(self):
        q = chain_query(5)
        db = matching_database(q, m=6, n=12, seed=10)
        cq, cdb, _ = contract_instance(q, db, ["S1", "S3", "S5"])
        assert cq.num_atoms == 3
        assert set(cdb.relation_names) == {"S1", "S3", "S5"}
