"""Multi-round executor: backend equivalence and routing bugfixes.

Three properties pinned here:

* **Backend equivalence** -- ``run_plan(..., backend="numpy")`` is
  bit-identical to the tuple reference path: same answers, same
  per-server loads (bits and tuples) in every round, same
  ``LoadReport`` totals, and the same per-server view fragments after
  every operator, across chain/star/triangle plans and skewed (zipf)
  inputs -- mirroring ``tests/hypercube/test_backends.py``.
* **Same-round fragment isolation** (the namespacing bugfix) -- two
  same-round operators consuming the same base relation or view must
  not interleave each other's differently-routed fragments: each
  node's per-server view fragments equal those of the node executed in
  isolation.
* **Seed/salt mixing** (the ``seed * 7919 + salt`` bugfix) -- distinct
  seeds change the routing, ``seed=0`` does not collapse per-node
  salts, and answers never move.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import triangle_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.generators import (
    matching_database,
    uniform_database,
    zipf_database,
)
from repro.hashing.family import derive_seed
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.plans import (
    Plan,
    PlanNode,
    chain_plan,
    cycle_plan,
    generic_plan,
    spk_plan,
    star_plan,
)

from tests.conftest import random_queries


def as_tuple_set(chunk) -> set[tuple[int, ...]]:
    """A per-server view fragment as a plain tuple set, either backend."""
    if isinstance(chunk, np.ndarray):
        return set(map(tuple, chunk.tolist()))
    return set(chunk)


def assert_plan_backends_identical(plan, db, p, seed=0):
    tuples = run_plan(
        plan, db, p, seed=seed, backend="tuples", keep_view_fragments=True
    )
    arrays = run_plan(
        plan, db, p, seed=seed, backend="numpy", keep_view_fragments=True
    )
    assert arrays.answers == tuples.answers
    assert arrays.rounds == tuples.rounds == plan.depth
    assert arrays.report.num_rounds == tuples.report.num_rounds
    for round_a, round_t in zip(arrays.report.rounds, tuples.report.rounds):
        assert round_a.bits == round_t.bits
        assert round_a.tuples == round_t.tuples
    assert arrays.report.total_bits == tuples.report.total_bits
    assert arrays.report.max_load_bits == tuples.report.max_load_bits
    assert set(arrays.view_fragments) == set(tuples.view_fragments)
    for name, tuple_chunks in tuples.view_fragments.items():
        array_chunks = arrays.view_fragments[name]
        assert len(array_chunks) == len(tuple_chunks)
        for tuple_chunk, array_chunk in zip(tuple_chunks, array_chunks):
            assert as_tuple_set(array_chunk) == tuple_chunk
    return tuples, arrays


class TestPropertyEquivalence:
    @given(
        query=random_queries(connected_only=True),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_generic_plans(self, query, seed):
        n = 8
        sizes = {a.relation: min(20, n**a.arity) for a in query.atoms}
        db = uniform_database(query, m=sizes, n=n, seed=seed)
        plan = generic_plan(query, fanout=2)
        tuples, _ = assert_plan_backends_identical(plan, db, p=8, seed=seed)
        assert tuples.answers == evaluate(query, db)

    @pytest.mark.parametrize(
        "k,eps,p", [(4, 0.0, 8), (8, 0.0, 16), (16, 0.5, 16)]
    )
    def test_chain_plans(self, k, eps, p):
        plan = chain_plan(k, eps)
        db = matching_database(plan.query, m=40, n=40, seed=k)
        tuples, _ = assert_plan_backends_identical(plan, db, p, seed=3)
        assert tuples.answers == evaluate(plan.query, db)

    def test_star_plan(self):
        plan = star_plan(3)
        db = matching_database(plan.query, m=50, n=250, seed=1)
        assert_plan_backends_identical(plan, db, p=8, seed=2)

    def test_triangle_generic_plan(self):
        plan = generic_plan(triangle_query())
        db = uniform_database(plan.query, m=60, n=25, seed=5)
        tuples, _ = assert_plan_backends_identical(plan, db, p=8, seed=4)
        assert tuples.answers == evaluate(plan.query, db)

    def test_cycle_plan(self):
        plan = cycle_plan(5, 0.0)
        db = matching_database(plan.query, m=30, n=30, seed=6)
        assert_plan_backends_identical(plan, db, p=8, seed=5)

    def test_spk_plan(self):
        plan = spk_plan(2)
        db = matching_database(plan.query, m=40, n=200, seed=7)
        assert_plan_backends_identical(plan, db, p=16, seed=6)

    @pytest.mark.parametrize("skew", [0.8, 1.2])
    def test_zipf_star_plan(self, skew):
        plan = star_plan(2)
        db = zipf_database(plan.query, m=120, n=60, skew=skew, seed=8)
        tuples, _ = assert_plan_backends_identical(plan, db, p=8, seed=7)
        assert tuples.answers == evaluate(plan.query, db)

    def test_zipf_chain_plan(self):
        plan = chain_plan(4, 0.0)
        db = zipf_database(plan.query, m=100, n=50, skew=1.0, seed=9)
        tuples, _ = assert_plan_backends_identical(plan, db, p=8, seed=8)
        assert tuples.answers == evaluate(plan.query, db)

    def test_answers_array_matches_answers(self):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=30, n=30, seed=10)
        result = run_plan(plan, db, p=8, seed=9, backend="numpy")
        rows = result.answers_array()
        assert set(map(tuple, rows.tolist())) == result.answers
        assert rows.shape[1] == plan.query.num_variables


def shared_relation_plan() -> Plan:
    """A bushy plan whose two depth-1 operators both consume ``R``.

    ``VA = R(x,y) |><| S(y,z)`` and ``VB = R(x,y)`` run in the same
    round under different grids; the root joins them.  The plan
    computes ``q(x,y,z) = R(x,y), S(y,z)``.
    """
    r = Atom("R", ("x", "y"))
    s = Atom("S", ("y", "z"))
    query = ConjunctiveQuery((r, s), name="shared")
    node_va = PlanNode("VA", (r, s))
    node_vb = PlanNode("VB", (r,))
    root = PlanNode("ROOT", (node_va, node_vb))
    return Plan(query, root)


class TestSameRoundFragmentIsolation:
    """The headline bugfix: per-node tag namespacing.

    Before the fix, both depth-1 operators sent their ``R`` fragments
    under the bare tag ``"R"``; every server's local join then saw the
    union of two differently-routed fragments, producing view tuples on
    servers where the operator's own grid never placed them (inflating
    the next round's loads and shipping duplicates).
    """

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_view_fragments_match_isolated_runs(self, backend):
        plan = shared_relation_plan()
        db = uniform_database(plan.query, m=60, n=12, seed=0)
        bushy = run_plan(
            plan, db, p=8, seed=0, backend=backend, keep_view_fragments=True
        )

        # The regression oracle: each depth-1 node run as its own
        # single-node plan (same name, sizes, p and seed, hence the
        # same grid) must produce the same per-server fragments.
        for node in plan.root.children:
            solo = run_plan(
                Plan(node.operator, node), db, p=8, seed=0, backend=backend
            )
            bushy_chunks = bushy.view_fragments[node.name]
            solo_chunks = solo.view_fragments[node.name]
            assert len(bushy_chunks) == len(solo_chunks)
            for server, (got, want) in enumerate(
                zip(bushy_chunks, solo_chunks)
            ):
                assert as_tuple_set(got) == as_tuple_set(want), (
                    f"{node.name} fragment on server {server} mixed in "
                    "another operator's routing"
                )

    def test_rejects_slash_and_duplicate_node_names(self):
        r = Atom("R", ("x", "y"))
        query = ConjunctiveQuery((r,), name="guard")
        db = uniform_database(query, m=5, n=10, seed=0)
        with pytest.raises(ValueError, match="must not contain"):
            run_plan(Plan(query, PlanNode("A/B", (r,))), db, p=2)
        duplicated = PlanNode("A", (PlanNode("A", (r,)),))
        with pytest.raises(ValueError, match="duplicate plan node name"):
            run_plan(Plan(query, duplicated), db, p=2)

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_answers_match_sequential_evaluation(self, backend):
        plan = shared_relation_plan()
        db = uniform_database(plan.query, m=60, n=12, seed=0)
        result = run_plan(plan, db, p=8, seed=0, backend=backend)
        assert result.answers == evaluate(plan.query, db)

    def test_shared_view_consumers_same_round(self):
        """Two depth-2 operators consuming the same depth-1 view."""
        r = Atom("R", ("x", "y"))
        s = Atom("S", ("y", "z"))
        t = Atom("T", ("z", "w"))
        query = ConjunctiveQuery((r, s, t), name="shared-view")
        v1 = PlanNode("V1", (r, s))  # V1(x, y, z)
        va = PlanNode("VA", (v1, t))  # consumes V1
        vb = PlanNode("VB", (v1,))  # consumes V1 under another grid
        root = PlanNode("ROOT", (va, vb))
        plan = Plan(query, root)
        db = uniform_database(query, m=50, n=10, seed=3)
        assert_plan_backends_identical(plan, db, p=8, seed=1)
        result = run_plan(plan, db, p=8, seed=1)
        assert result.answers == evaluate(query, db)
        # V1 feeds two parents but executes once: round 1 routes its
        # inputs exactly as often as when V1 is the whole plan.
        solo = run_plan(Plan(v1.operator, v1), db, p=8, seed=1)
        assert result.report.rounds[0].bits == solo.report.rounds[0].bits


class TestSeedMixing:
    """The ``HashFamily(seed * 7919 + salt)`` bugfix."""

    def test_derive_seed_separates_pairs(self):
        # The old affine scheme collided exactly on these pairs:
        # 0 * 7919 + (salt + 7919) == 1 * 7919 + salt.
        for salt in (1, 17, 104729):
            assert derive_seed(0, salt + 7919) != derive_seed(1, salt)
        # seed=0 must not collapse onto the bare salt family.
        assert derive_seed(0, 42) != 42
        # Both components matter.
        assert derive_seed(0, 1) != derive_seed(0, 2)
        assert derive_seed(1, 1) != derive_seed(2, 1)
        # Deterministic and 64-bit.
        assert derive_seed(3, 4) == derive_seed(3, 4)
        assert 0 <= derive_seed(3, 4) < 2**64

    @pytest.mark.parametrize("backend", ["tuples", "numpy"])
    def test_seed_changes_routing_not_answers(self, backend):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=48, n=48, seed=11)
        base = run_plan(plan, db, p=8, seed=0, backend=backend)
        moved = run_plan(plan, db, p=8, seed=1, backend=backend)
        assert base.answers == moved.answers == evaluate(plan.query, db)
        per_server = [r.bits for r in base.report.rounds]
        per_server_moved = [r.bits for r in moved.report.rounds]
        assert per_server != per_server_moved, (
            "changing the seed must re-route fragments"
        )

    def test_zero_seed_gives_distinct_grids_per_node(self):
        # At seed=0 the old scheme made every node's family
        # HashFamily(_stable_salt(name)) -- still distinct across
        # nodes, but colliding with explicit seeds.  Check the executor
        # level: the same plan at seeds 0 and 7919 (an old-scheme
        # collision candidate) routes differently.
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=48, n=48, seed=12)
        a = run_plan(plan, db, p=8, seed=0)
        b = run_plan(plan, db, p=8, seed=7919)
        assert a.answers == b.answers
        assert [r.bits for r in a.report.rounds] != [
            r.bits for r in b.report.rounds
        ]


class TestOutputServerAccounting:
    """Output/load attribution when the root grid has fewer bins than p."""

    def test_servers_beyond_grid_receive_and_produce_nothing(self):
        # Triangle shares at p=10 integerize to (2, 2, 2): 8 bins < 10.
        query = triangle_query()
        plan = Plan(query, PlanNode("V1", tuple(query.atoms)))
        db = uniform_database(query, m=60, n=20, seed=4)
        for backend in ("tuples", "numpy"):
            result = run_plan(plan, db, p=10, seed=0, backend=backend)
            num_bins = len(
                [c for c in result.view_fragments["V1"] if len(c)]
            )
            assert num_bins <= 8
            assert result.answers == evaluate(query, db)
            sim = result.simulation
            # No server beyond the grid is charged in any round...
            for round_load in result.report.rounds:
                assert all(server < 8 for server in round_load.bits)
                assert all(server < 8 for server in round_load.tuples)
            # ... and none holds outputs.
            assert all(not sim.outputs_of(s) for s in (8, 9))
            counts = sim.output_counts()
            assert len(counts) == 10
            assert counts[8:] == [0, 0]

    def test_view_fragments_padded_to_p(self):
        query = triangle_query()
        plan = Plan(query, PlanNode("V1", tuple(query.atoms)))
        db = uniform_database(query, m=40, n=20, seed=5)
        for backend in ("tuples", "numpy"):
            result = run_plan(plan, db, p=10, seed=0, backend=backend)
            chunks = result.view_fragments["V1"]
            assert len(chunks) == 10
            assert all(len(c) == 0 for c in chunks[8:])
