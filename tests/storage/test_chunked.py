"""Unit tests for the storage subsystem itself.

:class:`StorageManager` lifecycle (spill directories appear, fill, and
vanish), :class:`ChunkedRelation` chunking/spilling/reading semantics,
the in-memory small-relation fast path, and the chunk-iteration seam
every streaming executor routes through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.hashing.permutation import PseudorandomPermutation
from repro.storage import (
    DEFAULT_CHUNK_ROWS,
    ChunkedRelation,
    StorageManager,
    iter_array_chunks,
)


@pytest.fixture
def storage(tmp_path):
    manager = StorageManager(root=tmp_path / "spill", chunk_rows=8)
    yield manager
    manager.close()


class TestStorageManager:
    def test_creates_and_removes_spill_directory(self, tmp_path):
        manager = StorageManager(root=tmp_path / "sp")
        assert manager.root.is_dir()
        manager.close()
        assert not manager.root.exists()
        manager.close()  # idempotent

    def test_keep_leaves_files(self, tmp_path):
        manager = StorageManager(root=tmp_path / "sp", chunk_rows=2, keep=True)
        spool = manager.spool("x", 1)
        spool.append(np.arange(6)[:, None])
        manager.close()
        assert manager.root.exists()
        assert list(manager.root.glob("*.npy"))

    def test_context_manager(self):
        with StorageManager(chunk_rows=4) as manager:
            root = manager.root
            assert root.is_dir()
        assert not root.exists()

    def test_accounting(self, storage):
        spool = storage.spool("acc", 2)
        spool.append(np.arange(48).reshape(24, 2))
        assert storage.chunks_spilled == 3  # 24 rows / chunk_rows=8
        assert storage.bytes_spilled == 3 * 8 * 2 * 8

    def test_from_budget_scales_chunk_rows(self):
        small = StorageManager.from_budget(10 * 2**20)
        large = StorageManager.from_budget(4 * 2**30)
        try:
            assert small.chunk_rows < large.chunk_rows
            assert small.memory_budget_bytes == 10 * 2**20
            assert 1024 <= small.chunk_rows <= 4 * DEFAULT_CHUNK_ROWS
        finally:
            small.close()
            large.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            StorageManager(chunk_rows=0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            StorageManager.from_budget(0)
        manager = StorageManager()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.new_chunk_path("x")


class TestChunkedRelation:
    def test_round_trip_preserves_append_order(self, storage):
        spool = storage.spool("r", 3)
        first = np.arange(30).reshape(10, 3)
        second = np.arange(30, 45).reshape(5, 3)
        spool.append(first)
        spool.append(second)
        assert len(spool) == 15
        merged = np.concatenate([first, second])
        assert np.array_equal(spool.to_array(), merged)
        assert sum(len(c) for c in spool.chunks()) == 15

    def test_small_spool_never_touches_disk(self, storage):
        spool = storage.spool("tiny", 2)
        spool.append(np.arange(10).reshape(5, 2))  # below chunk_rows=8
        assert spool.spilled_chunks == 0
        assert storage.chunks_spilled == 0
        assert np.array_equal(spool.to_array(), np.arange(10).reshape(5, 2))

    def test_spilled_chunks_are_memmaps(self, storage):
        spool = storage.spool("mm", 1)
        spool.append(np.arange(20)[:, None])
        chunks = list(spool.chunks())
        assert spool.spilled_chunks == 2
        assert isinstance(chunks[0], np.memmap)
        assert not isinstance(chunks[-1], np.memmap)  # in-memory tail

    def test_tail_does_not_pin_the_appended_batch(self, storage):
        # After flushing full chunks, the leftover tail must be a copy:
        # a view would keep the whole appended array (a server's entire
        # view fragment) resident for the spool's lifetime.
        spool = storage.spool("pin", 1)
        spool.append(np.arange(33)[:, None])  # 4 full chunks + 1-row tail
        assert spool.spilled_chunks == 4
        assert spool._tail[0].base is None, "tail is a view, pinning 33 rows"

    def test_without_manager_chunks_stay_in_memory(self):
        spool = ChunkedRelation("m", 2, chunk_rows=4)
        spool.append(np.arange(24).reshape(12, 2))
        assert spool.num_chunks == 3
        assert spool.spilled_chunks == 0

    def test_from_array_canonicalizes(self, storage):
        rows = np.array([[3, 4], [1, 2], [3, 4], [0, 9]])
        chunked = ChunkedRelation.from_array("c", rows, storage=storage)
        reference = Relation.from_array("c", rows)
        assert np.array_equal(chunked.to_array(), reference.to_array())
        assert len(chunked) == 3

    def test_from_relation_twin_matches_chunkwise(self, storage):
        reference = Relation("t", 2, [(5, 1), (2, 2), (9, 0), (2, 1)])
        chunked = ChunkedRelation.from_relation(
            reference, storage=storage, chunk_rows=2
        )
        assert np.array_equal(
            np.concatenate(list(chunked.chunks())), reference.to_array()
        )

    def test_set_semantics_api_materializes(self, storage):
        chunked = ChunkedRelation.from_array(
            "s", np.array([[1, 2], [3, 4]]), storage=storage
        )
        assert (1, 2) in chunked
        assert chunked.tuples == frozenset({(1, 2), (3, 4)})
        assert chunked == Relation("s", 2, [(1, 2), (3, 4)])

    def test_append_invalidates_tuple_cache(self, storage):
        spool = storage.spool("inv", 1)
        spool.append(np.array([[1]]))
        assert spool.tuples == frozenset({(1,)})
        spool.append(np.array([[2]]))
        assert spool.tuples == frozenset({(1,), (2,)})

    def test_reading_after_manager_close_is_a_clear_error(self, tmp_path):
        manager = StorageManager(root=tmp_path / "gone", chunk_rows=2)
        spool = manager.spool("late", 1)
        spool.append(np.arange(6)[:, None])
        manager.close()
        with pytest.raises(RuntimeError, match="materialize results"):
            spool.to_array()

    def test_kept_spill_files_stay_readable_after_close(self, tmp_path):
        manager = StorageManager(
            root=tmp_path / "kept", chunk_rows=2, keep=True
        )
        spool = manager.spool("kept", 1)
        spool.append(np.arange(6)[:, None])
        manager.close()
        assert np.array_equal(spool.to_array(), np.arange(6)[:, None])

    def test_drop_deletes_spill_files(self, storage):
        spool = storage.spool("d", 1)
        spool.append(np.arange(20)[:, None])
        files = list(storage.root.glob("*d-*.npy"))
        assert files
        spool.drop()
        assert len(spool) == 0
        assert all(not f.exists() for f in files)

    def test_degrees_chunkwise(self, storage):
        rows = np.array([[1, 5], [1, 6], [2, 5], [1, 5]])
        chunked = ChunkedRelation("deg", 2, storage=storage, chunk_rows=2)
        chunked.append(rows)  # duplicates allowed in spool form
        assert chunked.degrees((0,)) == {(1,): 3, (2,): 1}
        assert chunked.degrees((0, 1))[(1, 5)] == 2
        assert chunked.max_degree((1,)) == 3
        assert chunked.heavy_hitters(0, 3) == {1: 3}

    def test_validate_domain(self, storage):
        good = ChunkedRelation.from_array(
            "g", np.array([[0], [4]]), storage=storage
        )
        Database([good], 5)
        bad = ChunkedRelation.from_array(
            "b", np.array([[0], [7]]), storage=storage, chunk_rows=1
        )
        with pytest.raises(ValueError, match="outside domain"):
            Database([bad], 5)

    def test_rejects_bad_shapes(self, storage):
        spool = storage.spool("bad", 2)
        with pytest.raises(ValueError, match="batch"):
            spool.append(np.arange(4))
        with pytest.raises(ValueError, match="batch"):
            spool.append(np.arange(9).reshape(3, 3))


class TestIterArrayChunks:
    def test_plain_relation_single_chunk(self):
        rel = Relation("r", 2, [(1, 2), (3, 4)])
        chunks = list(iter_array_chunks(rel, None))
        assert len(chunks) == 1
        assert np.array_equal(chunks[0], rel.to_array())

    def test_plain_relation_sliced(self):
        rel = Relation.from_array("r", np.arange(20).reshape(10, 2))
        chunks = list(iter_array_chunks(rel, 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert np.array_equal(np.concatenate(chunks), rel.to_array())

    def test_chunked_relation_uses_own_granularity(self, storage):
        chunked = ChunkedRelation.from_array(
            "c", np.arange(20).reshape(10, 2), storage=storage, chunk_rows=4
        )
        chunks = list(iter_array_chunks(chunked, 9999))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_bare_array(self):
        arr = np.arange(12).reshape(6, 2)
        assert np.array_equal(
            np.concatenate(list(iter_array_chunks(arr, 4))), arr
        )

    def test_empty_sources_yield_nothing(self, storage):
        assert list(iter_array_chunks(np.empty((0, 2)), 4)) == []
        assert list(iter_array_chunks(storage.spool("e", 2), 4)) == []


class TestPseudorandomPermutation:
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 1000, 1 << 17])
    def test_is_a_permutation(self, n):
        rng = np.random.default_rng(n)
        perm = PseudorandomPermutation.from_rng(n, rng)
        image = perm.apply_array(np.arange(n, dtype=np.int64))
        assert len(np.unique(image)) == n
        assert image.min() >= 0 and image.max() < n

    def test_scalar_matches_vectorized(self):
        perm = PseudorandomPermutation.from_rng(97, np.random.default_rng(3))
        column = perm.apply_array(np.arange(97))
        assert [perm(i) for i in range(0, 97, 13)] == [
            int(column[i]) for i in range(0, 97, 13)
        ]

    def test_different_keys_differ(self):
        rng = np.random.default_rng(0)
        a = PseudorandomPermutation.from_rng(512, rng)
        b = PseudorandomPermutation.from_rng(512, rng)
        index = np.arange(512)
        assert not np.array_equal(a.apply_array(index), b.apply_array(index))

    def test_rejects_out_of_domain(self):
        perm = PseudorandomPermutation.from_rng(10, np.random.default_rng(1))
        with pytest.raises(ValueError, match="domain"):
            perm.apply_array(np.array([10]))
        with pytest.raises(ValueError, match="round keys"):
            PseudorandomPermutation(10, [1, 2])
