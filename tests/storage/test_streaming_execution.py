"""Chunked/out-of-core execution must be bit-identical to in-memory.

The acceptance property of the storage subsystem: for every query
family the repo executes -- vanilla HyperCube, the skew-aware star and
triangle algorithms, and multi-round plans -- running with chunked
routing and disk-spilling fragments produces exactly the same answers
and the same per-server per-round loads (bits and tuples) as the
in-memory columnar backend, across *random chunk sizes*, including the
capacity-truncation edge where per-server arrival order is the whole
story.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import star_query, triangle_query
from repro.core.query import Atom, ConjunctiveQuery
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    uniform_database,
    zipf_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan, generic_plan, star_plan
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage import StorageManager

from tests.conftest import random_queries


def assert_same_report(reference, chunked):
    assert chunked.num_rounds == reference.num_rounds
    for round_c, round_r in zip(chunked.rounds, reference.rounds):
        assert round_c.bits == round_r.bits
        assert round_c.tuples == round_r.tuples
        assert round_c.dropped_bits == round_r.dropped_bits
    assert chunked.total_bits == reference.total_bits
    assert chunked.max_load_bits == reference.max_load_bits


class TestHyperCubeChunked:
    @given(
        query=random_queries(),
        seed=st.integers(min_value=0, max_value=2**20),
        chunk_rows=st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_queries_random_chunk_sizes(self, query, seed, chunk_rows):
        n = 8
        sizes = {a.relation: min(25, n**a.arity) for a in query.atoms}
        db = uniform_database(query, m=sizes, n=n, seed=seed)
        reference = run_hypercube(query, db, p=8, seed=seed, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_hypercube(
                query, db, p=8, seed=seed, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert np.array_equal(
                chunked.answers_array(), reference.answers_array()
            )
        assert reference.answers == evaluate(query, db)

    def test_chunk_rows_without_storage(self):
        # Chunked routing alone (in-memory fragments) is the same code
        # path the spilling run uses; it must also be bit-identical.
        query = triangle_query()
        db = matching_database(query, m=300, n=1200, seed=4)
        reference = run_hypercube(query, db, p=8, seed=1, backend="numpy")
        chunked = run_hypercube(
            query, db, p=8, seed=1, backend="numpy", chunk_rows=17
        )
        assert_same_report(reference.report, chunked.report)
        assert chunked.answers == reference.answers

    def test_chunked_database_relations(self):
        # Databases whose relations are themselves chunked (the
        # generator storage path) execute identically to their
        # in-memory twin databases.
        query = triangle_query()
        db = matching_database(query, m=400, n=1600, seed=9)
        with StorageManager(chunk_rows=64) as storage:
            from repro.storage import ChunkedRelation

            twin = type(db)(
                (
                    ChunkedRelation.from_relation(db[name], storage=storage)
                    for name in query.relation_names
                ),
                db.domain_size,
            )
            reference = run_hypercube(query, db, p=8, seed=2, backend="numpy")
            chunked = run_hypercube(
                query, twin, p=8, seed=2, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert np.array_equal(
                chunked.answers_array(), reference.answers_array()
            )

    def test_capacity_truncation_identical(self):
        # The sharpest equivalence: a binding capacity cap with
        # on_overflow="drop" truncates per-server *prefixes*, so the
        # chunked path must deliver every server the identical row
        # sequence -- across chunk sizes and against the tuple path.
        query = ConjunctiveQuery(
            (Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))), name="J"
        )
        db = planted_heavy_hitter_database(query, 200, 2000, "z", 1.0, 5, seed=1)
        kwargs = dict(
            p=16, exponents={"z": 1.0}, seed=3,
            capacity_bits=333.3, on_overflow="drop",
        )
        reference = run_hypercube(query, db, backend="tuples", **kwargs)
        assert reference.report.dropped_bits > 0
        for chunk_rows in (1, 64, 10_000):
            with StorageManager(chunk_rows=chunk_rows) as storage:
                chunked = run_hypercube(
                    query, db, backend="numpy", storage=storage, **kwargs
                )
                assert_same_report(reference.report, chunked.report)
                assert chunked.answers == reference.answers

    def test_storage_requires_numpy_backend(self):
        query = triangle_query()
        db = matching_database(query, m=20, n=100, seed=0)
        with StorageManager() as storage:
            with pytest.raises(ValueError, match="numpy backend"):
                run_hypercube(
                    query, db, p=4, backend="tuples", storage=storage
                )
            with pytest.raises(ValueError, match="numpy backend"):
                run_plan(
                    generic_plan(query), db, p=4, backend="tuples",
                    storage=storage,
                )

    def test_spill_files_are_cleaned_up(self):
        query = triangle_query()
        db = matching_database(query, m=500, n=2000, seed=3)
        with StorageManager(chunk_rows=32) as storage:
            run_hypercube(query, db, p=8, seed=0, storage=storage)
            assert storage.bytes_spilled > 0
            root = storage.root
            # Per-server fragments are freed right after their joins.
            assert not list(root.glob("*srv*.npy"))
        assert not root.exists()


class TestSkewChunked:
    @pytest.mark.parametrize("chunk_rows", [3, 50, 100_000])
    def test_star_zipf(self, chunk_rows):
        query = star_query(3)
        db = zipf_database(query, m=300, n=120, skew=1.2, seed=3)
        reference = run_star_skew(query, db, p=16, seed=3, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_star_skew(
                query, db, p=16, seed=3, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers
            assert chunked.heavy_hitters == reference.heavy_hitters

    @given(
        seed=st.integers(min_value=0, max_value=2**10),
        chunk_rows=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=6, deadline=None)
    def test_star_random_chunks(self, seed, chunk_rows):
        query = star_query(2)
        db = zipf_database(query, m=150, n=60, skew=1.0, seed=seed)
        reference = run_star_skew(query, db, p=8, seed=seed, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_star_skew(
                query, db, p=8, seed=seed, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers
        assert reference.answers == evaluate(query, db)

    @pytest.mark.parametrize("chunk_rows", [5, 64, 100_000])
    def test_triangle_zipf(self, chunk_rows):
        db = zipf_database(triangle_query(), m=300, n=80, skew=1.0, seed=4)
        reference = run_triangle_skew(db, p=8, seed=2, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_triangle_skew(
                db, p=8, seed=2, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers


class TestMultiRoundChunked:
    @given(
        query=random_queries(connected_only=True),
        seed=st.integers(min_value=0, max_value=2**20),
        chunk_rows=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_generic_plans(self, query, seed, chunk_rows):
        n = 8
        sizes = {a.relation: min(20, n**a.arity) for a in query.atoms}
        db = uniform_database(query, m=sizes, n=n, seed=seed)
        plan = generic_plan(query, fanout=2)
        reference = run_plan(plan, db, p=8, seed=seed, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_plan(
                plan, db, p=8, seed=seed, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert np.array_equal(
                chunked.answers_array(), reference.answers_array()
            )
        assert reference.answers == evaluate(query, db)

    @pytest.mark.parametrize("chunk_rows", [2, 16, 100_000])
    def test_chain_plan_views_spill(self, chunk_rows):
        plan = chain_plan(4, 0.0)
        db = matching_database(plan.query, m=200, n=200, seed=6)
        reference = run_plan(plan, db, p=8, seed=3, backend="numpy")
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_plan(
                plan, db, p=8, seed=3, backend="numpy", storage=storage,
                keep_view_fragments=True,
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers
            if chunk_rows <= 16:
                assert storage.bytes_spilled > 0
            # The root view's spools are adopted as output spools, not
            # copied: the final result is never re-spilled.
            root = plan.root.name
            sim = chunked.simulation
            for server, fragment in enumerate(chunked.view_fragments[root]):
                if len(fragment):
                    assert sim._output_spools[server] is fragment

    def test_star_plan_chunked(self):
        plan = star_plan(3)
        db = matching_database(plan.query, m=120, n=600, seed=7)
        reference = run_plan(plan, db, p=8, seed=2, backend="numpy")
        with StorageManager(chunk_rows=13) as storage:
            chunked = run_plan(
                plan, db, p=8, seed=2, backend="numpy", storage=storage
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers

    @pytest.mark.parametrize("chunk_rows", [3, 1000])
    def test_capacity_truncation_identical_chunked(self, chunk_rows):
        # Satellite edge: a binding per-round cap inside a multi-round
        # plan truncates identically on the tuple, in-memory columnar,
        # and chunked paths -- drops in round 1 then propagate
        # identically through round 2.
        plan = chain_plan(4, 0.0)
        db = zipf_database(plan.query, m=150, n=60, skew=1.0, seed=9)
        kwargs = dict(p=8, seed=1, capacity_bits=2000.0, on_overflow="drop")
        reference = run_plan(plan, db, backend="tuples", **kwargs)
        assert reference.report.dropped_bits > 0
        in_memory = run_plan(plan, db, backend="numpy", **kwargs)
        assert_same_report(reference.report, in_memory.report)
        assert in_memory.answers == reference.answers
        with StorageManager(chunk_rows=chunk_rows) as storage:
            chunked = run_plan(
                plan, db, backend="numpy", storage=storage, **kwargs
            )
            assert_same_report(reference.report, chunked.report)
            assert chunked.answers == reference.answers
