"""Tests for the one-round lower bound and Theorem 3.15 equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.one_round import (
    answer_fraction_bound,
    equivalence_gap,
    load_formula,
    lower_bound,
    optimal_packing_vertex,
    speedup_exponent_at,
    upper_bound,
)
from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.core.stats import Statistics
from tests.conftest import random_queries


def uniform_stats(query, m=2**20, n=2**20):
    return Statistics.uniform(query, m, domain_size=n)


class TestLoadFormula:
    def test_equal_sizes_closed_form(self):
        # L(u, M, p) = M / p^{1/sum u} when all M_j equal.
        u = {"S1": 0.5, "S2": 0.5, "S3": 0.5}
        bits = {"S1": 1024.0, "S2": 1024.0, "S3": 1024.0}
        assert load_formula(u, bits, 64) == pytest.approx(1024 / 64 ** (2 / 3))

    def test_zero_packing_gives_zero(self):
        assert load_formula({"S1": 0.0}, {"S1": 100.0}, 4) == 0.0

    def test_single_relation_linear_speedup(self):
        u = {"S1": 1.0, "S2": 0.0}
        bits = {"S1": 500.0, "S2": 900.0}
        assert load_formula(u, bits, 10) == pytest.approx(50.0)

    def test_empty_relation_collapses(self):
        assert load_formula({"S1": 1.0}, {"S1": 0.0}, 4) == 0.0


class TestExample317:
    """Example 3.17: the five vertices of pk(C3) and the crossover."""

    def setup_method(self):
        self.q = triangle_query()

    def stats(self, m1, m):
        return Statistics(
            self.q, {"S1": m1, "S2": m, "S3": m}, domain_size=2**20
        )

    def test_small_p_prefers_broadcast(self):
        # p < M/M1: optimal vertex is (0,1,0) or (0,0,1); load M/p.
        stats = self.stats(1000, 100_000)
        p = 8
        u, value = optimal_packing_vertex(self.q, stats, p)
        assert value == pytest.approx(stats.bits("S2") / p)
        assert u["S1"] == pytest.approx(0.0)

    def test_large_p_prefers_hypercube(self):
        stats = self.stats(1000, 100_000)
        p = 1000
        u, value = optimal_packing_vertex(self.q, stats, p)
        assert u == {"S1": 0.5, "S2": 0.5, "S3": 0.5}
        geo = (
            stats.bits("S1") * stats.bits("S2") * stats.bits("S3")
        ) ** (1 / 3)
        assert value == pytest.approx(geo / p ** (2 / 3))

    def test_speedup_exponent_degrades(self):
        # Lemma 3.18(3): the speedup exponent can only shrink with p.
        stats = self.stats(1000, 100_000)
        small = speedup_exponent_at(self.q, stats, 8)
        large = speedup_exponent_at(self.q, stats, 10_000)
        assert small == pytest.approx(1.0)  # linear speedup regime
        assert large == pytest.approx(2 / 3)  # 1/tau*
        assert small >= large


class TestEquivalence:
    @pytest.mark.parametrize(
        "query",
        [
            triangle_query(),
            chain_query(3),
            chain_query(4),
            star_query(3),
            cycle_query(4),
            cycle_query(5),
            binom_query(4, 2),
            binom_query(4, 3),
            simple_join_query(),
        ],
        ids=lambda q: q.name,
    )
    @pytest.mark.parametrize("p", [2, 16, 64, 1024])
    def test_theorem_3_15_equal_sizes(self, query, p):
        stats = uniform_stats(query)
        assert equivalence_gap(query, stats, p) == pytest.approx(1.0, rel=1e-6)

    @pytest.mark.parametrize("p", [4, 64, 4096])
    def test_theorem_3_15_unequal_sizes(self, p):
        q = triangle_query()
        stats = Statistics(
            q, {"S1": 2**10, "S2": 2**14, "S3": 2**17}, domain_size=2**20
        )
        assert equivalence_gap(q, stats, p) == pytest.approx(1.0, rel=1e-6)

    @given(random_queries(max_variables=4, max_atoms=4), st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem_3_15_random(self, query, data):
        p = data.draw(st.sampled_from([4, 16, 256]))
        sizes = {
            r: data.draw(
                st.integers(min_value=2**10, max_value=2**20), label=r
            )
            for r in query.relation_names
        }
        stats = Statistics(query, sizes, domain_size=2**24)
        # mu_j >= 1 needs M_j >= p: guaranteed by sizes >= 2^10 > p... for p<=256.
        assert equivalence_gap(query, stats, p) == pytest.approx(1.0, rel=1e-5)

    def test_equal_sizes_is_tau_star_load(self):
        q = cycle_query(5)
        stats = uniform_stats(q)
        p = 32
        expected = stats.bits("S1") / p ** (1 / 2.5)
        assert lower_bound(q, stats, p) == pytest.approx(expected, rel=1e-6)
        assert upper_bound(q, stats, p) == pytest.approx(expected, rel=1e-6)


class TestAnswerFraction:
    def test_full_load_reports_everything(self):
        q = triangle_query()
        stats = uniform_stats(q)
        p = 64
        at_bound = lower_bound(q, stats, p)
        # At L = tau* * L_lower even the strengthened bound reaches 1.
        assert answer_fraction_bound(
            q, stats, p, 1.5 * at_bound, strengthened=True
        ) == pytest.approx(1.0)

    def test_small_load_reports_vanishing_fraction(self):
        q = triangle_query()
        stats = uniform_stats(q)
        p = 64
        tiny = lower_bound(q, stats, p) / 100.0
        fraction = answer_fraction_bound(q, stats, p, tiny, strengthened=True)
        assert fraction < 0.01

    def test_decreases_with_p_below_space_exponent(self):
        # Section 3.4: with space exponent eps < 1 - 1/tau*, the
        # reported fraction decays as p grows.
        q = triangle_query()
        eps = 0.0  # load M/p, below the required 1 - 2/3
        fractions = []
        for p in (8, 64, 512):
            stats = uniform_stats(q)
            load = stats.bits("S1") / p ** (1.0 - eps)
            fractions.append(
                answer_fraction_bound(q, stats, p, load, strengthened=True)
            )
        assert fractions[0] > fractions[1] > fractions[2]

    def test_zero_load(self):
        q = chain_query(2)
        assert answer_fraction_bound(q, uniform_stats(q), 4, 0.0) == 0.0

    def test_plain_weaker_than_strengthened(self):
        q = triangle_query()
        stats = uniform_stats(q)
        load = lower_bound(q, stats, 64) / 10
        plain = answer_fraction_bound(q, stats, 64, load)
        strong = answer_fraction_bound(q, stats, 64, load, strengthened=True)
        assert strong <= plain


class TestValidation:
    def test_degenerate_statistics_rejected(self):
        q = chain_query(2)
        stats = Statistics(q, {"S1": 0, "S2": 0}, domain_size=4)
        with pytest.raises(ValueError):
            equivalence_gap(q, stats, 4)
