"""Tests for replication-rate, entropy, and probability bounds."""

from __future__ import annotations

import math

import pytest

from repro.bounds.entropy import (
    binary_entropy,
    log2_binomial,
    log2_factorial,
    matching_entropy_bits,
    raw_size_bits,
)
from repro.bounds.probability import (
    delta_threshold,
    expected_answers_cap,
    failure_probability_bound,
    output_concentration_bound,
    randomized_failure_bound,
    required_trials,
)
from repro.bounds.replication import (
    replication_rate_equal_sizes,
    replication_rate_lower_bound,
)
from repro.core.families import chain_query, star_query, triangle_query
from repro.core.stats import Statistics


class TestReplication:
    def test_example_3_20_shape(self):
        # Triangle: r = Omega(sqrt(M/L)).
        q = triangle_query()
        m_bits = 2**20
        for ratio in (4, 16, 64):
            load = m_bits / ratio
            assert replication_rate_equal_sizes(q, m_bits, load) == pytest.approx(
                math.sqrt(ratio)
            )

    def test_star_query_allows_constant_replication(self):
        # tau* = 1: (M/L)^0 = 1 -- replication o(1)-ish is possible
        # exactly when a variable occurs in every atom.
        q = star_query(3)
        assert replication_rate_equal_sizes(q, 2**20, 2**10) == pytest.approx(1.0)

    def test_corollary_bound_positive_and_monotone(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 2**15, domain_size=2**20)
        bits = stats.bits("S1")
        low = replication_rate_lower_bound(q, stats, bits / 4)
        high = replication_rate_lower_bound(q, stats, bits / 64)
        assert 0 < low < high  # smaller load forces more replication

    def test_corollary_proviso(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 2**10, domain_size=2**20)
        with pytest.raises(ValueError, match="L <= M_j"):
            replication_rate_lower_bound(q, stats, stats.bits("S1") * 2)

    def test_validation(self):
        q = chain_query(2)
        with pytest.raises(ValueError):
            replication_rate_equal_sizes(q, 0, 10)
        stats = Statistics.uniform(q, 2**10, domain_size=2**12)
        with pytest.raises(ValueError):
            replication_rate_lower_bound(q, stats, 0)


class TestEntropy:
    def test_log2_factorial(self):
        assert log2_factorial(5) == pytest.approx(math.log2(120))
        assert log2_factorial(0) == pytest.approx(0.0)

    def test_log2_binomial(self):
        assert log2_binomial(10, 3) == pytest.approx(math.log2(120))
        with pytest.raises(ValueError):
            log2_binomial(3, 5)

    def test_binary_entropy(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    def test_matching_count_formula(self):
        # binom(n,m)^a * (m!)^{a-1} matchings: check in log space.
        n, m, a = 12, 4, 3
        expected = a * math.log2(math.comb(n, m)) + (a - 1) * math.log2(
            math.factorial(m)
        )
        assert matching_entropy_bits(n, m, a) == pytest.approx(expected)

    def test_proposition_3_14_large_domain(self):
        # n >= m^2  ==>  entropy >= M_j / 2.
        n, m, a = 10_000, 100, 2
        assert matching_entropy_bits(n, m, a) >= raw_size_bits(n, m, a) / 2

    def test_proposition_3_14_square_domain(self):
        # n = m, a >= 2  ==>  entropy >= M_j / 4.
        n = m = 4096
        for a in (2, 3):
            assert matching_entropy_bits(n, m, a) >= raw_size_bits(n, m, a) / 4

    def test_entropy_at_most_raw_size(self):
        # Describing a matching never takes more bits than listing it.
        for n, m, a in ((100, 10, 2), (1000, 500, 3), (64, 64, 2)):
            assert matching_entropy_bits(n, m, a) <= raw_size_bits(n, m, a) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            matching_entropy_bits(5, 10, 2)
        with pytest.raises(ValueError):
            matching_entropy_bits(5, 3, 0)


class TestProbability:
    def test_lemma_b1_known_value(self):
        # alpha = 1/3, large mu: bound -> (2/3)^2 = 4/9.
        assert output_concentration_bound(1e9, 1 / 3) == pytest.approx(
            4 / 9, rel=1e-6
        )

    def test_lemma_b1_small_mu(self):
        assert output_concentration_bound(1.0, 0.0) == pytest.approx(0.5)
        assert output_concentration_bound(0.0, 0.5) == 0.0

    def test_lemma_b2(self):
        assert failure_probability_bound(0.0) == 1.0
        assert failure_probability_bound(1 / 18) == pytest.approx(0.5)
        assert failure_probability_bound(0.2) == 0.0

    def test_theorem_3_7_positive_below_threshold(self):
        q = triangle_query()
        delta = delta_threshold(q) / 2
        assert randomized_failure_bound(q, delta) > 0

    def test_theorem_3_7_vacuous_above_threshold(self):
        q = triangle_query()
        assert randomized_failure_bound(q, 1.0) == 0.0

    def test_threshold_formula(self):
        # tau*(C3) = 3/2: threshold = 1/(4 * 9^{1.5}) = 1/108.
        assert delta_threshold(triangle_query()) == pytest.approx(1 / 108)

    def test_required_trials(self):
        assert required_trials(0.99, 1.0) == 1
        t = required_trials(0.99, 0.5)
        assert 1 - 0.5**t >= 0.99
        with pytest.raises(ValueError):
            required_trials(1.5, 0.5)

    def test_expected_answers_cap(self):
        assert expected_answers_cap(0.5, 100) == 50
        with pytest.raises(ValueError):
            expected_answers_cap(-1, 10)
