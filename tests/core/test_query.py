"""Tests for the conjunctive-query core (paper Section 2.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    k4_query,
    simple_join_query,
    spk_query,
    star_query,
    triangle_query,
)
from repro.core.query import Atom, ConjunctiveQuery
from tests.conftest import random_queries


class TestAtom:
    def test_basic(self):
        a = Atom("S", ("x", "y"))
        assert a.arity == 2
        assert a.variable_set == {"x", "y"}
        assert str(a) == "S(x, y)"

    def test_repeated_variables_allowed(self):
        a = Atom("S", ("x", "x"))
        assert a.arity == 2
        assert a.variable_set == {"x"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Atom("S", ())
        with pytest.raises(ValueError):
            Atom("", ("x",))

    def test_rename(self):
        a = Atom("S", ("x", "y")).rename({"y": "z"})
        assert a.variables == ("x", "z")


class TestValidation:
    def test_self_join_rejected(self):
        with pytest.raises(ValueError, match="self-join"):
            ConjunctiveQuery((Atom("S", ("x", "y")), Atom("S", ("y", "z"))))

    def test_isolated_variable_overlap_rejected(self):
        with pytest.raises(ValueError, match="isolated"):
            ConjunctiveQuery(
                (Atom("S", ("x",)),), isolated_variables=frozenset({"x"})
            )

    def test_empty_query_is_legal(self):
        q = ConjunctiveQuery(())
        assert q.num_atoms == 0
        assert q.num_variables == 0
        assert q.characteristic == 0


class TestCounts:
    def test_chain_counts(self):
        q = chain_query(5)
        assert q.num_atoms == 5
        assert q.num_variables == 6
        assert q.total_arity == 10
        assert q.num_components == 1

    def test_star_counts(self):
        q = star_query(4)
        assert q.num_variables == 5  # z plus x1..x4
        assert q.total_arity == 8

    def test_variables_first_occurrence_order(self):
        q = chain_query(3)
        assert q.variables == ("x0", "x1", "x2", "x3")

    def test_atom_lookup(self):
        q = triangle_query()
        assert q.atom("S2").variables == ("x2", "x3")
        with pytest.raises(KeyError):
            q.atom("nope")

    def test_atoms_of(self):
        q = triangle_query()
        assert {a.relation for a in q.atoms_of("x1")} == {"S1", "S3"}


class TestCharacteristic:
    def test_paper_l5_l3_example(self):
        # chi(L5) = 10 - 6 - 5 + 1 = 0 and chi(L3) = 6 - 4 - 3 + 1 = 0.
        assert chain_query(5).characteristic == 0
        assert chain_query(3).characteristic == 0

    def test_paper_k4_example(self):
        # chi(K4) = 12 - 4 - 6 + 1 = 3.
        assert k4_query().characteristic == 3

    def test_k4_contraction_example(self):
        # K4/M with M = {S1,S2,S3}: chi(M) = 1, chi(K4/M) = 2.
        k4 = k4_query()
        m = k4.subquery(["S1", "S2", "S3"])
        assert m.characteristic == 1
        contracted = k4.contract(["S1", "S2", "S3"])
        assert contracted.characteristic == 2
        assert contracted.num_atoms == 3
        assert contracted.num_variables == 2

    def test_l5_contraction_example(self):
        # L5/{S2,S4} is isomorphic to L3; chi(M) = 0 for the two-edge M.
        l5 = chain_query(5)
        contracted = l5.contract(["S2", "S4"])
        assert contracted.num_atoms == 3
        assert contracted.num_variables == 4
        assert contracted.characteristic == 0
        m = l5.subquery(["S2", "S4"])
        assert m.characteristic == 0
        assert m.num_components == 2

    def test_contract_whole_component_leaves_isolated_variable(self):
        q = ConjunctiveQuery((Atom("S", ("x", "y")),))
        contracted = q.contract(["S"])
        assert contracted.num_atoms == 0
        assert contracted.num_variables == 1
        assert contracted.num_components == 1
        assert contracted.characteristic == 0

    @given(random_queries())
    @settings(max_examples=60, deadline=None)
    def test_characteristic_nonnegative(self, q):
        # Lemma 2.1(c).
        assert q.characteristic >= 0

    @given(random_queries())
    @settings(max_examples=60, deadline=None)
    def test_characteristic_additive_over_components(self, q):
        # Lemma 2.1(a).
        total = sum(c.characteristic for c in q.connected_components())
        assert total == q.characteristic

    @given(random_queries(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_contraction_identity(self, q, data):
        # Lemma 2.1(b): chi(q/M) = chi(q) - chi(M).
        names = list(q.relation_names)
        subset = data.draw(st.sets(st.sampled_from(names)) if names else st.just(set()))
        m = q.subquery(subset)
        contracted = q.contract(subset)
        assert contracted.characteristic == q.characteristic - m.characteristic
        # Lemma 2.1(d): chi(q) >= chi(q/M).
        assert q.characteristic >= contracted.characteristic


class TestTreeLike:
    def test_chains_are_tree_like(self):
        for k in (1, 2, 5, 9):
            assert chain_query(k).is_tree_like

    def test_stars_are_tree_like(self):
        assert star_query(4).is_tree_like

    def test_cycles_are_not_tree_like(self):
        for k in (3, 4, 6):
            assert not cycle_query(k).is_tree_like

    def test_acyclic_but_not_tree_like(self):
        # Paper: q = S1(x0,x1,x2), S2(x1,x2,x3) is acyclic but chi = 1.
        q = ConjunctiveQuery(
            (Atom("S1", ("x0", "x1", "x2")), Atom("S2", ("x1", "x2", "x3")))
        )
        assert q.characteristic == 1
        assert not q.is_tree_like

    def test_connected_subquery_of_tree_like_is_tree_like(self):
        q = chain_query(6)
        for sub in q.connected_subqueries():
            assert sub.is_tree_like


class TestConnectivity:
    def test_paper_connectivity_examples(self):
        # q(x,y) = R(x), S(y) is not connected; adding T(x,y) connects it.
        q1 = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        assert not q1.is_connected
        q2 = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("y",)), Atom("T", ("x", "y")))
        )
        assert q2.is_connected

    def test_components_partition_atoms(self):
        q = ConjunctiveQuery(
            (
                Atom("R", ("x", "y")),
                Atom("S", ("z",)),
                Atom("T", ("y", "w")),
            )
        )
        comps = q.connected_components()
        assert len(comps) == 2
        sizes = sorted(c.num_atoms for c in comps)
        assert sizes == [1, 2]


class TestMetrics:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 8])
    def test_chain_radius_diameter(self, k):
        q = chain_query(k)
        assert q.diameter == k
        assert q.radius == (k + 1) // 2

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8])
    def test_cycle_radius_diameter(self, k):
        q = cycle_query(k)
        assert q.radius == k // 2
        assert q.diameter == k // 2

    def test_star_radius(self):
        q = star_query(5)
        assert q.radius == 1
        assert q.diameter == 2
        assert q.center() == "z"

    def test_spk_radius(self):
        q = spk_query(3)
        assert q.radius == 2
        assert q.center() == "z"

    def test_disconnected_has_no_radius(self):
        q = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        with pytest.raises(ValueError):
            _ = q.radius

    def test_distances(self):
        q = chain_query(4)
        d = q.distances_from("x0")
        assert d["x4"] == 4
        assert d["x2"] == 2


class TestOperations:
    def test_subquery(self):
        q = chain_query(4)
        sub = q.subquery(["S2", "S3"])
        assert sub.num_atoms == 2
        assert set(sub.variables) == {"x1", "x2", "x3"}

    def test_subquery_unknown_relation(self):
        with pytest.raises(KeyError):
            chain_query(2).subquery(["nope"])

    def test_contract_unknown_relation(self):
        with pytest.raises(KeyError):
            chain_query(2).contract(["nope"])

    def test_rename_relations(self):
        q = chain_query(2).rename_relations({"S1": "V1"})
        assert set(q.relation_names) == {"V1", "S2"}

    def test_rename_variables(self):
        q = chain_query(2).rename_variables({"x0": "a"})
        assert q.atom("S1").variables == ("a", "x1")

    def test_contraction_produces_repeated_variable_atoms(self):
        # Contracting the middle of a triangle folds S3 onto two merged vars.
        q = triangle_query()
        contracted = q.contract(["S1"])
        # S2(x2,x3) -> S2(x1,x3), S3(x3,x1): arity stays 2, chi drops by 0.
        assert contracted.total_arity == 4
        assert contracted.characteristic == q.characteristic

    def test_connected_subqueries_of_chain(self):
        # A path of 3 atoms has 3 + 2 + 1 = 6 connected subsets.
        q = chain_query(3)
        subs = list(q.connected_subqueries())
        assert len(subs) == 6
        assert all(s.is_connected for s in subs)

    def test_connected_subqueries_bounded(self):
        q = chain_query(4)
        subs = list(q.connected_subqueries(min_atoms=2, max_atoms=2))
        assert len(subs) == 3
        assert all(s.num_atoms == 2 for s in subs)


class TestFamilies:
    def test_binom_query_counts(self):
        q = binom_query(4, 2)
        assert q.num_atoms == 6
        assert q.num_variables == 4
        assert q.name == "B4_2"

    def test_binom_is_k4_shape(self):
        assert binom_query(4, 2).characteristic == k4_query().characteristic

    def test_simple_join(self):
        q = simple_join_query()
        assert q.num_variables == 3
        assert q.is_connected

    def test_spk_structure(self):
        q = spk_query(2)
        assert q.num_atoms == 4
        assert q.num_variables == 5
        assert q.is_tree_like

    def test_family_validation(self):
        with pytest.raises(ValueError):
            chain_query(0)
        with pytest.raises(ValueError):
            cycle_query(2)
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            binom_query(3, 4)

    def test_str_roundtrip_mentions_atoms(self):
        text = str(triangle_query())
        assert "S1(x1, x2)" in text
