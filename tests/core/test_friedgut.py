"""Tests for Friedgut's inequality, AGM bound, expected output size."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import chain_query, star_query, triangle_query
from repro.core.friedgut import (
    agm_bound,
    expected_output_equal_sizes,
    expected_output_size,
    friedgut_lhs,
    friedgut_rhs,
)
from repro.core.packing import minimum_edge_cover
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.stats import Statistics


def random_weights(query, n, seed, density=0.5, max_weight=3.0):
    rng = random.Random(seed)
    out = {}
    for atom in query.atoms:
        w = {}
        for tup in itertools.product(range(n), repeat=atom.arity):
            if rng.random() < density:
                w[tup] = rng.uniform(0.0, max_weight)
        out[atom.relation] = w
    return out


class TestFriedgut:
    @pytest.mark.parametrize("seed", range(5))
    def test_triangle_inequality_with_half_cover(self, seed):
        q = triangle_query()
        n = 4
        weights = random_weights(q, n, seed)
        cover = {"S1": 0.5, "S2": 0.5, "S3": 0.5}
        lhs = friedgut_lhs(q, weights, n)
        rhs = friedgut_rhs(q, cover, weights)
        assert lhs <= rhs + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_l3_inequality_with_101_cover(self, seed):
        # Paper's second example: cover (1, 0, 1) turns the middle factor
        # into a max.
        q = chain_query(3)
        n = 3
        weights = random_weights(q, n, seed)
        cover = {"S1": 1.0, "S2": 0.0, "S3": 1.0}
        lhs = friedgut_lhs(q, weights, n)
        rhs = friedgut_rhs(q, cover, weights)
        assert lhs <= rhs + 1e-9
        # Check the closed form of the RHS for this cover.
        s1 = sum(weights["S1"].values())
        s3 = sum(weights["S3"].values())
        mx = max(weights["S2"].values(), default=0.0)
        assert rhs == pytest.approx(s1 * mx * s3)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_inequality_random_star(self, seed):
        q = star_query(2)
        n = 3
        weights = random_weights(q, n, seed)
        cover = {"S1": 1.0, "S2": 1.0}
        assert friedgut_lhs(q, weights, n) <= friedgut_rhs(q, cover, weights) + 1e-9

    def test_rhs_rejects_non_cover(self):
        q = triangle_query()
        with pytest.raises(ValueError):
            friedgut_rhs(q, {"S1": 0.1, "S2": 0.1, "S3": 0.1}, {})

    def test_lhs_counts_join_size_for_01_weights(self):
        # With 0/1 weights the LHS is exactly |q(I)|.
        q = triangle_query()
        edges = {(0, 1), (1, 2), (2, 0), (0, 0)}
        weights = {
            "S1": {e: 1.0 for e in edges},
            "S2": {e: 1.0 for e in edges},
            "S3": {e: 1.0 for e in edges},
        }
        # Directed triangles: the three rotations (0,1,2), (1,2,0),
        # (2,0,1), plus (0,0,0) via the self-loop.
        assert friedgut_lhs(q, weights, 3) == pytest.approx(4.0)


class TestAGM:
    def test_triangle_agm_is_sqrt_product(self):
        q = triangle_query()
        m = {"S1": 100, "S2": 100, "S3": 100}
        assert agm_bound(q, m) == pytest.approx(100 ** 1.5, rel=1e-6)

    def test_chain_agm_uses_rho_star(self):
        q = chain_query(3)
        m = {"S1": 10, "S2": 10, "S3": 10}
        rho = minimum_edge_cover(q).total
        assert rho == pytest.approx(2.0)
        assert agm_bound(q, m) == pytest.approx(100.0, rel=1e-6)

    def test_agm_zero_relation(self):
        q = chain_query(2)
        assert agm_bound(q, {"S1": 0, "S2": 5}) == 0.0

    def test_agm_unequal_sizes_prefers_cheap_cover(self):
        q = chain_query(2)  # rho* = 2? L2: S1(x0,x1), S2(x1,x2); cover needs both.
        m = {"S1": 4, "S2": 9}
        assert agm_bound(q, m) == pytest.approx(36.0, rel=1e-6)


class TestExpectedOutput:
    def test_formula_chain(self):
        q = chain_query(2)
        stats = Statistics(q, {"S1": 50, "S2": 70}, domain_size=100)
        # k = 3, a = 4: E = n^{-1} m1 m2.
        assert expected_output_size(stats) == pytest.approx(50 * 70 / 100)

    def test_equal_sizes_corollary(self):
        # E[|q(I)|] = n^{c - chi}: chains have c=1, chi=0.
        q = chain_query(4)
        assert expected_output_equal_sizes(q, 32) == pytest.approx(32.0)

    def test_equal_sizes_triangle(self):
        q = triangle_query()
        # chi(C3) = 6 - 3 - 3 + 1 = 1, c = 1: E = n^0 = 1.
        assert q.characteristic == 1
        assert expected_output_equal_sizes(q, 1000) == pytest.approx(1.0)

    def test_monte_carlo_matches_formula(self):
        # Small Monte-Carlo check of Lemma 3.6 on the simple 2-chain.
        rng = random.Random(7)
        q = chain_query(2)
        n, m = 12, 6
        stats = Statistics(q, {"S1": m, "S2": m}, domain_size=n)
        trials = 400
        total = 0
        for _ in range(trials):
            # Uniform matchings: random injections on both columns.
            def matching():
                left = rng.sample(range(n), m)
                right = rng.sample(range(n), m)
                return set(zip(left, right))

            s1, s2 = matching(), matching()
            index = {}
            for a, b in s1:
                index.setdefault(b, []).append(a)
            count = sum(len(index.get(b, ())) for (b, _c) in s2)
            total += count
        empirical = total / trials
        assert empirical == pytest.approx(expected_output_size(stats), rel=0.15)


class TestDisconnected:
    def test_cartesian_product_expected_size(self):
        q = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        stats = Statistics(q, {"R": 5, "S": 7}, domain_size=10)
        # k=2, a=2: E = m1 * m2.
        assert expected_output_size(stats) == pytest.approx(35.0)
