"""Tests for the share-exponent LPs (paper Sections 3.1 and 4.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.core.shares import (
    equal_size_share_exponents,
    integerize_shares,
    share_exponents,
    skew_oblivious_share_exponents,
    space_exponent_bound,
    speedup_exponent,
)
from repro.core.stats import Statistics


def uniform_stats(query, m=2**20, n=2**20):
    return Statistics.uniform(query, m, domain_size=n)


class TestEqualSizeClosedForm:
    def test_triangle_shares(self):
        e = equal_size_share_exponents(triangle_query())
        assert all(v == pytest.approx(1 / 3) for v in e.values())

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_cycle_shares_table2(self, k):
        e = equal_size_share_exponents(cycle_query(k))
        assert all(v == pytest.approx(1 / k) for v in e.values())

    def test_star_shares_table2(self):
        e = equal_size_share_exponents(star_query(3))
        assert e["z"] == pytest.approx(1.0)
        assert all(e[f"x{j}"] == pytest.approx(0.0) for j in (1, 2, 3))

    @pytest.mark.parametrize("k,m", [(3, 2), (4, 2), (4, 3)])
    def test_binom_shares_table2(self, k, m):
        e = equal_size_share_exponents(binom_query(k, m))
        assert all(v == pytest.approx(1 / k) for v in e.values())

    def test_exponents_sum_to_one(self):
        for q in (chain_query(4), cycle_query(5), star_query(2)):
            e = equal_size_share_exponents(q)
            assert sum(e.values()) == pytest.approx(1.0)


class TestShareLP:
    @pytest.mark.parametrize(
        "query,tau",
        [
            (triangle_query(), 1.5),
            (chain_query(3), 2.0),
            (star_query(3), 1.0),
            (cycle_query(4), 2.0),
            (binom_query(4, 2), 2.0),
        ],
    )
    def test_equal_sizes_load_is_m_over_p_inv_tau(self, query, tau):
        # Section 3.1: lambda* = mu - 1/tau*, so L = M / p^{1/tau*}.
        p = 64
        stats = uniform_stats(query)
        sol = share_exponents(query, stats, p)
        bits = stats.bits(query.relation_names[0])
        expected = bits / p ** (1.0 / tau)
        assert sol.load_bits == pytest.approx(expected, rel=1e-6)

    def test_example_3_17_small_relation_broadcast(self):
        # M1 << M2 = M3: for small p the optimum broadcasts S1, load M/p.
        q = triangle_query()
        m_small, m_big = 1000, 100_000
        stats = Statistics(
            q, {"S1": m_small, "S2": m_big, "S3": m_big}, domain_size=2**20
        )
        p = 8  # p < M/M1 = 100
        sol = share_exponents(q, stats, p)
        assert sol.load_bits == pytest.approx(stats.bits("S2") / p, rel=1e-6)

    def test_example_3_17_crossover_to_hypercube(self):
        # For p > M/M1 the optimum is the (1/2,1/2,1/2) packing:
        # load (M1 M2 M3)^{1/3} / p^{2/3}.
        q = triangle_query()
        m_small, m_big = 1000, 100_000
        stats = Statistics(
            q, {"S1": m_small, "S2": m_big, "S3": m_big}, domain_size=2**20
        )
        p = 1000  # p > M/M1 = 100
        sol = share_exponents(q, stats, p)
        geo = (stats.bits("S1") * stats.bits("S2") * stats.bits("S3")) ** (1 / 3)
        assert sol.load_bits == pytest.approx(geo / p ** (2 / 3), rel=1e-6)

    def test_share_exponents_sum_at_most_one(self):
        q = cycle_query(5)
        sol = share_exponents(q, uniform_stats(q), 32)
        assert sum(sol.exponents.values()) <= 1.0 + 1e-9

    def test_rejects_single_server(self):
        q = chain_query(2)
        with pytest.raises(ValueError):
            share_exponents(q, uniform_stats(q), 1)


class TestSkewObliviousLP:
    def test_simple_join_skew_oblivious(self):
        # LP (18) for the simple join: e_x = e_y = e_z = 1/3, L = M/p^{1/3}.
        q = simple_join_query()
        p = 64
        stats = uniform_stats(q)
        sol = skew_oblivious_share_exponents(q, stats, p)
        bits = stats.bits("S1")
        assert sol.load_bits == pytest.approx(bits / p ** (1 / 3), rel=1e-6)

    def test_triangle_skew_oblivious(self):
        q = triangle_query()
        p = 64
        stats = uniform_stats(q)
        sol = skew_oblivious_share_exponents(q, stats, p)
        bits = stats.bits("S1")
        assert sol.load_bits == pytest.approx(bits / p ** (1 / 3), rel=1e-6)

    def test_skew_never_beats_skew_free(self):
        # The skew-oblivious optimum is never better than LP (10)'s.
        for q in (simple_join_query(), triangle_query(), chain_query(3)):
            stats = uniform_stats(q)
            free = share_exponents(q, stats, 64)
            skewed = skew_oblivious_share_exponents(q, stats, 64)
            assert skewed.load_bits >= free.load_bits * (1 - 1e-9)

    def test_star_query_skew_oblivious_unchanged(self):
        # For T_k the skew-free optimum hashes on z only; under the
        # oblivious LP that still costs min-share 1 unless shares move to
        # the x's.  The LP balances: e_z = ... check value is meaningful.
        q = star_query(2)
        stats = uniform_stats(q)
        sol = skew_oblivious_share_exponents(q, stats, 64)
        assert sol.load_bits >= share_exponents(q, stats, 64).load_bits - 1e-6


class TestSpeedupHelpers:
    def test_speedup_exponent_triangle(self):
        assert speedup_exponent(triangle_query()) == pytest.approx(2 / 3)

    @pytest.mark.parametrize(
        "query,expected",
        [
            (cycle_query(4), 1 - 2 / 4),
            (cycle_query(6), 1 - 2 / 6),
            (star_query(3), 0.0),
            (chain_query(5), 1 - 1 / 3),
            (binom_query(4, 2), 1 - 2 / 4),
        ],
    )
    def test_space_exponent_table2(self, query, expected):
        assert space_exponent_bound(query) == pytest.approx(expected)


class TestIntegerization:
    def test_perfect_cube(self):
        shares = integerize_shares({"x": 1 / 3, "y": 1 / 3, "z": 1 / 3}, 64)
        assert shares == {"x": 4, "y": 4, "z": 4}

    def test_single_variable_gets_everything(self):
        shares = integerize_shares({"z": 1.0, "x": 0.0}, 7)
        assert shares == {"z": 7, "x": 1}

    def test_product_never_exceeds_p(self):
        for p in (2, 3, 5, 12, 100, 1000):
            shares = integerize_shares({"x": 0.5, "y": 0.3, "z": 0.2}, p)
            assert math.prod(shares.values()) <= p
            assert all(s >= 1 for s in shares.values())

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_product_bound_random(self, k, p):
        exponents = {f"x{i}": 1.0 / k for i in range(k)}
        shares = integerize_shares(exponents, p)
        assert math.prod(shares.values()) <= p
        assert all(s >= 1 for s in shares.values())

    def test_zero_exponent_share_stays_one(self):
        shares = integerize_shares({"x": 1.0, "y": 0.0}, 16)
        assert shares["y"] == 1
        assert shares["x"] == 16


class TestIntegerLoadBits:
    def test_at_least_fractional_load(self):
        for query in (triangle_query(), star_query(3), chain_query(4)):
            stats = uniform_stats(query)
            solution = share_exponents(query, stats, 64)
            assert solution.integer_load_bits(stats) >= solution.load_bits - 1e-6

    def test_exact_on_perfect_cube(self):
        # Triangle at p=64: integer shares 4x4x4 equal the fractional
        # optimum, so the integerized load equals p^lambda = M/p^{2/3}.
        query = triangle_query()
        stats = uniform_stats(query)
        solution = share_exponents(query, stats, 64)
        expected = stats.bits("S1") / 16
        assert solution.integer_load_bits(stats) == pytest.approx(expected)
        assert solution.load_bits == pytest.approx(expected)

    def test_rounding_penalty_visible_off_cube(self):
        # p=50 cannot be split 3 ways evenly; the integerized load is
        # strictly above the fractional bound.
        query = triangle_query()
        stats = uniform_stats(query)
        solution = share_exponents(query, stats, 50)
        assert solution.integer_load_bits(stats) > solution.load_bits
