"""Tests for Lemma 3.13's extended query construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.families import chain_query, star_query, triangle_query
from repro.core.packing import (
    extended_query,
    is_edge_cover,
    is_edge_packing,
    is_tight,
    maximum_edge_packing,
    packing_polytope_vertices,
)
from tests.conftest import random_queries


class TestExtendedQuery:
    def test_triangle_half_packing(self):
        q = triangle_query()
        u = {"S1": 0.5, "S2": 0.5, "S3": 0.5}
        ext, weights = extended_query(q, u)
        # Lemma 3.13(a): tight packing AND tight cover.
        assert is_edge_packing(ext, weights)
        assert is_edge_cover(ext, weights)
        assert is_tight(ext, weights)
        # Zero slack: the unary atoms carry weight 0.
        assert all(
            weights[f"T_{v}"] == pytest.approx(0.0) for v in q.variables
        )

    def test_lemma_3_13_b_identity(self):
        # sum_j a_j u_j + sum_i u'_i = k.
        q = chain_query(3)
        u = {"S1": 1.0, "S2": 0.0, "S3": 0.0}
        ext, weights = extended_query(q, u)
        total = sum(
            weights[a.relation] * a.arity for a in ext.atoms
        )
        assert total == pytest.approx(q.num_variables)

    def test_star_packing_slack_goes_to_legs(self):
        q = star_query(2)
        u = {"S1": 1.0, "S2": 0.0}
        ext, weights = extended_query(q, u)
        assert weights["T_z"] == pytest.approx(0.0)
        assert weights["T_x1"] == pytest.approx(0.0)
        assert weights["T_x2"] == pytest.approx(1.0)
        assert is_tight(ext, weights)

    def test_rejects_non_packings(self):
        q = triangle_query()
        with pytest.raises(ValueError, match="packing"):
            extended_query(q, {"S1": 1.0, "S2": 1.0, "S3": 1.0})

    def test_name_collision_guard(self):
        from repro.core.query import Atom, ConjunctiveQuery

        q = ConjunctiveQuery((Atom("T_x", ("x",)), Atom("S", ("x", "y"))))
        with pytest.raises(ValueError, match="collision"):
            extended_query(q, {"T_x": 0.0, "S": 0.5})

    @given(random_queries(max_variables=4, max_atoms=4))
    @settings(max_examples=30, deadline=None)
    def test_extension_always_tight(self, q):
        u = maximum_edge_packing(q).weights
        ext, weights = extended_query(q, u)
        assert is_tight(ext, weights)
        assert is_edge_packing(ext, weights)
        assert is_edge_cover(ext, weights)

    @given(random_queries(max_variables=4, max_atoms=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_lemma_3_13_b_random_vertices(self, q, data):
        # The paper states the identity with a_j, assuming atoms bind
        # distinct variables (true for all its query families); the
        # generally-valid form counts distinct variables |vars(S_j)|,
        # which coincides with a_j in that setting.
        vertices = packing_polytope_vertices(q)
        u = data.draw(st.sampled_from(vertices))
        ext, weights = extended_query(q, u)
        total = sum(
            weights[a.relation] * len(a.variable_set) for a in ext.atoms
        )
        assert total == pytest.approx(q.num_variables, abs=1e-6)
