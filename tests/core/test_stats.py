"""Tests for cardinality/bit statistics."""

from __future__ import annotations

import pytest

from repro.core.families import chain_query, triangle_query
from repro.core.stats import Statistics, bits_per_value


class TestBitsPerValue:
    def test_powers_of_two(self):
        assert bits_per_value(2) == 1
        assert bits_per_value(1024) == 10

    def test_non_powers_round_up(self):
        assert bits_per_value(1000) == 10
        assert bits_per_value(3) == 2

    def test_degenerate_domain(self):
        assert bits_per_value(1) == 1
        with pytest.raises(ValueError):
            bits_per_value(0)


class TestStatistics:
    def test_bits_formula(self):
        q = chain_query(2)
        stats = Statistics(q, {"S1": 100, "S2": 200}, domain_size=1024)
        # M_j = a_j * m_j * log n = 2 * m * 10.
        assert stats.bits("S1") == 2 * 100 * 10
        assert stats.bits("S2") == 2 * 200 * 10
        assert stats.total_bits == 2 * 300 * 10
        assert stats.total_tuples == 300

    def test_uniform_constructor(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 50)
        assert stats.domain_size == 50
        assert all(stats.tuples(r) == 50 for r in q.relation_names)

    def test_missing_relation_rejected(self):
        q = chain_query(2)
        with pytest.raises(ValueError, match="missing"):
            Statistics(q, {"S1": 10}, domain_size=10)

    def test_negative_cardinality_rejected(self):
        q = chain_query(1)
        with pytest.raises(ValueError):
            Statistics(q, {"S1": -1}, domain_size=10)

    def test_scale(self):
        q = chain_query(1)
        stats = Statistics(q, {"S1": 100}, domain_size=10).scale(0.5)
        assert stats.tuples("S1") == 50

    def test_vectors(self):
        q = chain_query(2)
        stats = Statistics(q, {"S1": 1, "S2": 2}, domain_size=4)
        assert stats.tuples_vector() == {"S1": 1, "S2": 2}
        assert stats.bits_vector() == {"S1": 4.0, "S2": 8.0}

    def test_bits_per_tuple(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 16, domain_size=16)
        assert stats.bits_per_tuple("S1") == 2 * 4
