"""Tests for fractional edge packings / covers (paper Section 2.2, 3.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    star_query,
    triangle_query,
)
from repro.core.packing import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    is_edge_cover,
    is_edge_packing,
    is_tight,
    maximum_edge_packing,
    minimum_edge_cover,
    minimum_vertex_cover,
    packing_polytope_vertices,
    saturates,
    slack,
)
from repro.core.query import Atom, ConjunctiveQuery
from tests.conftest import random_queries


class TestWorkedExamples:
    def test_example_2_3_l3_packing(self):
        # (1, 0, 1) is a tight, optimal edge packing of L3 and tau* = 2.
        q = chain_query(3)
        u = {"S1": 1.0, "S2": 0.0, "S3": 1.0}
        assert is_edge_packing(q, u)
        assert is_tight(q, u)
        assert fractional_vertex_cover_number(q) == pytest.approx(2.0)

    def test_packing_cover_disconnect_examples(self):
        # q = S1(x,y), S2(y,z): tau* = 1, rho* = 2.
        q = ConjunctiveQuery((Atom("S1", ("x", "y")), Atom("S2", ("y", "z"))))
        assert fractional_vertex_cover_number(q) == pytest.approx(1.0)
        assert fractional_edge_cover_number(q) == pytest.approx(2.0)
        # q = S1(x), S2(x,y), S3(y): tau* = 2, rho* = 1.
        q2 = ConjunctiveQuery(
            (Atom("S1", ("x",)), Atom("S2", ("x", "y")), Atom("S3", ("y",)))
        )
        assert fractional_vertex_cover_number(q2) == pytest.approx(2.0)
        assert fractional_edge_cover_number(q2) == pytest.approx(1.0)


class TestTable2TauStar:
    """Table 2's tau* column."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8])
    def test_cycle(self, k):
        assert fractional_vertex_cover_number(cycle_query(k)) == pytest.approx(k / 2)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_star(self, k):
        assert fractional_vertex_cover_number(star_query(k)) == pytest.approx(1.0)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 8])
    def test_chain(self, k):
        expected = -(-k // 2)  # ceil(k/2)
        assert fractional_vertex_cover_number(chain_query(k)) == pytest.approx(expected)

    @pytest.mark.parametrize("k,m", [(3, 2), (4, 2), (4, 3), (5, 2)])
    def test_binom(self, k, m):
        assert fractional_vertex_cover_number(binom_query(k, m)) == pytest.approx(k / m)


class TestPolytopeVertices:
    def test_example_3_17_triangle_vertices(self):
        # pk(C3) has exactly five vertices.
        q = triangle_query()
        vertices = packing_polytope_vertices(q)
        as_tuples = {
            tuple(round(v[r], 6) for r in q.relation_names) for v in vertices
        }
        assert as_tuples == {
            (0.5, 0.5, 0.5),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 1.0),
            (0.0, 0.0, 0.0),
        }

    def test_l3_vertices_include_optimal(self):
        q = chain_query(3)
        vertices = packing_polytope_vertices(q)
        as_tuples = {
            tuple(round(v[r], 6) for r in q.relation_names) for v in vertices
        }
        assert (1.0, 0.0, 1.0) in as_tuples
        assert all(is_edge_packing(q, v) for v in vertices)

    def test_vertices_feasible_and_unique(self):
        q = binom_query(4, 2)
        vertices = packing_polytope_vertices(q)
        keys = {tuple(round(v[r], 9) for r in q.relation_names) for v in vertices}
        assert len(keys) == len(vertices)
        assert all(is_edge_packing(q, v) for v in vertices)

    def test_optimum_attained_at_vertex(self):
        for q in (triangle_query(), chain_query(4), star_query(3)):
            tau = fractional_vertex_cover_number(q)
            best = max(
                sum(v.values()) for v in packing_polytope_vertices(q)
            )
            assert best == pytest.approx(tau)

    def test_guard_on_large_queries(self):
        with pytest.raises(ValueError):
            packing_polytope_vertices(binom_query(6, 2), max_atoms=10)


class TestDuality:
    @given(random_queries())
    @settings(max_examples=40, deadline=None)
    def test_packing_equals_cover(self, q):
        packing = maximum_edge_packing(q)
        cover = minimum_vertex_cover(q)
        assert packing.total == pytest.approx(cover.total, abs=1e-6)

    @given(random_queries())
    @settings(max_examples=40, deadline=None)
    def test_optimal_solutions_feasible(self, q):
        packing = maximum_edge_packing(q)
        assert is_edge_packing(q, packing.weights)

    @given(random_queries())
    @settings(max_examples=30, deadline=None)
    def test_edge_cover_feasible(self, q):
        cover = minimum_edge_cover(q)
        assert is_edge_cover(q, cover.weights)


class TestPredicates:
    def test_tight_packing_is_tight_cover(self):
        # Section 2.2: tight packings and tight covers coincide.
        q = chain_query(3)
        u = {"S1": 1.0, "S2": 0.0, "S3": 1.0}
        assert is_tight(q, u)
        assert is_edge_cover(q, u)
        assert is_edge_packing(q, u)

    def test_saturation(self):
        q = star_query(2)
        u = {"S1": 1.0, "S2": 1.0}
        # z gets weight 2 >= 1 from both atoms; x1, x2 get 1 each.
        assert not is_edge_packing(q, u)  # z is over-packed
        assert saturates(q, u, {"z", "x1", "x2"})
        u2 = {"S1": 1.0, "S2": 0.0}
        assert saturates(q, u2, {"z", "x1"})
        assert not saturates(q, u2, {"x2"})

    def test_slack_matches_extended_query_weights(self):
        # Lemma 3.13: u'_i = 1 - sum_{j: x_i in S_j} u_j >= 0 for packings.
        q = triangle_query()
        u = {"S1": 0.5, "S2": 0.5, "S3": 0.5}
        s = slack(q, u)
        assert all(v == pytest.approx(0.0) for v in s.values())
        u2 = {"S1": 1.0, "S2": 0.0, "S3": 0.0}
        s2 = slack(q, u2)
        assert s2["x3"] == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        q = chain_query(2)
        assert not is_edge_packing(q, {"S1": -0.5, "S2": 0.0})
