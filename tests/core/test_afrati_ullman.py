"""Tests for the Afrati-Ullman total-load share optimization."""

from __future__ import annotations

import pytest

from repro.core.families import chain_query, simple_join_query, triangle_query
from repro.core.shares import afrati_ullman_share_exponents, share_exponents
from repro.core.stats import Statistics


class TestAfratiUllman:
    def test_equal_sizes_match_paper_objective(self):
        # With equal sizes the two objectives share the optimum
        # (symmetric shares for the triangle).
        q = triangle_query()
        stats = Statistics.uniform(q, 2**17, domain_size=2**20)
        au = afrati_ullman_share_exponents(q, stats, 64)
        bks = share_exponents(q, stats, 64)
        assert au.load_bits == pytest.approx(bks.load_bits, rel=1e-3)
        assert all(
            v == pytest.approx(1 / 3, abs=1e-3) for v in au.exponents.values()
        )

    def test_never_beats_max_load_lp(self):
        # Theorem 3.15: LP (10) is max-load optimal, so AU >= BKS.
        cases = [
            (triangle_query(), {"S1": 2**10, "S2": 2**17, "S3": 2**17}),
            (chain_query(3), {"S1": 2**10, "S2": 2**18, "S3": 2**18}),
            (simple_join_query(), {"S1": 2**12, "S2": 2**18}),
        ]
        for q, sizes in cases:
            stats = Statistics(q, sizes, 2**20)
            au = afrati_ullman_share_exponents(q, stats, 64)
            bks = share_exponents(q, stats, 64)
            assert au.load_bits >= bks.load_bits * (1 - 1e-6)

    def test_strict_separation_exists(self):
        # The L3 instance with a tiny S1: BKS broadcasts S1, AU spends
        # shares on its variables and pays ~8x on the max load.
        q = chain_query(3)
        stats = Statistics(q, {"S1": 2**10, "S2": 2**18, "S3": 2**18}, 2**20)
        au = afrati_ullman_share_exponents(q, stats, 64)
        bks = share_exponents(q, stats, 64)
        assert au.load_bits > 3.0 * bks.load_bits

    def test_exponents_form_distribution(self):
        q = triangle_query()
        stats = Statistics.uniform(q, 2**16, domain_size=2**20)
        au = afrati_ullman_share_exponents(q, stats, 32)
        assert sum(au.exponents.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v >= -1e-9 for v in au.exponents.values())

    def test_rejects_single_server(self):
        q = chain_query(2)
        stats = Statistics.uniform(q, 2**10, domain_size=2**12)
        with pytest.raises(ValueError):
            afrati_ullman_share_exponents(q, stats, 1)
