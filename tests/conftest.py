"""Shared pytest fixtures and hypothesis strategies.

The random-query strategy generates small full conjunctive queries
without self-joins (arities 1-3, up to 6 variables / 6 atoms), which is
the regime all of the paper's worked examples live in.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.query import Atom, ConjunctiveQuery


@st.composite
def random_queries(
    draw,
    max_variables: int = 6,
    max_atoms: int = 6,
    max_arity: int = 3,
    connected_only: bool = False,
):
    """Hypothesis strategy producing small valid conjunctive queries."""
    k = draw(st.integers(min_value=1, max_value=max_variables))
    variables = [f"x{i}" for i in range(k)]
    ell = draw(st.integers(min_value=1, max_value=max_atoms))
    atoms = []
    used: set[str] = set()
    for j in range(ell):
        arity = draw(st.integers(min_value=1, max_value=max_arity))
        vs = draw(
            st.lists(
                st.sampled_from(variables), min_size=arity, max_size=arity
            )
        )
        atoms.append(Atom(f"S{j}", tuple(vs)))
        used.update(vs)
    # Make sure every variable occurs somewhere (full query over k vars).
    missing = [v for v in variables if v not in used]
    for i, v in enumerate(missing):
        atoms.append(Atom(f"S{ell + i}", (v,)))
    query = ConjunctiveQuery(tuple(atoms))
    if connected_only and not query.is_connected:
        components = query.connected_components()
        query = components[0]
    return query


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xBEA3E)
