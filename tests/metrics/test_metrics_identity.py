"""Metrics collection must never perturb results.

Mirrors ``tests/trace/test_identity.py``: every engine must produce
bit-identical results (answers, per-round bits, drops) with metrics
collection on and off, across pool kinds and spill-backed storage --
and the registry's totals must reconcile *exactly* (float ``==``)
with the run's :class:`LoadReport`.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    matching_database,
    run_hypercube,
    star_query,
    triangle_query,
    zipf_database,
)
from repro.metrics import MetricsRegistry, collecting
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage.manager import StorageManager

ENGINES = ["hypercube", "skew-star", "skew-triangle", "multiround"]


def run_engine(name, pool=None, storage=None, **knobs):
    """One deterministic run of the named engine; returns its result."""
    if name == "hypercube":
        q = triangle_query()
        db = matching_database(q, m=120, n=480, seed=7)
        return run_hypercube(q, db, p=8, seed=3, pool=pool,
                             storage=storage, **knobs)
    if name == "skew-star":
        q = star_query(2)
        db = zipf_database(q, m=150, n=60, seed=11, skew=1.0)
        return run_star_skew(q, db, p=8, seed=5, pool=pool,
                             storage=storage, **knobs)
    if name == "skew-triangle":
        q = triangle_query()
        db = zipf_database(q, m=120, n=50, seed=13, skew=1.1)
        return run_triangle_skew(db, p=8, seed=9, pool=pool,
                                 storage=storage, **knobs)
    if name == "multiround":
        plan = chain_plan(4)
        db = matching_database(plan.query, m=120, n=480, seed=17)
        return run_plan(plan, db, p=8, seed=21, pool=pool,
                        storage=storage, **knobs)
    raise AssertionError(name)


def result_snapshot(result):
    """Everything bit-identity covers, in comparable form."""
    report = result.load_report
    return (
        set(result.answers),
        [dict(r.bits) for r in report.rounds],
        [dict(r.dropped_bits) for r in report.rounds],
        report.total_bits,
        report.max_load_bits,
    )


def run_with_metrics(name, **kwargs):
    reg = MetricsRegistry()
    with collecting(reg):
        result = run_engine(name, **kwargs)
    return result, reg


def assert_reconciles(reg, result):
    """Registry totals must equal the LoadReport exactly."""
    report = result.load_report
    assert reg.value("repro_sim_bits_total") == report.total_bits
    assert reg.value("repro_sim_dropped_bits_total") == report.dropped_bits
    assert reg.value("repro_sim_rounds_total") == float(report.num_rounds)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("pool", [None, "thread"])
def test_metrics_do_not_perturb_results(engine, pool):
    baseline = result_snapshot(run_engine(engine, pool=pool))
    observed, reg = run_with_metrics(engine, pool=pool)
    assert result_snapshot(observed) == baseline
    assert_reconciles(reg, observed)


@pytest.mark.parametrize("engine", ENGINES)
def test_metrics_identity_with_storage(engine, tmp_path):
    with StorageManager(root=tmp_path / "off", chunk_rows=64) as storage:
        baseline = result_snapshot(run_engine(engine, storage=storage))
    with StorageManager(root=tmp_path / "on", chunk_rows=64) as storage:
        observed, reg = run_with_metrics(engine, storage=storage)
        # Spill counters reconcile with the manager's own accounting.
        counters = storage.io_counters()
        assert reg.value("repro_spill_bytes_written_total") == float(
            counters["bytes_written"]
        )
        assert reg.value("repro_spill_writes_total") == float(
            counters["files_created"]
        )
    assert result_snapshot(observed) == baseline
    assert_reconciles(reg, observed)


def test_metrics_identity_with_process_pool():
    baseline = result_snapshot(run_engine("hypercube", pool="process"))
    observed, reg = run_with_metrics("hypercube", pool="process")
    assert result_snapshot(observed) == baseline
    assert_reconciles(reg, observed)
    # Worker task timings replay in the parent across the process hop.
    assert reg.total("repro_pool_tasks_total") > 0


def test_metrics_identity_under_capacity_drops():
    knobs = dict(capacity_bits=1_200.0, on_overflow="drop")
    baseline = result_snapshot(run_engine("hypercube", **knobs))
    observed, reg = run_with_metrics("hypercube", **knobs)
    assert result_snapshot(observed) == baseline
    assert observed.load_report.dropped_bits > 0
    assert_reconciles(reg, observed)


def test_metrics_overhead_stays_small():
    """Collected wall time <= 1.1x uncollected at n = 10**5 (min of 3).

    The disabled path is one ``is None`` check per hook, and even the
    enabled path only bumps in-process counters -- so the full enabled
    run must stay within 10% of the plain run (plus timer noise).
    """
    q = triangle_query()
    db = matching_database(q, m=25_000, n=100_000, seed=0)

    def best_of(collected, repeats=3):
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            if collected:
                with collecting():
                    run_hypercube(q, db, p=8, skip_local_join=True)
            else:
                run_hypercube(q, db, p=8, skip_local_join=True)
            samples.append(time.perf_counter() - start)
        return min(samples)

    best_of(collected=False, repeats=1)  # warm caches before timing
    plain = best_of(collected=False)
    collected = best_of(collected=True)
    assert collected <= plain * 1.1 + 0.02
