"""Unit behavior of the registry: instruments, snapshots, merging."""

from __future__ import annotations

import pytest

from repro.metrics import CalibrationTracker, MetricsRegistry, collecting
from repro.metrics.registry import (
    BITS_EDGES,
    DEFAULT_EDGES,
    ROUNDS_EDGES,
    SECONDS_EDGES,
    active_metrics,
    default_edges,
)


class TestInstruments:
    def test_counter_adds_and_rejects_negative(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_sim_bits_total")
        counter.inc(3.0)
        counter.inc()
        assert reg.value("repro_sim_bits_total") == 4.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_identity_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("repro_pool_tasks_total", kind="thread").inc(2)
        reg.counter("repro_pool_tasks_total", kind="serial").inc(5)
        assert reg.counter("repro_pool_tasks_total", kind="thread") is (
            reg.counter("repro_pool_tasks_total", kind="thread")
        )
        assert reg.value("repro_pool_tasks_total", kind="thread") == 2.0
        assert reg.total("repro_pool_tasks_total") == 7.0

    def test_gauge_tracks_running_max(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("repro_pool_queue_depth", kind="thread")
        gauge.set(4)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.max == 9.0

    def test_histogram_buckets_sum_and_overflow(self):
        reg = MetricsRegistry()
        hist = reg.histogram("custom", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert hist.count == 4
        assert hist.sum == 555.5
        assert sum(hist.counts) == hist.count

    def test_histogram_rejects_bad_edges(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", edges=(3.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", edges=())

    def test_histogram_percentile_is_bucketed(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", edges=(0.001, 0.01, 0.1))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.05)
        assert hist.percentile(50) == 0.01
        assert hist.percentile(100) == 0.1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError):
            reg.gauge("thing_total")

    def test_default_edges_by_suffix(self):
        assert default_edges("repro_run_seconds") == SECONDS_EDGES
        assert default_edges("repro_run_load_bits") == BITS_EDGES
        assert default_edges("repro_spill_write_bytes") == BITS_EDGES
        assert default_edges("repro_run_rounds") == ROUNDS_EDGES
        assert default_edges("whatever") == DEFAULT_EDGES


class TestSnapshotMerge:
    def test_snapshot_roundtrips_through_merge(self):
        a = MetricsRegistry()
        a.counter("c_total").inc(7)
        a.gauge("g").set(3)
        a.histogram("h_rounds").observe(2)
        a.calibration.observe("hypercube", 1.5)

        b = MetricsRegistry()
        b.counter("c_total").inc(5)
        b.gauge("g").set(1)
        b.gauge("g").set(9)  # max 9, value 9
        b.merge(a.snapshot())

        assert b.value("c_total") == 12.0
        # Gauge: merged snapshot's value wins, max is the running max.
        assert b.value("g") == 3.0
        assert b.gauge("g").max == 9.0
        assert b.histogram("h_rounds").count == 1
        assert b.calibration.snapshot()["hypercube"]["count"] == 1

    def test_merge_is_associative_for_counters(self):
        parts = []
        for amount in (1.0, 10.0, 100.0):
            reg = MetricsRegistry()
            reg.counter("c_total").inc(amount)
            parts.append(reg.snapshot())
        left = MetricsRegistry()
        for part in parts:
            left.merge(part)
        right = MetricsRegistry()
        for part in reversed(parts):
            right.merge(part)
        assert left.value("c_total") == right.value("c_total") == 111.0

    def test_merge_rejects_mismatched_histogram_edges(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("h", edges=(5.0, 6.0))
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.calibration.observe("s", 1.0)
        reg.reset()
        assert len(reg) == 0
        assert reg.calibration.snapshot() == {}

    def test_snapshot_is_sorted_and_schema_tagged(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total").inc()
        snap = reg.snapshot()
        assert snap["schema"] == "repro.metrics/1"
        names = [row["name"] for row in snap["metrics"]]
        assert names == sorted(names)


class TestCalibration:
    def test_welford_matches_direct_statistics(self):
        tracker = CalibrationTracker()
        ratios = [0.5, 1.0, 1.5, 2.0, 0.25]
        for ratio in ratios:
            tracker.observe("skew-star", ratio)
        stats = tracker.stats()["skew-star"]
        mean = sum(ratios) / len(ratios)
        variance = sum((r - mean) ** 2 for r in ratios) / (len(ratios) - 1)
        assert stats["count"] == len(ratios)
        assert stats["mean"] == pytest.approx(mean)
        assert stats["stddev"] == pytest.approx(variance ** 0.5)
        assert stats["min"] == 0.25
        assert stats["max"] == 2.0
        assert stats["last"] == 0.25

    def test_parallel_merge_equals_sequential(self):
        ratios = [0.8, 1.1, 0.9, 1.4, 1.0, 0.7, 1.2]
        sequential = CalibrationTracker()
        for ratio in ratios:
            sequential.observe("s", ratio)
        half_a, half_b = CalibrationTracker(), CalibrationTracker()
        for ratio in ratios[:3]:
            half_a.observe("s", ratio)
        for ratio in ratios[3:]:
            half_b.observe("s", ratio)
        half_a.merge(half_b.snapshot())
        merged = half_a.stats()["s"]
        expected = sequential.stats()["s"]
        assert merged["count"] == expected["count"]
        assert merged["mean"] == pytest.approx(expected["mean"])
        assert merged["stddev"] == pytest.approx(expected["stddev"])
        assert merged["min"] == expected["min"]
        assert merged["max"] == expected["max"]


class TestActivation:
    def test_off_by_default(self):
        assert active_metrics() is None

    def test_collecting_installs_and_restores(self):
        with collecting() as outer:
            assert active_metrics() is outer
            with collecting() as inner:
                assert active_metrics() is inner
            assert active_metrics() is outer
        assert active_metrics() is None

    def test_collecting_accepts_existing_registry(self):
        reg = MetricsRegistry()
        with collecting(reg) as installed:
            assert installed is reg
