"""Session-level metrics: aggregation across runs, pools, processes."""

from __future__ import annotations

import pytest

from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.metrics import global_metrics
from repro.session import Job, Session


def workload():
    tq = triangle_query()
    sq = star_query(2)
    return [
        Job(tq, matching_database(tq, m=120, n=480, seed=0), label="tri"),
        Job(sq, zipf_database(sq, m=150, n=60, skew=1.0, seed=1),
            strategy="skew-star", label="star"),
        Job(tq, matching_database(tq, m=100, n=400, seed=2), label="tri2"),
    ]


def registry_totals(reg):
    """The order-independent portion of a registry, for comparison."""
    snap = reg.snapshot()
    totals = {}
    for row in snap["metrics"]:
        key = (row["name"], tuple(sorted(row.get("labels", {}).items())))
        if row["type"] == "counter":
            totals[key] = row["value"]
        elif row["type"] == "histogram":
            totals[key] = row["count"]  # timings vary; counts must not
    return totals


class TestSingleRun:
    def test_disabled_by_default(self):
        with Session(p=4, seed=0) as session:
            assert session.metrics is None
            q = triangle_query()
            session.run(q, matching_database(q, m=60, n=240, seed=0))
            assert session.metrics is None

    def test_run_merges_into_session_and_global(self):
        before = global_metrics().value("repro_sim_bits_total")
        with Session(p=4, seed=0, metrics=True) as session:
            q = triangle_query()
            result = session.run(q, matching_database(q, m=60, n=240, seed=0))
            report = result.load_report
            assert session.metrics.value("repro_sim_bits_total") == (
                report.total_bits
            )
            assert session.metrics.value(
                "repro_runs_total", strategy=result.strategy
            ) == 1.0
        after = global_metrics().value("repro_sim_bits_total")
        assert after == before + report.total_bits

    def test_calibration_tracks_prediction_ratio(self):
        with Session(p=8, seed=0, metrics=True) as session:
            q = triangle_query()
            db = matching_database(q, m=120, n=480, seed=0)
            session.run(q, db)
            session.run(q, db)
            stats = session.metrics.calibration.stats()
            assert stats, "calibration should have at least one strategy"
            (strategy, row), = stats.items()
            assert row["count"] == 2
            assert row["mean"] > 0.0


class TestRunMany:
    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    def test_pool_kinds_aggregate_identically(self, pool):
        with Session(p=8, seed=42, metrics=True) as session:
            session.run_many(workload(), max_workers=2, pool="serial")
            baseline = registry_totals(session.metrics)
        with Session(p=8, seed=42, metrics=True) as session:
            session.run_many(workload(), max_workers=2, pool=pool)
            observed = registry_totals(session.metrics)
        # Drop pool-task series: kind labels legitimately differ by
        # pool, and process mode runs tasks in throwaway workers.
        def strip(totals):
            return {
                k: v for k, v in totals.items()
                if not k[0].startswith("repro_pool_")
            }

        assert strip(observed) == strip(baseline)

    def test_process_pool_ships_worker_deltas(self):
        with Session(p=8, seed=42, metrics=True) as session:
            results = session.run_many(workload(), max_workers=2,
                                       pool="process")
            expected = sum(r.load_report.total_bits for r in results)
            assert session.metrics.value("repro_sim_bits_total") == expected
            assert session.metrics.total("repro_runs_total") == float(
                len(results)
            )
            # Calibration rode along with the pickled deltas.
            assert session.metrics.calibration.stats()

    def test_progress_lines(self, capsys):
        with Session(p=4, seed=0) as session:
            q = triangle_query()
            jobs = [
                Job(q, matching_database(q, m=40, n=160, seed=i), label=f"j{i}")
                for i in range(3)
            ]
            session.run_many(jobs, max_workers=1, metrics_every=2)
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("[repro.metrics]")
        ]
        assert len(lines) == 2  # after job 2, and the end of batch
        assert "2/3 job(s) done" in lines[0]
        assert "3/3 job(s) done" in lines[1]

    def test_metrics_every_validation(self):
        with Session(p=4, seed=0) as session:
            q = triangle_query()
            job = Job(q, matching_database(q, m=40, n=160, seed=0))
            with pytest.raises(ValueError):
                session.run_many([job], metrics_every=0)
