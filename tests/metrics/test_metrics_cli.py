"""Exposition and the ``python -m repro metrics`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.metrics import (
    MetricsRegistry,
    diff_snapshots,
    load_snapshot,
    render_diff,
    render_text,
    write_snapshot,
)
from repro.metrics.cli import render_snapshot_path


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("repro_sim_bits_total").inc(1024.0)
    reg.counter("repro_pool_tasks_total", kind="thread").inc(6)
    reg.gauge("repro_pool_queue_depth", kind="thread").set(2)
    reg.histogram("repro_run_seconds", strategy="hypercube").observe(0.02)
    reg.calibration.observe("hypercube", 1.25)
    return reg


class TestRenderText:
    def test_prometheus_shape(self):
        text = render_text(sample_registry().snapshot())
        assert "# TYPE repro_sim_bits_total counter" in text
        assert "repro_sim_bits_total 1024" in text
        assert 'repro_pool_tasks_total{kind="thread"} 6' in text
        # Histograms expose cumulative buckets plus sum/count.
        assert 'le="+Inf"' in text
        assert "repro_run_seconds_count" in text
        assert "repro_run_seconds_sum" in text
        # Calibration renders as synthetic gauges.
        assert 'repro_calibration_ratio{' in text
        assert 'stat="mean"' in text

    def test_bucket_counts_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_rounds")
        for value in (1, 1, 2, 16):
            hist.observe(value)
        text = render_text(reg.snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_rounds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf bucket sees everything


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        snap = sample_registry().snapshot()
        path = write_snapshot(snap, tmp_path / "m.json")
        assert load_snapshot(path) == json.loads(json.dumps(snap))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"benchmarks": []}')
        with pytest.raises(ValueError, match="not a repro.metrics snapshot"):
            load_snapshot(path)


class TestDiff:
    def test_quiet_interval_is_empty(self):
        snap = sample_registry().snapshot()
        assert diff_snapshots(snap, snap) == []
        assert "no change" in render_diff(snap, snap)

    def test_counter_and_histogram_deltas(self):
        reg = sample_registry()
        before = reg.snapshot()
        reg.counter("repro_sim_bits_total").inc(512.0)
        reg.histogram("repro_run_seconds", strategy="hypercube").observe(0.04)
        after = reg.snapshot()
        rows = {row["name"]: row for row in diff_snapshots(before, after)}
        assert rows["repro_sim_bits_total"]["delta"] == 512.0
        assert rows["repro_run_seconds"]["delta_count"] == 1
        text = render_diff(before, after)
        assert "repro_sim_bits_total: +512" in text

    def test_removed_series_is_flagged(self):
        before = sample_registry().snapshot()
        after = MetricsRegistry().snapshot()
        rows = diff_snapshots(before, after)
        assert rows and all(row.get("removed") for row in rows)


class TestCommand:
    def test_render_snapshot_path_modes(self, tmp_path):
        reg = sample_registry()
        path = str(write_snapshot(reg.snapshot(), tmp_path / "m.json"))
        assert "repro_sim_bits_total 1024" in render_snapshot_path(path)
        as_json = json.loads(render_snapshot_path(path, as_json=True))
        assert as_json["schema"] == "repro.metrics/1"
        reg.counter("repro_sim_bits_total").inc(1.0)
        other = str(write_snapshot(reg.snapshot(), tmp_path / "n.json"))
        assert "+1" in render_snapshot_path(path, diff=other)

    def test_metrics_subcommand(self, tmp_path, capsys):
        path = str(write_snapshot(sample_registry().snapshot(),
                                  tmp_path / "m.json"))
        main(["metrics", path])
        assert "repro_sim_bits_total 1024" in capsys.readouterr().out

    def test_metrics_subcommand_rejects_bad_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["metrics", str(path)])

    def test_run_metrics_smoke(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main([
            "run", "triangle", "--m", "60", "--n", "240", "--p", "4",
            "--repeat", "2", "--metrics-out", str(out),
        ])
        stdout = capsys.readouterr().out
        # The run self-checked its registry against the LoadReports and
        # printed the exposition inline.
        assert "repro_sim_bits_total" in stdout
        assert "repro_runs_total" in stdout
        snap = load_snapshot(out)
        assert snap["calibration"]
