"""``capacity_bits`` threading into the skew-aware executors.

The star and triangle algorithms enforce the same per-server per-round
cap ``L`` that ``run_hypercube`` and ``run_plan`` already support:
``fail`` aborts with :class:`LoadExceededError`, ``drop`` truncates --
and because every part (light grids, per-hitter blocks, case-1/case-2
blocks) routes in canonical sorted order, the truncated per-server
prefixes (and therefore the surviving answers) are identical under the
tuple and columnar backends.
"""

from __future__ import annotations

import pytest

from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.mpc.simulator import LoadExceededError
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew


def assert_reports_identical(a, b):
    assert a.report.num_rounds == b.report.num_rounds
    for round_a, round_b in zip(a.report.rounds, b.report.rounds):
        assert round_a.bits == round_b.bits
        assert round_a.tuples == round_b.tuples
        assert round_a.dropped_bits == round_b.dropped_bits
    assert a.answers == b.answers


class TestStarCapacity:
    def query_db(self, seed=0):
        q = star_query(2)
        db = zipf_database(q, m=300, n=120, skew=1.0, seed=seed)
        return q, db

    def test_uncapped_runs_unchanged(self):
        q, db = self.query_db()
        free = run_star_skew(q, db, p=8, seed=0)
        capped = run_star_skew(q, db, p=8, seed=0, capacity_bits=10**9)
        assert capped.answers == free.answers
        assert capped.report.total_bits == free.report.total_bits
        assert capped.report.dropped_bits == 0

    def test_fail_mode_raises(self):
        q, db = self.query_db(seed=1)
        for backend in ("tuples", "numpy"):
            with pytest.raises(LoadExceededError):
                run_star_skew(
                    q, db, p=8, seed=0, backend=backend, capacity_bits=60.0
                )

    def test_rejects_bad_mode(self):
        q, db = self.query_db(seed=2)
        with pytest.raises(ValueError, match="on_overflow"):
            run_star_skew(q, db, p=8, on_overflow="explode")

    @pytest.mark.parametrize("capacity", [400.0, 1500.0])
    def test_truncation_identical_across_backends(self, capacity):
        # The satellite's acceptance (the multiround test_capacity
        # pattern): a binding cap drops the same tuples under both
        # backends -- same per-server bits, dropped bits, answers.
        q, db = self.query_db(seed=3)
        tuples_run = run_star_skew(
            q, db, p=8, seed=1, backend="tuples",
            capacity_bits=capacity, on_overflow="drop",
        )
        arrays_run = run_star_skew(
            q, db, p=8, seed=1, backend="numpy",
            capacity_bits=capacity, on_overflow="drop",
        )
        assert tuples_run.report.dropped_bits > 0
        assert_reports_identical(tuples_run, arrays_run)

    def test_dropped_tuples_shrink_answers(self):
        q, db = self.query_db(seed=4)
        free = run_star_skew(q, db, p=8, seed=0)
        capacity = 0.5 * free.report.max_load_bits
        capped = run_star_skew(
            q, db, p=8, seed=0, capacity_bits=capacity, on_overflow="drop"
        )
        assert capped.report.dropped_bits > 0
        assert capped.answers.issubset(free.answers)


class TestTriangleCapacity:
    def db(self, seed=0):
        return zipf_database(
            triangle_query(), m=250, n=60, skew=1.1, seed=seed
        )

    def test_uncapped_runs_unchanged(self):
        db = self.db()
        free = run_triangle_skew(db, p=8, seed=0)
        capped = run_triangle_skew(db, p=8, seed=0, capacity_bits=10**9)
        assert capped.answers == free.answers
        assert capped.report.total_bits == free.report.total_bits
        assert capped.report.dropped_bits == 0

    def test_fail_mode_raises(self):
        db = self.db(seed=1)
        for backend in ("tuples", "numpy"):
            with pytest.raises(LoadExceededError):
                run_triangle_skew(
                    db, p=8, seed=0, backend=backend, capacity_bits=60.0
                )

    def test_rejects_bad_mode(self):
        db = self.db(seed=2)
        with pytest.raises(ValueError, match="on_overflow"):
            run_triangle_skew(db, p=8, on_overflow="explode")

    @pytest.mark.parametrize("capacity", [600.0, 2500.0])
    def test_truncation_identical_across_backends(self, capacity):
        db = self.db(seed=3)
        tuples_run = run_triangle_skew(
            db, p=8, seed=1, backend="tuples",
            capacity_bits=capacity, on_overflow="drop",
        )
        arrays_run = run_triangle_skew(
            db, p=8, seed=1, backend="numpy",
            capacity_bits=capacity, on_overflow="drop",
        )
        assert tuples_run.report.dropped_bits > 0
        assert_reports_identical(tuples_run, arrays_run)

    def test_matching_data_uncapped_equals_capped_loosely(self):
        # A skew-free instance under a generous cap must not truncate.
        db = matching_database(triangle_query(), m=120, n=480, seed=5)
        free = run_triangle_skew(db, p=8, seed=0)
        capped = run_triangle_skew(
            db, p=8, seed=0,
            capacity_bits=free.report.max_load_bits + 1.0,
            on_overflow="drop",
        )
        assert capped.report.dropped_bits == 0
        assert capped.answers == free.answers
