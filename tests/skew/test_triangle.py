"""Tests for the Section 4.2.2 skew-aware triangle algorithm."""

from __future__ import annotations

import pytest

from repro.core.families import triangle_query
from repro.data.generators import (
    matching_database,
    random_graph_edges,
    triangle_database_from_edges,
    uniform_database,
    zipf_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.skew.triangle import run_triangle_skew, triangle_skew_load_bound


def hub_graph_db(hub_degree=400, path_edges=100):
    """Hub vertex 0 with high degree; some leaf-leaf edges for triangles."""
    edges = {(0, v) for v in range(1, hub_degree + 1)}
    edges |= {(v, v + 1) for v in range(1, path_edges + 1)}
    return triangle_database_from_edges(edges, hub_degree + 2)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        edges = random_graph_edges(60, 250, seed=seed)
        db = triangle_database_from_edges(edges, 60)
        result = run_triangle_skew(db, p=8, seed=seed)
        assert result.answers == evaluate(triangle_query(), db)

    @pytest.mark.parametrize("seed", range(2))
    def test_zipf_relations(self, seed):
        q = triangle_query()
        db = zipf_database(q, m=200, n=50, skew=1.1, seed=seed)
        result = run_triangle_skew(db, p=8, seed=seed)
        assert result.answers == evaluate(q, db)

    def test_hub_graph(self):
        db = hub_graph_db()
        result = run_triangle_skew(db, p=27, seed=1)
        truth = evaluate(triangle_query(), db)
        assert len(truth) == 600  # 100 leaf edges x 6 orientations
        assert result.answers == truth

    def test_matching_instance_no_hitters(self):
        q = triangle_query()
        db = matching_database(q, m=60, n=300, seed=3)
        result = run_triangle_skew(db, p=8, seed=3)
        assert result.answers == evaluate(q, db)
        assert all(not s for s in result.heavy2.values())

    def test_two_heavy_variables_case1(self):
        # Complete bipartite-ish core: many values heavy in two vars.
        edges = {(u, v) for u in range(6) for v in range(6, 46)}
        edges |= {(u, w) for u in range(6) for w in range(46, 52)}
        edges |= {(6, 46)}
        db = triangle_database_from_edges(edges, 60)
        result = run_triangle_skew(db, p=8, seed=4)
        assert result.answers == evaluate(triangle_query(), db)

    def test_uniform_random_relations(self):
        q = triangle_query()
        db = uniform_database(q, m=120, n=30, seed=5)
        result = run_triangle_skew(db, p=8, seed=5)
        assert result.answers == evaluate(q, db)

    def test_rejects_small_p(self):
        db = hub_graph_db(20, 4)
        with pytest.raises(ValueError):
            run_triangle_skew(db, p=1)


class TestLoads:
    def test_beats_vanilla_hc_on_hub_graph(self):
        db = hub_graph_db()
        p = 27
        skew_aware = run_triangle_skew(db, p=p, seed=1)
        vanilla = run_hypercube(triangle_query(), db, p, seed=1)
        assert skew_aware.answers == vanilla.answers
        assert vanilla.max_load_bits >= 3.0 * skew_aware.max_load_bits

    def test_load_within_constant_of_formula(self):
        db = hub_graph_db()
        p = 27
        result = run_triangle_skew(db, p=p, seed=1)
        assert result.max_load_bits <= 4.0 * result.predicted_load_bits

    def test_servers_used_is_theta_p(self):
        db = hub_graph_db()
        p = 27
        result = run_triangle_skew(db, p=p, seed=1)
        # 4p fixed blocks + per-hitter grids; hitters are O(p^{1/3}).
        assert result.servers_used <= 10 * p

    def test_bound_reduces_to_hc_without_skew(self):
        q = triangle_query()
        db = matching_database(q, m=64, n=512, seed=6)
        stats = db.statistics(q)
        bound = triangle_skew_load_bound(db, 8)
        assert bound == pytest.approx(stats.bits("S1") / 4.0)  # M / p^{2/3}

    def test_bound_grows_with_skew(self):
        light = triangle_skew_load_bound(
            matching_database(triangle_query(), m=500, n=2000, seed=7), 64
        )
        heavy = triangle_skew_load_bound(hub_graph_db(500, 100), 64)
        assert heavy > light


class TestPrecomputedHitters:
    """``hitters=`` parity: precomputed statistics skip the scans."""

    def _hitters(self, db, p):
        from repro.planner.statistics import DataStatistics

        return DataStatistics.from_database(triangle_query(), db, p).hitters

    @pytest.mark.parametrize("seed", range(2))
    def test_bit_identical_to_in_place_detection(self, seed):
        db = zipf_database(triangle_query(), m=220, n=55, skew=1.1, seed=seed)
        p = 8
        scanned = run_triangle_skew(db, p=p, seed=seed)
        precomputed = run_triangle_skew(
            db, p=p, seed=seed, hitters=self._hitters(db, p)
        )
        assert precomputed.answers == scanned.answers
        assert precomputed.heavy1 == scanned.heavy1
        assert precomputed.heavy2 == scanned.heavy2
        for round_a, round_b in zip(
            precomputed.report.rounds, scanned.report.rounds
        ):
            assert round_a.bits == round_b.bits

    def test_hub_graph_identical(self):
        db = hub_graph_db()
        p = 27
        scanned = run_triangle_skew(db, p=p, seed=1)
        precomputed = run_triangle_skew(
            db, p=p, seed=1, hitters=self._hitters(db, p)
        )
        assert precomputed.answers == scanned.answers
        assert precomputed.max_load_bits == scanned.max_load_bits
        assert precomputed.servers_used == scanned.servers_used

    def test_missing_variable_rejected(self):
        db = hub_graph_db(20, 4)
        hitters = dict(self._hitters(db, 8))
        del hitters["x2"]
        with pytest.raises(ValueError, match="missing triangle variable"):
            run_triangle_skew(db, p=8, hitters=hitters)

    def test_mislabeled_variable_rejected(self):
        db = hub_graph_db(20, 4)
        hitters = dict(self._hitters(db, 8))
        hitters["x1"], hitters["x2"] = hitters["x2"], hitters["x1"]
        with pytest.raises(ValueError, match="describe"):
            run_triangle_skew(db, p=8, hitters=hitters)
