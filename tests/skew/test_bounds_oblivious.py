"""Tests for skew lower bounds (Thm 4.4) and the skew-oblivious HC."""

from __future__ import annotations

import pytest

from repro.core.families import simple_join_query, star_query, triangle_query
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.skew.bounds import (
    bound_is_stronger_than_skew_free,
    saturating_vertices,
    skewed_lower_bound,
    star_skew_lower_bound,
    uniform_frequencies,
    zipf_frequencies,
)
from repro.skew.oblivious import run_skew_oblivious_hypercube


class TestStarLowerBound:
    def test_single_hitter_dominates(self):
        # One hitter with everything: bound ~ (prod_j M_j(h) / p)^{1/l}.
        value_bits = 10
        freqs = {"S1": {0: 100}, "S2": {0: 100}}
        p = 16
        bound = star_skew_lower_bound(freqs, value_bits, p, with_constant=False)
        expected = ((2 * 100 * value_bits) ** 2 / p) ** 0.5
        assert bound == pytest.approx(expected)

    def test_uniform_degrees_recover_m_over_p(self):
        # p hitters of frequency m/p each: the singleton subsets give
        # sum_h M_j(h)/p = M_j/p.
        value_bits = 10
        m, p = 1600, 16
        freqs = {
            "S1": uniform_frequencies(m, p),
            "S2": uniform_frequencies(m, p),
        }
        bound = star_skew_lower_bound(freqs, value_bits, p, with_constant=False)
        assert bound >= 2 * m * value_bits / p - 1e-6

    def test_skew_raises_bound(self):
        value_bits = 10
        m, p = 1600, 16
        flat = star_skew_lower_bound(
            {"S1": uniform_frequencies(m, p), "S2": uniform_frequencies(m, p)},
            value_bits, p, with_constant=False,
        )
        skewed = star_skew_lower_bound(
            {"S1": {0: m}, "S2": {0: m}}, value_bits, p, with_constant=False
        )
        assert bound_is_stronger_than_skew_free(skewed, flat)
        assert skewed > flat

    def test_constant_factor(self):
        freqs = {"S1": {0: 10}, "S2": {0: 10}}
        with_c = star_skew_lower_bound(freqs, 8, 4, with_constant=True)
        without = star_skew_lower_bound(freqs, 8, 4, with_constant=False)
        assert with_c == pytest.approx(without / 8.0)

    def test_zipf_frequency_helper(self):
        freqs = zipf_frequencies(1000, 20, skew=1.0)
        assert len(freqs) == 20
        assert freqs[0] > freqs[19]
        assert sum(freqs.values()) == pytest.approx(1000, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            star_skew_lower_bound({}, 8, 4)
        with pytest.raises(ValueError):
            uniform_frequencies(10, 0)


class TestGeneralSkewBound:
    def test_star_case_matches_specialized(self):
        q = star_query(2)
        freqs = {"S1": {0: 100, 1: 20}, "S2": {0: 80, 1: 10}}
        general = skewed_lower_bound(
            q, "z", freqs, value_bits=10, p=16, with_constant=False
        )
        special = star_skew_lower_bound(freqs, 10, 16, with_constant=False)
        assert general == pytest.approx(special, rel=1e-9)

    def test_saturating_vertices_star(self):
        # For T_2, the z-saturating vertices are the three non-zero 0/1
        # vectors.
        q = star_query(2)
        sats = saturating_vertices(q, {"z"})
        as_tuples = {
            (round(u["S1"], 6), round(u["S2"], 6)) for u in sats
        }
        assert as_tuples == {(1.0, 0.0), (0.0, 1.0), (1.0, 1.0)}

    def test_triangle_skew_bound_positive(self):
        q = triangle_query()
        freqs = {
            "S1": {0: 50, 1: 5},
            "S2": {0: 40, 1: 5},
            "S3": {0: 30, 1: 5},
        }
        bound = skewed_lower_bound(
            q, "x1", freqs, value_bits=10, p=8, with_constant=False
        )
        assert bound > 0

    def test_validation(self):
        q = star_query(2)
        with pytest.raises(ValueError, match="missing"):
            skewed_lower_bound(q, "z", {"S1": {0: 1}}, 8, 4)
        with pytest.raises(ValueError, match="no atom"):
            skewed_lower_bound(
                q, "nope", {"S1": {0: 1}, "S2": {0: 1}}, 8, 4
            )


class TestSkewObliviousHC:
    def test_correctness(self):
        q = simple_join_query()
        db = planted_heavy_hitter_database(q, 100, 1000, "z", 1.0, 3, seed=1)
        result = run_skew_oblivious_hypercube(q, db, p=27, seed=1)
        assert result.answers == evaluate(q, db)

    def test_balanced_shares_for_join(self):
        q = simple_join_query()
        db = matching_database(q, m=64, n=512, seed=2)
        result = run_skew_oblivious_hypercube(q, db, p=27, seed=2)
        assert result.shares == {"x": 3, "y": 3, "z": 3}

    def test_beats_vanilla_hash_join_under_skew(self):
        # Example 4.1 versus the LP (18) shares: M/p^{1/3} beats M.
        q = simple_join_query()
        m, p = 540, 27
        db = planted_heavy_hitter_database(q, m, 5000, "z", 1.0, 3, seed=3)
        stats = db.statistics(q)
        oblivious = run_skew_oblivious_hypercube(q, db, p, seed=3)
        vanilla = run_hypercube(q, db, p, exponents={"z": 1.0}, seed=3)
        assert oblivious.answers == vanilla.answers
        assert vanilla.max_load_bits >= stats.bits("S1")
        assert oblivious.max_load_bits <= vanilla.max_load_bits / 2.0

    def test_oblivious_load_near_m_over_cuberoot_p(self):
        q = simple_join_query()
        m, p = 540, 27
        db = planted_heavy_hitter_database(q, m, 5000, "z", 1.0, 3, seed=4)
        stats = db.statistics(q)
        result = run_skew_oblivious_hypercube(q, db, p, seed=4)
        target = stats.bits("S1") / p ** (1 / 3)
        assert result.max_load_bits <= 3.0 * target
