"""Tests for the Section 4.2.1 star-query skew algorithm."""

from __future__ import annotations

import pytest

from repro.core.families import chain_query, star_query
from repro.data.generators import (
    degree_sequence_database,
    matching_database,
    zipf_database,
)
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.skew.star import run_star_skew, star_skew_load_bound, _star_center


class TestValidation:
    def test_center_detection(self):
        assert _star_center(star_query(3)) == "z"

    def test_rejects_non_star(self):
        with pytest.raises(ValueError, match="shared"):
            _star_center(chain_query(3))

    def test_rejects_small_p(self):
        q = star_query(2)
        db = degree_sequence_database(q, "z", {"S1": {0: 2}, "S2": {0: 2}}, 20, 0)
        with pytest.raises(ValueError):
            run_star_skew(q, db, p=1)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_degree_sequence_instances(self, k):
        q = star_query(k)
        freqs = {
            f"S{j}": {0: 30 + j, j: 5, 10 + j: 1} for j in range(1, k + 1)
        }
        db = degree_sequence_database(q, "z", freqs, 500, seed=k)
        result = run_star_skew(q, db, p=8, seed=k)
        assert result.answers == evaluate(q, db)

    @pytest.mark.parametrize("seed", range(3))
    def test_zipf_instances(self, seed):
        q = star_query(2)
        db = zipf_database(q, m=150, n=60, skew=1.4, seed=seed)
        result = run_star_skew(q, db, p=8, seed=seed)
        assert result.answers == evaluate(q, db)

    def test_skew_free_instances(self):
        # With no heavy hitters the algorithm degenerates to the light
        # path (plain z-hashing) and still matches the truth.
        q = star_query(2)
        db = matching_database(q, m=50, n=400, seed=7)
        result = run_star_skew(q, db, p=8, seed=7)
        assert result.answers == evaluate(q, db)
        assert result.heavy_hitters == ()
        assert result.servers_used == 8

    def test_single_mega_hitter(self):
        # One value carrying everything: residual is a full Cartesian
        # product computed on its own block.
        q = star_query(2)
        freqs = {"S1": {3: 40}, "S2": {3: 35}}
        db = degree_sequence_database(q, "z", freqs, 200, seed=8)
        result = run_star_skew(q, db, p=4, seed=8)
        truth = evaluate(q, db)
        assert len(truth) == 40 * 35
        assert result.answers == truth


class TestLoads:
    def test_load_beats_vanilla_hashing_under_skew(self):
        q = star_query(2)
        m = 600
        freqs = {
            "S1": {0: m // 2, **{i: 1 for i in range(1, m // 2 + 1)}},
            "S2": {0: m // 2, **{i: 1 for i in range(1, m // 2 + 1)}},
        }
        db = degree_sequence_database(q, "z", freqs, 4 * m, seed=9)
        p = 16
        skew_aware = run_star_skew(q, db, p, seed=9)
        vanilla = run_hypercube(q, db, p, exponents={"z": 1.0}, seed=9)
        assert skew_aware.answers == vanilla.answers
        # Vanilla hashing piles the hitter onto one server.
        assert vanilla.max_load_bits >= 2.0 * skew_aware.max_load_bits

    def test_load_within_constant_of_eq_20(self):
        q = star_query(2)
        freqs = {
            "S1": {0: 200, 1: 80, 2: 40, **{i: 1 for i in range(3, 103)}},
            "S2": {0: 150, 1: 90, 5: 30, **{i: 1 for i in range(6, 106)}},
        }
        db = degree_sequence_database(q, "z", freqs, 3000, seed=10)
        p = 16
        result = run_star_skew(q, db, p, seed=10)
        # Eq. (20) is stated in original-relation bits (factor-2 per
        # residual tuple); allow a small constant + hashing noise.
        assert result.max_load_bits <= 3.0 * result.predicted_load_bits

    def test_servers_used_is_theta_p(self):
        q = star_query(2)
        freqs = {
            "S1": {h: 20 for h in range(10)},
            "S2": {h: 20 for h in range(10)},
        }
        db = degree_sequence_database(q, "z", freqs, 2000, seed=11)
        p = 16
        result = run_star_skew(q, db, p, seed=11)
        # Paper bound: (l + 1) * |pk(q_z)| * p = 3 * 3 * 16 with l = 2.
        assert result.servers_used <= (2 + 1) * 3 * p + p

    def test_bound_formula_uniform_degrees(self):
        # With all frequencies below m/p there are no hitters and the
        # bound is the light term max_j M_j / p.
        q = star_query(2)
        db = matching_database(q, m=64, n=512, seed=12)
        stats = db.statistics(q)
        assert star_skew_load_bound(q, db, 8) == pytest.approx(
            stats.bits("S1") / 8
        )
