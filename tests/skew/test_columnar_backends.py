"""The skew-aware executors' ``backend="numpy"`` light-part routing.

The contract mirrors the HyperCube backends: identical answers and
bit-identical per-server, per-round loads between the tuple reference
path and the columnar path, on skew-free, zipf and planted-hitter
inputs.
"""

from __future__ import annotations

import pytest

from repro.core.families import star_query, triangle_query
from repro.data.generators import (
    matching_database,
    planted_heavy_hitter_database,
    zipf_database,
)
from repro.join.multiway import evaluate
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew


def assert_bit_identical(report_a, report_b):
    assert len(report_a.rounds) == len(report_b.rounds)
    for round_a, round_b in zip(report_a.rounds, report_b.rounds):
        assert round_a.bits == round_b.bits
        assert round_a.tuples == round_b.tuples


class TestStarBackends:
    @pytest.mark.parametrize(
        "k,m,n,skew,seed",
        [
            (2, 600, 3000, 0.6, 0),
            (2, 600, 3000, 1.1, 1),
            (3, 300, 1500, 0.8, 2),
        ],
    )
    def test_zipf_bit_identical(self, k, m, n, skew, seed):
        q = star_query(k)
        db = zipf_database(q, m=m, n=n, skew=skew, seed=seed)
        tuples = run_star_skew(q, db, 16, seed=7)
        arrays = run_star_skew(q, db, 16, seed=7, backend="numpy")
        assert_bit_identical(tuples.report, arrays.report)
        assert tuples.answers == arrays.answers == evaluate(q, db)
        assert tuples.servers_used == arrays.servers_used
        assert tuples.heavy_hitters == arrays.heavy_hitters

    def test_matching_bit_identical(self):
        q = star_query(2)
        db = matching_database(q, m=500, n=4096, seed=3)
        tuples = run_star_skew(q, db, 8, seed=0)
        arrays = run_star_skew(q, db, 8, seed=0, backend="numpy")
        assert_bit_identical(tuples.report, arrays.report)
        assert tuples.answers == arrays.answers == evaluate(q, db)

    def test_planted_hitter_bit_identical(self):
        q = star_query(2)
        db = planted_heavy_hitter_database(
            q, m=800, n=4096, variable="z", hitter_fraction=0.4, seed=5
        )
        tuples = run_star_skew(q, db, 16, seed=1)
        arrays = run_star_skew(q, db, 16, seed=1, backend="numpy")
        assert_bit_identical(tuples.report, arrays.report)
        assert tuples.answers == arrays.answers == evaluate(q, db)

    def test_rejects_unknown_backend(self):
        q = star_query(2)
        db = matching_database(q, m=50, n=256, seed=0)
        with pytest.raises(ValueError, match="backend"):
            run_star_skew(q, db, 4, backend="jax")


class TestTriangleBackends:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda q: zipf_database(q, m=600, n=600, skew=0.8, seed=3),
            lambda q: planted_heavy_hitter_database(
                q, m=500, n=5000, variable="x1", hitter_fraction=0.3, seed=4
            ),
            lambda q: matching_database(q, m=500, n=2000, seed=5),
        ],
        ids=["zipf", "planted", "matching"],
    )
    def test_bit_identical(self, maker):
        q = triangle_query()
        db = maker(q)
        tuples = run_triangle_skew(db, 8, seed=2)
        arrays = run_triangle_skew(db, 8, seed=2, backend="numpy")
        assert_bit_identical(tuples.report, arrays.report)
        assert tuples.answers == arrays.answers == evaluate(q, db)
        assert tuples.servers_used == arrays.servers_used

    def test_rejects_unknown_backend(self):
        q = triangle_query()
        db = matching_database(q, m=50, n=256, seed=0)
        with pytest.raises(ValueError, match="backend"):
            run_triangle_skew(db, 4, backend="jax")
