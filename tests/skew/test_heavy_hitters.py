"""Tests for heavy-hitter detection."""

from __future__ import annotations

import pytest

from repro.core.families import simple_join_query, star_query
from repro.data.generators import (
    degree_sequence_database,
    degree_sequence_relation,
    zipf_relation,
)
from repro.skew.heavy_hitters import (
    HitterStatistics,
    detect_heavy_hitters,
    sample_heavy_hitters,
    variable_frequencies,
)


class TestExactDetection:
    def test_exact_frequencies(self):
        r = degree_sequence_relation("R", 2, 0, {5: 30, 9: 10, 2: 1}, 200, seed=0)
        hitters = detect_heavy_hitters(r, 0, 10)
        assert hitters == {5: 30, 9: 10}

    def test_threshold_validation(self):
        r = degree_sequence_relation("R", 2, 0, {5: 3}, 50, seed=0)
        with pytest.raises(ValueError):
            detect_heavy_hitters(r, 0, 0)

    def test_at_most_p_hitters_at_threshold_m_over_p(self):
        # Structural fact the paper relies on: at threshold m/p there
        # can be at most p heavy hitters.
        r = zipf_relation("R", 2, 1000, 5000, skew=1.3, seed=1)
        p = 10
        hitters = detect_heavy_hitters(r, 0, len(r) / p)
        assert len(hitters) <= p


class TestSampledDetection:
    def test_recovers_dominant_hitter(self):
        r = degree_sequence_relation(
            "R", 2, 0, {7: 500, 1: 20, 2: 20}, 2000, seed=2
        )
        estimated = sample_heavy_hitters(r, 0, 100, sample_size=200, seed=3)
        assert 7 in estimated
        assert estimated[7] == pytest.approx(500, rel=0.5)

    def test_sample_validation(self):
        r = degree_sequence_relation("R", 2, 0, {7: 5}, 50, seed=4)
        with pytest.raises(ValueError):
            sample_heavy_hitters(r, 0, 10, sample_size=0)
        with pytest.raises(ValueError):
            sample_heavy_hitters(r, 0, 0, sample_size=5)

    def test_empty_relation(self):
        from repro.data.relation import Relation

        r = Relation("R", 2, [])
        assert sample_heavy_hitters(r, 0, 5, sample_size=10) == {}


class TestVariableFrequencies:
    def test_max_over_atoms(self):
        q = simple_join_query()  # S1(x,z), S2(y,z)
        from repro.data.database import Database
        from repro.data.relation import Relation

        db = Database(
            [
                Relation("S1", 2, [(1, 7), (2, 7), (3, 7)]),
                Relation("S2", 2, [(4, 7), (5, 8)]),
            ],
            10,
        )
        freq = variable_frequencies(q, db, "z")
        assert freq[7] == 3  # max(3 from S1, 1 from S2)
        assert freq[8] == 1

    def test_hitter_statistics_from_database(self):
        q = star_query(2)
        freqs = {"S1": {0: 50, 1: 2}, "S2": {0: 30, 2: 2}}
        db = degree_sequence_database(q, "z", freqs, 500, seed=5)
        stats = HitterStatistics.from_database(q, db, "z", 1.0, p=4)
        # thresholds: 52/4 = 13 and 32/4 = 8: only value 0 is heavy.
        assert stats.hitters == (0,)
        assert stats.frequency("S1", 0) == 50
        assert stats.frequency("S2", 0) == 30
        assert stats.frequency("S1", 1) == 0

    def test_hitter_statistics_validation(self):
        q = star_query(1)
        freqs = {"S1": {0: 5}}
        db = degree_sequence_database(q, "z", freqs, 50, seed=6)
        with pytest.raises(ValueError):
            HitterStatistics.from_database(q, db, "z", 1.0, p=0)
