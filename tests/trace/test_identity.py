"""Tracing must observe, never perturb.

The acceptance property of the whole subsystem: running any executor
under ``tracing()`` yields bit-identical answers, per-round per-server
loads and drop accounting at every pool kind and storage mode -- and
the trace reconciles *exactly* (float ``==``, no tolerance) with the
run's :class:`~repro.mpc.report.LoadReport`, because bit counts are
integer-valued doubles far below 2**53.
"""

from __future__ import annotations

import time

import pytest

from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.hypercube import run_hypercube
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan
from repro.skew.star import run_star_skew
from repro.skew.triangle import run_triangle_skew
from repro.storage.manager import StorageManager
from repro.trace import tracing

ENGINES = ["hypercube", "skew-star", "skew-triangle", "multiround"]


def run_engine(name, pool=None, storage=None, **knobs):
    knobs.setdefault("seed", 0)
    if name == "hypercube":
        q = triangle_query()
        db = matching_database(q, m=120, n=480, seed=0)
        return run_hypercube(q, db, p=8, pool=pool, storage=storage, **knobs)
    if name == "skew-star":
        q = star_query(2)
        db = zipf_database(q, m=150, n=60, skew=1.0, seed=1)
        return run_star_skew(q, db, p=8, pool=pool, storage=storage, **knobs)
    if name == "skew-triangle":
        q = triangle_query()
        db = zipf_database(q, m=120, n=50, skew=1.1, seed=2)
        return run_triangle_skew(db, p=8, pool=pool, storage=storage, **knobs)
    plan = chain_plan(4)
    db = matching_database(plan.query, m=120, n=480, seed=3)
    return run_plan(plan, db, p=8, pool=pool, storage=storage, **knobs)


def snapshot(result):
    """Everything a run computes, down to the bit."""
    report = result.load_report
    return (
        set(result.answers),
        [dict(r.bits) for r in report.rounds],
        [dict(r.dropped_bits) for r in report.rounds],
        report.total_bits,
        report.max_load_bits,
    )


def assert_reconciles(recorder, report):
    """The trace's per-server totals equal the report's, exactly."""
    trace = recorder.finish(report=report)
    mismatches = trace.query().reconcile(report)
    assert mismatches == {}
    sends = [e for e in trace if e.get("t") == "send"]
    assert sum(e["bits"] for e in sends) == report.total_bits
    assert sum(e.get("drop", 0.0) for e in sends) == report.dropped_bits


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("pool", [None, "thread"])
    def test_traced_equals_untraced(self, engine, pool):
        baseline = snapshot(run_engine(engine, pool=pool))
        with tracing() as rec:
            traced = run_engine(engine, pool=pool)
        assert snapshot(traced) == baseline
        assert any(e.get("t") == "send" for e in rec.events)
        assert_reconciles(rec, traced.load_report)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_traced_equals_untraced_with_storage(self, engine, tmp_path):
        def spilled(trace_it):
            with StorageManager(
                root=tmp_path / ("t" if trace_it else "u"), chunk_rows=64
            ) as storage:
                if trace_it:
                    with tracing() as rec:
                        result = run_engine(engine, storage=storage)
                    return snapshot(result), rec, result.load_report
                return snapshot(run_engine(engine, storage=storage)), None, None

        baseline, _, _ = spilled(False)
        traced, rec, report = spilled(True)
        assert traced == baseline
        assert_reconciles(rec, report)

    def test_traced_equals_untraced_process_pool(self):
        baseline = snapshot(run_engine("hypercube", pool="process"))
        with tracing() as rec:
            traced = run_engine("hypercube", pool="process")
        assert snapshot(traced) == baseline
        # Worker timings are replayed in the parent's deterministic
        # merge order, so the trace sees them despite the process hop.
        assert any(e.get("t") == "task" for e in rec.events)
        assert_reconciles(rec, traced.load_report)

    def test_traced_equals_untraced_under_drop(self):
        knobs = dict(capacity_bits=1_200.0, on_overflow="drop")
        baseline = snapshot(run_engine("hypercube", **knobs))
        with tracing() as rec:
            traced = run_engine("hypercube", **knobs)
        assert snapshot(traced) == baseline
        assert traced.load_report.dropped_bits > 0
        assert_reconciles(rec, traced.load_report)


class TestAccounting:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_phase_bytes_partition_total_bits(self, engine):
        report = run_engine(engine).load_report
        assert report.phase_bytes
        assert sum(report.phase_bytes.values()) == report.total_bits

    def test_spill_events_match_manager_counters(self, tmp_path):
        q = triangle_query()
        with StorageManager(root=tmp_path / "s", chunk_rows=64) as storage:
            db = matching_database(q, m=400, n=1600, seed=0, storage=storage)
            with tracing() as rec:
                run_hypercube(q, db, p=8, storage=storage)
            counters = storage.io_counters()
        writes = [
            e for e in rec.events
            if e.get("t") == "spill" and e["op"] == "write"
        ]
        reads = [
            e for e in rec.events
            if e.get("t") == "spill" and e["op"] == "read"
        ]
        assert reads, "streaming a spilled database must log reads"
        # The traced window saw a suffix of the manager's lifetime: the
        # database was spilled before tracing began, so write events
        # recorded here can only undercount the cumulative counters.
        assert sum(e["bytes"] for e in writes) <= counters["bytes_written"]
        assert sum(e["bytes"] for e in reads) <= counters["bytes_read"]
        assert counters["peak_live_bytes"] >= counters["live_bytes"]

    def test_worker_task_events_cover_route_and_join(self):
        with tracing() as rec:
            run_engine("hypercube", pool="thread")
        kinds = {e["kind"] for e in rec.events if e.get("t") == "task"}
        assert kinds == {"route", "join"}


class TestOverhead:
    def test_tracing_overhead_stays_small(self):
        """Traced wall time <= 1.25x untraced at n = 10**5 (min of 3)."""
        q = triangle_query()
        db = matching_database(q, m=25_000, n=100_000, seed=0)

        def best_of(traced, repeats=3):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                if traced:
                    with tracing():
                        run_hypercube(q, db, p=8, skip_local_join=True)
                else:
                    run_hypercube(q, db, p=8, skip_local_join=True)
                samples.append(time.perf_counter() - start)
            return min(samples)

        best_of(traced=False, repeats=1)  # warm caches before timing
        untraced = best_of(traced=False)
        traced = best_of(traced=True)
        assert traced <= untraced * 1.25
