"""TraceQuery analysis and the ``python -m repro trace`` subcommand.

One traced :class:`~repro.session.Session` run produces the artifact
every test inspects; the CLI tests drive ``repro.__main__.main`` the
way a shell would and assert the acceptance questions are answered:
top-k heaviest servers, per-round bytes, per-phase bytes/seconds.
"""

from __future__ import annotations

import pathlib

import pytest

import repro.__main__ as cli
from repro.core.families import triangle_query
from repro.data.generators import matching_database
from repro.session import Session
from repro.trace import TraceQuery
from repro.trace.cli import iter_trace_files, render_path, render_trace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    q = triangle_query()
    db = matching_database(q, m=200, n=800, seed=0)
    with Session(p=8, seed=0, trace=trace_dir) as session:
        result = session.run(q, db, label="probe")
        record = session.history[0]
    return record, result.load_report, pathlib.Path(record.trace_path)


class TestSessionIntegration:
    def test_record_points_at_a_written_artifact(self, traced_run):
        record, _, path = traced_run
        assert path.exists()
        assert path.suffix == ".jsonl"
        assert "probe" in path.name

    def test_trace_reconciles_with_the_report(self, traced_run):
        _, report, path = traced_run
        assert TraceQuery(path).reconcile(report) == {}

    def test_record_carries_phase_bytes(self, traced_run):
        record, report, _ = traced_run
        assert record.phase_bytes == report.phase_bytes
        assert sum(record.phase_bytes.values()) == record.total_bits

    def test_meta_names_the_run(self, traced_run):
        record, _, path = traced_run
        meta = next(e for e in TraceQuery(path).events if e["t"] == "meta")
        assert meta["label"] == "probe"
        assert meta["strategy"] == record.strategy
        assert meta["seed"] == record.seed

    def test_untraced_session_writes_nothing(self):
        q = triangle_query()
        db = matching_database(q, m=50, n=200, seed=0)
        with Session(p=4, seed=0) as session:
            session.run(q, db)
            assert session.history[0].trace_path is None

    def test_run_many_writes_one_artifact_per_job(self, tmp_path):
        q = triangle_query()
        db = matching_database(q, m=50, n=200, seed=0)
        with Session(p=4, seed=0, trace=tmp_path) as session:
            session.run_many([(q, db), (q, db)], max_workers=2)
            paths = [record.trace_path for record in session.history]
        assert len(set(paths)) == 2
        assert all(pathlib.Path(p).exists() for p in paths)


class TestTraceQuery:
    def test_top_servers_are_ranked_and_exhaustive(self, traced_run):
        _, report, path = traced_run
        query = TraceQuery(path)
        ranked = query.top_servers(k=report.p)
        bits = [b for _, b in ranked]
        assert bits == sorted(bits, reverse=True)
        # Ranking aggregates a server's bits across *all* rounds.
        per_server: dict[int, float] = {}
        for round_load in report.rounds:
            for server, load in round_load.bits.items():
                per_server[server] = per_server.get(server, 0.0) + load
        assert bits[0] == max(per_server.values())
        assert sum(bits) == report.total_bits

    def test_round_totals_match_the_report(self, traced_run):
        _, report, path = traced_run
        rows = TraceQuery(path).round_totals()
        assert len(rows) == report.num_rounds
        for row, round_load in zip(rows, report.rounds):
            assert row["total_bits"] == round_load.total_bits
            assert row["max_bits"] == round_load.max_bits

    def test_phases_carry_seconds_and_bits(self, traced_run):
        _, report, path = traced_run
        phases = TraceQuery(path).phases()
        assert set(phases) >= set(report.phase_bytes)
        total = sum(row["bits"] for row in phases.values())
        assert total == report.total_bits

    def test_predicted_deltas_expose_the_model_ratio(self, traced_run):
        _, report, path = traced_run
        deltas = TraceQuery(path).predicted_deltas()
        with_ratio = [row for row in deltas if row["ratio"] is not None]
        assert with_ratio, "a planned run always has a prediction"
        # Each row compares one round's measured max to the predicted L.
        for row, round_load in zip(with_ratio, report.rounds):
            expected = round_load.max_bits / report.predicted_load_bits
            assert row["ratio"] == pytest.approx(expected)

    def test_accepts_path_trace_and_iterable(self, traced_run):
        _, report, path = traced_run
        from repro.trace import Trace

        trace = Trace.read_jsonl(path)
        for source in (str(path), trace, list(trace.events)):
            assert TraceQuery(source).total_bits() == report.total_bits


class TestCli:
    def test_iter_trace_files_rejects_missing_paths(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_trace_files(tmp_path / "nope")

    def test_render_answers_the_acceptance_questions(self, traced_run):
        _, _, path = traced_run
        text = render_trace(path, top=3)
        assert "top 3 servers" in text
        assert "per-round bytes" in text
        assert "phases (exclusive):" in text
        assert "measured/predicted" in text

    def test_render_path_walks_a_directory(self, traced_run):
        _, _, path = traced_run
        assert render_trace(path) in render_path(path.parent)

    def test_main_trace_subcommand_prints_the_summary(
        self, traced_run, capsys
    ):
        _, _, path = traced_run
        cli.main(["trace", str(path.parent), "--top", "2"])
        out = capsys.readouterr().out
        assert "top 2 servers" in out
        assert "per-round bytes" in out

    def test_run_subcommand_traces_into_a_directory(self, tmp_path, capsys):
        cli.main([
            "run", "triangle", "--p", "4", "--m", "100", "--n", "400",
            "--trace-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert list(tmp_path.glob("*.jsonl"))
        assert "traced" in out
