"""TraceRecorder / Trace mechanics: scoping, sealing, serialization.

The recorder is the zero-dependency core of :mod:`repro.trace`: an
append-only event list activated through a context variable.  These
tests pin the activation contract (off by default, scoped by
``tracing()``, nestable) and the artifact contract (meta header first,
``run`` footer last, compact JSONL that round-trips losslessly).
"""

from __future__ import annotations

import json

import pytest

from repro.mpc.simulator import MPCSimulation
from repro.trace import Trace, TraceRecorder, active_recorder, tracing


class TestActivation:
    def test_off_by_default(self):
        assert active_recorder() is None

    def test_tracing_scopes_a_recorder(self):
        with tracing() as rec:
            assert active_recorder() is rec
        assert active_recorder() is None

    def test_explicit_recorder_is_installed(self):
        mine = TraceRecorder()
        with tracing(mine) as rec:
            assert rec is mine
            assert active_recorder() is mine

    def test_nesting_restores_the_outer_recorder(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer

    def test_recorder_survives_an_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert active_recorder() is None

    def test_simulation_picks_up_the_active_recorder(self):
        with tracing() as rec:
            sim = MPCSimulation(p=4, value_bits=32)
            sim.begin_round()
            sim.send(0, "R", [(1, 2)])
            sim.end_round()
        assert sim.trace is rec
        kinds = [event["t"] for event in rec.events]
        assert kinds == ["sim", "send", "round"]

    def test_simulation_without_recorder_records_nothing(self):
        sim = MPCSimulation(p=4, value_bits=32)
        assert sim.trace is None


class TestEvents:
    def test_send_omits_the_zero_drop_key(self):
        rec = TraceRecorder()
        rec.send(1, 3, "R", 64.0, 1)
        rec.send(1, 3, "R", 64.0, 1, dropped=32.0)
        clean, dropped = rec.events
        assert "drop" not in clean
        assert dropped["drop"] == 32.0

    def test_finish_brackets_meta_and_run_footer(self):
        with tracing() as rec:
            sim = MPCSimulation(p=4, value_bits=32)
            sim.begin_round()
            sim.send(0, "R", [(1, 2), (3, 4)])
            sim.send(1, "S", [(5, 6)])
            sim.end_round()
        trace = rec.finish(
            report=sim.report, meta={"query": "probe", "seed": 7}
        )
        assert trace.events[0]["t"] == "meta"
        assert trace.events[0]["query"] == "probe"
        footer = trace.events[-1]
        assert footer["t"] == "run"
        assert footer["p"] == 4
        assert footer["rounds"] == 1
        assert footer["total_bits"] == sim.report.total_bits
        # Per-server totals are string-keyed (JSON object keys).
        assert footer["server_bits"] == {"0": 128.0, "1": 64.0}
        # The recorder itself is untouched -- finish seals a copy.
        assert all(e["t"] != "run" for e in rec.events)

    def test_finish_without_report_has_no_footer(self):
        rec = TraceRecorder()
        rec.send(1, 0, "R", 64.0, 1)
        trace = rec.finish()
        assert trace.run is None
        assert trace.meta is None
        assert len(trace) == 1


class TestSerialization:
    def make_trace(self):
        with tracing() as rec:
            sim = MPCSimulation(p=4, value_bits=32)
            sim.begin_round()
            sim.send(0, "R", [(1, 2)])
            sim.end_round()
        return rec.finish(report=sim.report, meta={"query": "probe"})

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        trace = self.make_trace()
        path = trace.write_jsonl(tmp_path / "t.jsonl")
        assert Trace.read_jsonl(path).events == trace.events

    def test_jsonl_is_compact_one_object_per_line(self, tmp_path):
        trace = self.make_trace()
        path = trace.write_jsonl(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(trace)
        for line in lines:
            assert ": " not in line and ", " not in line
            json.loads(line)

    def test_read_skips_blank_lines(self, tmp_path):
        trace = self.make_trace()
        path = trace.write_jsonl(tmp_path / "t.jsonl")
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert Trace.read_jsonl(path).events == trace.events

    def test_repr_names_the_strategy(self):
        trace = self.make_trace()
        assert "Trace(" in repr(trace)
