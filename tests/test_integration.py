"""Cross-module integration and property tests.

End-to-end checks tying the subsystems together: random queries run
through the HyperCube algorithm and the plan executor against the
sequential ground truth; the probability lemmas checked by Monte Carlo;
the full pipeline exercised exactly as a downstream user would.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.one_round import lower_bound, upper_bound
from repro.bounds.probability import output_concentration_bound
from repro.core.families import chain_query, triangle_query
from repro.core.friedgut import expected_output_size
from repro.core.stats import Statistics
from repro.data.generators import matching_database, uniform_database
from repro.hypercube.algorithm import run_hypercube
from repro.hypercube.baselines import run_broadcast_join, run_single_server
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.plans import generic_plan
from tests.conftest import random_queries


def bounded_uniform_db(query, m, n, seed):
    """Uniform database with per-relation sizes clamped to n^arity."""
    sizes = {
        atom.relation: min(m, n**atom.arity) for atom in query.atoms
    }
    return uniform_database(query, sizes, n, seed=seed)


class TestRandomQueryPipelines:
    @given(
        random_queries(max_variables=4, max_atoms=4, connected_only=True),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_hypercube_matches_sequential(self, query, seed):
        db = bounded_uniform_db(query, m=20, n=8, seed=seed)
        result = run_hypercube(query, db, p=8, seed=seed)
        assert result.answers == evaluate(query, db)

    @given(
        random_queries(max_variables=4, max_atoms=4, connected_only=True),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_generic_plan_matches_sequential(self, query, seed):
        db = bounded_uniform_db(query, m=15, n=7, seed=seed)
        plan = generic_plan(query)
        result = run_plan(plan, db, p=8, seed=seed)
        assert result.answers == evaluate(query, db)

    @given(
        random_queries(max_variables=4, max_atoms=4, connected_only=True),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_baselines_match_sequential(self, query, seed):
        db = bounded_uniform_db(query, m=12, n=6, seed=seed)
        truth = evaluate(query, db)
        assert run_single_server(query, db, p=4).answers == truth
        assert run_broadcast_join(query, db, p=4).answers == truth

    @given(random_queries(max_variables=4, max_atoms=4))
    @settings(max_examples=20, deadline=None)
    def test_bounds_sandwich_all_queries(self, query):
        stats = Statistics.uniform(query, 2**16, domain_size=2**20)
        lo = lower_bound(query, stats, 16)
        hi = upper_bound(query, stats, 16)
        if lo > 0:
            assert hi == pytest.approx(lo, rel=1e-5)


class TestLoadOrdering:
    """The textbook ordering: single server >= broadcast >= HyperCube."""

    @pytest.mark.parametrize(
        "query", [triangle_query(), chain_query(3)], ids=lambda q: q.name
    )
    def test_hypercube_never_worse_than_single_server(self, query):
        db = matching_database(query, m=400, n=2**13, seed=3)
        p = 16
        single = run_single_server(query, db, p)
        hypercube = run_hypercube(query, db, p, seed=3)
        assert hypercube.max_load_bits < single.max_load_bits

    def test_broadcast_between_for_small_relation(self):
        query = triangle_query()
        db = matching_database(
            query, {"S1": 10, "S2": 500, "S3": 500}, n=2**12, seed=4
        )
        p = 16
        single = run_single_server(query, db, p)
        broadcast = run_broadcast_join(query, db, p, partition_relation="S2")
        assert broadcast.max_load_bits < single.max_load_bits


class TestLemmaB1MonteCarlo:
    def test_output_concentration_on_matchings(self):
        # Lemma B.1: P(|q(I)| > mu/3) >= (2/3)^2 mu/(mu+1) over random
        # matchings.  L2 with m = n has mu = n.
        query = chain_query(2)
        n = m = 16
        stats = Statistics.uniform(query, m, domain_size=n)
        mu = expected_output_size(stats)
        rng = random.Random(5)
        trials, hits = 300, 0
        for _ in range(trials):
            db = matching_database(query, m=m, n=n, seed=rng.randrange(10**9))
            if len(evaluate(query, db)) > mu / 3:
                hits += 1
        empirical = hits / trials
        bound = output_concentration_bound(mu, 1 / 3)
        assert empirical >= bound - 0.1

    def test_bound_is_not_vacuous_here(self):
        query = chain_query(2)
        stats = Statistics.uniform(query, 16, domain_size=16)
        mu = expected_output_size(stats)
        assert output_concentration_bound(mu, 1 / 3) > 0.4


class TestUserJourney:
    """The README quickstart, as a test."""

    def test_quickstart_flow(self):
        from repro import (
            matching_database as mdb,
            run_hypercube as rhc,
            triangle_query as tq,
        )
        from repro.bounds import lower_bound as lb, upper_bound as ub
        from repro.join import evaluate as ev

        q = tq()
        db = mdb(q, m=500, n=2**14, seed=0)
        stats = db.statistics(q)
        result = rhc(q, db, p=64)
        assert result.answers == ev(q, db)
        assert result.shares == {"x1": 4, "x2": 4, "x3": 4}
        assert lb(q, stats, 64) == pytest.approx(ub(q, stats, 64), rel=1e-6)

    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.9.0"
