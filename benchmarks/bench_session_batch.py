"""``Session.run_many`` batch throughput: concurrent vs sequential.

The session front door (PR 5) claims that a workload of independent
queries over one configured cluster runs correctly at any
``max_workers`` and faster with a few: the executors spend their time
in NumPy routing/joining, which releases the GIL, so a thread pool
overlaps real work.  This bench measures a mixed workload (matching
triangles, a zipf star join, a matching binary join) sequentially and
concurrently, verifies the results are identical (the determinism
acceptance), and records the wall-clock for both modes.

No hard speedup gate: thread-level overlap depends on the host's cores
and the NumPy build, and a 1x result on a loaded single-core CI runner
would be noise, not regression.  The numbers to track live in the
``--benchmark-json`` artifact CI uploads.

Run directly for the table: ``python benchmarks/bench_session_batch.py``.
"""

from __future__ import annotations

import time

from repro.core.families import simple_join_query, star_query, triangle_query
from repro.data.generators import matching_database, zipf_database
from repro.session import Job, Session

P = 16
SEED = 7
#: Per-job strategies are pinned so the benchmark times execution, not
#: planning (statistics collection would dominate at this size).
STRATEGY = "hypercube"


def build_jobs(m: int) -> list[Job]:
    tq = triangle_query()
    sq = star_query(2)
    jq = simple_join_query()
    jobs = []
    for copy in range(2):
        jobs += [
            Job(tq, matching_database(tq, m=m, n=4 * m, seed=copy),
                strategy=STRATEGY, label=f"tri-{copy}"),
            Job(sq, zipf_database(sq, m=m, n=m, skew=0.8, seed=copy),
                strategy=STRATEGY, label=f"star-{copy}"),
            Job(jq, matching_database(jq, m=m, n=4 * m, seed=copy),
                strategy=STRATEGY, label=f"join-{copy}"),
        ]
    return jobs


def run_batch(jobs: list[Job], max_workers: int, pool: str | None = None):
    """One timed batch: (seconds, per-job answer counts, total bits)."""
    with Session(p=P, seed=SEED) as session:
        start = time.perf_counter()
        results = session.run_many(jobs, max_workers=max_workers, pool=pool)
        elapsed = time.perf_counter() - start
        counts = [len(result.answers_array()) for result in results]
        bits = [result.load_report.total_bits for result in results]
    return elapsed, counts, bits


def compare_modes(m: int) -> dict:
    jobs = build_jobs(m)
    sequential_s, seq_counts, seq_bits = run_batch(jobs, max_workers=1)
    concurrent_s, conc_counts, conc_bits = run_batch(jobs, max_workers=4)
    process_s, proc_counts, proc_bits = run_batch(
        jobs, max_workers=4, pool="process"
    )
    assert conc_counts == seq_counts, "concurrency changed the answers"
    assert conc_bits == seq_bits, "concurrency changed the loads"
    assert proc_counts == seq_counts, "process pool changed the answers"
    assert proc_bits == seq_bits, "process pool changed the loads"
    return {
        "m": m,
        "jobs": len(jobs),
        "sequential_s": sequential_s,
        "concurrent_s": concurrent_s,
        "process_s": process_s,
        "speedup": sequential_s / concurrent_s,
        "process_speedup": sequential_s / process_s,
    }


def format_rows(rows: list[dict]) -> list[str]:
    lines = [
        f"{'m':>9} {'jobs':>5} {'sequential [s]':>15} "
        f"{'4 threads [s]':>14} {'4 procs [s]':>12} {'thr':>6} {'proc':>6}"
        f"   (mixed workload, p={P}, pinned {STRATEGY})"
    ]
    for r in rows:
        lines.append(
            f"{r['m']:>9,} {r['jobs']:>5} {r['sequential_s']:>15.3f} "
            f"{r['concurrent_s']:>14.3f} {r['process_s']:>12.3f} "
            f"{r['speedup']:>5.2f}x {r['process_speedup']:>5.2f}x"
        )
    return lines


def test_session_batch_consistency(report_table):
    # The determinism acceptance at bench scale, plus the table.
    rows = [compare_modes(m) for m in (5_000, 20_000)]
    report_table("Session batch: run_many vs sequential", format_rows(rows))


def test_session_batch_concurrent_latency(benchmark):
    """run_many(max_workers=4) wall-clock -- the number to track."""
    jobs = build_jobs(10_000)

    def batch():
        with Session(p=P, seed=SEED) as session:
            results = session.run_many(jobs, max_workers=4)
            return sum(len(r.answers_array()) for r in results)

    total = benchmark(batch)
    assert total >= 0


def test_session_batch_sequential_latency(benchmark):
    """The max_workers=1 baseline the concurrent number compares to."""
    jobs = build_jobs(10_000)

    def batch():
        with Session(p=P, seed=SEED) as session:
            results = session.run_many(jobs, max_workers=1)
            return sum(len(r.answers_array()) for r in results)

    total = benchmark(batch)
    assert total >= 0


def test_session_batch_process_latency(benchmark):
    """run_many(pool="process") wall-clock: true multicore batches.

    Each job runs in its own spawned worker (the pool is shared and
    cached, so spawn cost amortizes across benchmark rounds).
    """
    jobs = build_jobs(10_000)

    def batch():
        with Session(p=P, seed=SEED) as session:
            results = session.run_many(jobs, max_workers=4, pool="process")
            return sum(len(r.answers_array()) for r in results)

    total = benchmark(batch)
    assert total >= 0


if __name__ == "__main__":
    for m in (5_000, 20_000, 100_000):
        row = compare_modes(m)
        print(
            f"m={row['m']:>9,}: {row['jobs']} jobs, "
            f"sequential {row['sequential_s']:.3f}s, "
            f"4 threads {row['concurrent_s']:.3f}s "
            f"({row['speedup']:.2f}x), "
            f"4 processes {row['process_s']:.3f}s "
            f"({row['process_speedup']:.2f}x)"
        )
