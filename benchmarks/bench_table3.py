"""E2 -- Table 3: the rounds/space tradeoff.

Paper rows:

    C_k : one-round eps = 1 - 2/k,       ceil(log k) rounds for O(M/p),
          r ~ log k / log(2/(1-eps))
    L_k : one-round eps = 1 - 1/ceil(k/2), ceil(log k) rounds,
          same r = f(eps)
    T_k : eps = 0, 1 round
    SP_k: eps = 1 - 1/k, 2 rounds

Regenerated from tau* and the Gamma-class machinery.
"""

from __future__ import annotations

import math

import pytest

from repro.core.families import chain_query, cycle_query, spk_query, star_query
from repro.multiround.gamma import (
    chain_rounds_upper_bound,
    k_epsilon,
    rounds_upper_bound,
    space_exponent_for_one_round,
)
from repro.multiround.lowerbounds import chain_round_lower_bound


def test_table3_one_round_space_exponents(report_table):
    lines = [f"{'query':>6} {'paper eps':>10} {'computed':>9}"]
    cases = [
        (cycle_query(6), 1 - 2 / 6),
        (cycle_query(8), 1 - 2 / 8),
        (chain_query(6), 1 - 1 / 3),
        (chain_query(8), 1 - 1 / 4),
        (star_query(4), 0.0),
        (spk_query(3), 1 - 1 / 3),
    ]
    for query, expected in cases:
        eps = space_exponent_for_one_round(query)
        assert eps == pytest.approx(expected), query.name
        lines.append(f"{query.name:>6} {expected:>10.3f} {eps:>9.3f}")
    report_table("Table 3 column 1: one-round space exponent", lines)


def test_table3_rounds_for_linear_load(report_table):
    # Rounds to achieve load O(M/p), i.e. eps = 0.
    lines = [f"{'query':>6} {'paper rounds':>12} {'computed':>9}"]
    for k in (4, 8, 16):
        expected = math.ceil(math.log2(k))
        got = chain_rounds_upper_bound(k, 0.0)
        assert got == expected
        lines.append(f"{'L' + str(k):>6} {expected:>12} {got:>9}")
    for k in (4, 8, 16):
        # C_k at eps=0: the constructive two-arc plan (Lemma 5.4's
        # proof idea) reaches ceil(log2 k) rounds for k a power of two.
        from repro.multiround.plans import cycle_plan

        expected = math.ceil(math.log2(k))
        got = cycle_plan(k, 0.0).depth
        assert got == expected
        lines.append(f"{'C' + str(k):>6} {expected:>12} {got:>9}")
    got = rounds_upper_bound(star_query(4), 0.0)
    assert got == 1
    lines.append(f"{'T4':>6} {1:>12} {got:>9}")
    got = rounds_upper_bound(spk_query(3), 0.0)
    assert got == 2
    lines.append(f"{'SP3':>6} {2:>12} {got:>9}")
    report_table("Table 3 column 2: rounds to reach load O(M/p)", lines)


def test_table3_rounds_space_tradeoff(report_table):
    # r ~ log k / log(2/(1-eps)) = log k / log(k_eps) up to the floor in
    # k_eps; exact at eps = 0 and eps = 1/2.
    lines = [f"{'query':>6} {'eps':>5} {'paper ~r':>9} {'computed':>9}"]
    for k in (16, 64):
        for eps in (0.0, 0.5):
            approx = math.log(k) / math.log(2 / (1 - eps))
            got = chain_round_lower_bound(k, eps)
            assert got == math.ceil(
                math.log(k, k_epsilon(eps)) - 1e-12
            )
            lines.append(
                f"{'L' + str(k):>6} {eps:>5.2f} {approx:>9.2f} {got:>9}"
            )
    report_table("Table 3 column 3: rounds/space tradeoff r = f(eps)", lines)


def test_benchmark_round_bound(benchmark):
    q = cycle_query(8)
    benchmark(rounds_upper_bound, q, 0.25)
