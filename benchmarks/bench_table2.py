"""E1 -- Table 2: share exponents, tau*, and space-exponent lower bounds.

Paper values (equal relation sizes):

    C_k : shares 1/k each,        tau* = k/2,        eps >= 1 - 2/k
    T_k : share 1 on z, 0 on x_j, tau* = 1,          eps >= 0
    L_k : tau* = ceil(k/2),                          eps >= 1 - 1/ceil(k/2)
    B_km: shares 1/k each,        tau* = k/m,        eps >= 1 - m/k

We regenerate every row from the LPs and time the share-LP solve.
"""

from __future__ import annotations

import pytest

from repro.core.families import binom_query, chain_query, cycle_query, star_query
from repro.core.packing import fractional_vertex_cover_number
from repro.core.shares import (
    equal_size_share_exponents,
    share_exponents,
    space_exponent_bound,
)
from repro.core.stats import Statistics


def paper_rows():
    rows = []
    for k in (3, 4, 5, 6):
        rows.append((cycle_query(k), {"all": 1 / k}, k / 2, 1 - 2 / k))
    for k in (2, 3, 4):
        rows.append((star_query(k), {"z": 1.0, "legs": 0.0}, 1.0, 0.0))
    for k in (2, 3, 4, 5):
        rows.append((chain_query(k), None, -(-k // 2), 1 - 1 / -(-k // 2)))
    for k, m in ((4, 2), (4, 3), (5, 2)):
        rows.append((binom_query(k, m), {"all": 1 / k}, k / m, 1 - m / k))
    return rows


def test_table2_values(report_table):
    lines = [
        f"{'query':>6} {'tau* paper':>10} {'tau* LP':>8} "
        f"{'eps paper':>10} {'eps LP':>8} {'shares':>28}"
    ]
    for query, share_spec, tau_paper, eps_paper in paper_rows():
        tau = fractional_vertex_cover_number(query)
        eps = space_exponent_bound(query)
        exps = equal_size_share_exponents(query)
        assert tau == pytest.approx(tau_paper), query.name
        assert eps == pytest.approx(eps_paper), query.name
        if share_spec and "all" in share_spec:
            assert all(
                v == pytest.approx(share_spec["all"]) for v in exps.values()
            ), query.name
        if share_spec and "z" in share_spec:
            assert exps["z"] == pytest.approx(share_spec["z"])
        shares_text = ",".join(f"{v:.3f}" for v in exps.values())
        lines.append(
            f"{query.name:>6} {tau_paper:>10.2f} {tau:>8.2f} "
            f"{eps_paper:>10.3f} {eps:>8.3f} {shares_text:>28}"
        )
    report_table("Table 2: share exponents, tau*, space exponents", lines)


def test_lp_matches_closed_form_on_unequal_sizes():
    # The LP also covers the regime Table 2 doesn't: unequal sizes.
    q = cycle_query(4)
    stats = Statistics(
        q, {"S1": 2**12, "S2": 2**14, "S3": 2**16, "S4": 2**18}, 2**20
    )
    sol = share_exponents(q, stats, 64)
    assert sol.load_bits > 0
    assert sum(sol.exponents.values()) <= 1 + 1e-9


def test_benchmark_share_lp(benchmark):
    q = binom_query(5, 2)
    stats = Statistics.uniform(q, 2**20)
    benchmark(share_exponents, q, stats, 1024)
