"""P1 -- the cost-based planner: pick quality, accuracy, and latency.

Three angles on the new planner subsystem, forming the start of its
perf trajectory (run with ``--benchmark-json`` in CI and keep the
artifacts):

* **pick quality** -- across skew-free and skewed scenarios the
  planner's pick is never worse than 1.5x the best measured strategy
  (it may *beat* the nominal best via tie-breaks);
* **accuracy** -- the winner's predicted load is within a small factor
  of its measured load (the EXPLAIN table's promise);
* **latency** -- ``plan()`` is pure closed-form arithmetic and must
  stay in the low-millisecond range even for the 6-atom ``K4`` query
  (pytest-benchmark timings; this is the number to track over PRs).
"""

from __future__ import annotations

import pytest

from repro.core.families import (
    chain_query,
    k4_query,
    star_query,
    triangle_query,
)
from repro.core.stats import Statistics
from repro.data.generators import matching_database, zipf_database
from repro.join.multiway import evaluate
from repro.planner import DataStatistics, execute, plan


SCENARIOS = {
    "triangle/matching": (
        triangle_query(),
        lambda q: matching_database(q, m=1000, n=2**14, seed=0,
                                    backend="numpy"),
        64,
    ),
    "star2/zipf1.0": (
        star_query(2),
        lambda q: zipf_database(q, m=2000, n=2000, skew=1.0, seed=2),
        16,
    ),
    "chain4/matching": (
        chain_query(4),
        lambda q: matching_database(q, m=1000, n=2**14, seed=1,
                                    backend="numpy"),
        64,
    ),
}


def test_planner_pick_quality(report_table):
    """The planner's pick is (near-)best measured, and its prediction
    tracks the measured load of the chosen strategy."""
    lines = [
        f"{'scenario':<20} {'winner':<14} {'pred L':>10} {'meas L':>10} "
        f"{'meas/pred':>9} {'best meas':>10}"
    ]
    for label, (query, make_db, p) in SCENARIOS.items():
        db = make_db(query)
        truth = evaluate(query, db)
        explained = plan(query, db, p)
        picked = execute(query, db, p, seed=0)
        assert picked.answers == truth

        # Run every other applicable one-round-cheap candidate to find
        # the best measured load (cap the field to keep the bench fast).
        measured = {picked.strategy: picked.max_load_bits}
        for candidate in explained.ranked[:4]:
            if candidate.name in measured:
                continue
            outcome = candidate.strategy.run(query, db, p, seed=0)
            assert outcome.answers == truth
            measured[candidate.name] = outcome.max_load_bits
        best = min(measured.values())
        assert picked.max_load_bits <= 1.5 * best, (
            f"{label}: planner picked {picked.strategy} at "
            f"{picked.max_load_bits:.0f} bits, best measured {best:.0f}"
        )
        ratio = picked.max_load_bits / picked.predicted_load_bits
        assert 0.2 <= ratio <= 3.0
        lines.append(
            f"{label:<20} {picked.strategy:<14} "
            f"{picked.predicted_load_bits:>10.0f} "
            f"{picked.max_load_bits:>10.0f} {ratio:>9.2f} {best:>10.0f}"
        )
    report_table("P1a: planner pick quality (predicted vs measured)", lines)


@pytest.mark.parametrize(
    "query",
    [triangle_query(), star_query(3), chain_query(5), k4_query()],
    ids=["C3", "T3", "L5", "K4"],
)
def test_plan_latency(benchmark, query):
    """plan() latency from bare Statistics (pure cost-model time)."""
    stats = Statistics.uniform(query, m=100_000, domain_size=2**20)
    explained = benchmark(plan, query, stats, 64)
    assert explained.winner.applicable


def test_plan_latency_with_hitters(benchmark):
    """plan() latency including hitter statistics on a skewed star."""
    query = star_query(2)
    db = zipf_database(query, m=2000, n=2000, skew=1.0, seed=2)
    dstats = DataStatistics.from_database(query, db, 16)
    explained = benchmark(plan, query, dstats, 16)
    assert explained.winner.name == "skew-star"
