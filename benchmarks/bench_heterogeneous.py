"""Speed-weighted shares vs uniform hashing on a 2-class cluster.

The heterogeneity tentpole's headline claim: on a cluster of 4 slow
(1x) plus 4 fast (4x) machines, routing speed-proportional shares
through the weighted hash strictly beats uniform hashing on *makespan*
(max over servers of received bits / speed) -- both as the cost model
predicts it and as the simulator measures it.  Answers stay identical
either way; only where the bits land changes.
"""

from __future__ import annotations

import pytest

from repro import MachineSpec
from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.planner.cost import hypercube_cost, star_cost
from repro.planner.statistics import DataStatistics
from repro.skew.star import run_star_skew

MACHINES = MachineSpec.parse("4x1,4x4")
P = 8


def measured_makespan(result, machines):
    """Max over rounds/servers of bits/speed, for any run's report."""
    return max(
        bits / machines.speed(s)
        for r in result.report.rounds
        for s, bits in r.bits.items()
    )


def test_star_weighted_vs_uniform_makespan(report_table):
    query = star_query(2)
    db = matching_database(query, m=4_000, n=16_000, seed=7)
    dstats = DataStatistics.from_database(query, db, P)
    truth = evaluate(query, db)

    uniform = run_star_skew(query, db, P, seed=7)
    weighted = run_star_skew(query, db, P, seed=7, machines=MACHINES)
    assert uniform.answers == truth and weighted.answers == truth

    # Uniform hashing spreads bits evenly, so the slow (1x) servers set
    # the pace: predicted makespan is the classic homogeneous L.
    predicted_uniform = star_cost(query, dstats, P).load_bits
    predicted_weighted = star_cost(
        query, dstats, P, machines=MACHINES
    ).load_bits
    measured_uniform = measured_makespan(uniform, MACHINES)
    measured_weighted = measured_makespan(weighted, MACHINES)

    assert predicted_weighted < predicted_uniform
    assert measured_weighted < measured_uniform
    # The report's own accounting agrees with the recomputation.
    assert weighted.report.makespan_bits == pytest.approx(measured_weighted)

    report_table(
        "Heterogeneous cluster (4x1 + 4x4), star join T2: "
        "speed-weighted vs uniform shares",
        [
            f"{'routing':>10} {'predicted span':>15} {'measured span':>14}",
            f"{'uniform':>10} {predicted_uniform:>15.0f} "
            f"{measured_uniform:>14.0f}",
            f"{'weighted':>10} {predicted_weighted:>15.0f} "
            f"{measured_weighted:>14.0f}",
            "  measured improvement: "
            f"{measured_uniform / measured_weighted:.2f}x",
        ],
    )


def test_heterogeneous_star_latency(benchmark):
    """Timed leg for the trajectory file, makespan facts in extra_info.

    ``collect_trajectory.py`` keeps ``extra_info`` alongside the
    wall-clock stats, so ``BENCH_trajectory.json`` tracks the
    2-class cluster's predicted/measured makespan win over releases,
    not just how long the run took.
    """
    query = star_query(2)
    db = matching_database(query, m=4_000, n=16_000, seed=7)
    dstats = DataStatistics.from_database(query, db, P)

    uniform = run_star_skew(query, db, P, seed=7)
    weighted = benchmark(
        lambda: run_star_skew(query, db, P, seed=7, machines=MACHINES)
    )
    measured_uniform = measured_makespan(uniform, MACHINES)
    measured_weighted = measured_makespan(weighted, MACHINES)
    assert measured_weighted < measured_uniform
    benchmark.extra_info["machines"] = MACHINES.describe()
    benchmark.extra_info["predicted_makespan_uniform"] = round(
        star_cost(query, dstats, P).load_bits, 1
    )
    benchmark.extra_info["predicted_makespan_weighted"] = round(
        star_cost(query, dstats, P, machines=MACHINES).load_bits, 1
    )
    benchmark.extra_info["measured_makespan_uniform"] = round(
        measured_uniform, 1
    )
    benchmark.extra_info["measured_makespan_weighted"] = round(
        measured_weighted, 1
    )


def test_triangle_hypercube_weighted_vs_uniform_makespan(report_table):
    query = triangle_query()
    db = matching_database(query, m=3_000, n=12_000, seed=11)
    dstats = DataStatistics.from_database(query, db, P)
    truth = evaluate(query, db)

    uniform = run_hypercube(query, db, P, seed=11)
    weighted = run_hypercube(query, db, P, seed=11, machines=MACHINES)
    assert uniform.answers == truth and weighted.answers == truth

    predicted_uniform = hypercube_cost(query, dstats, P).load_bits
    predicted_weighted = hypercube_cost(
        query, dstats, P, machines=MACHINES
    ).load_bits
    measured_uniform = measured_makespan(uniform, MACHINES)
    measured_weighted = measured_makespan(weighted, MACHINES)

    # The share grid's per-dimension marginal weighting is the rank-1
    # approximation -- weaker than the star's exact 1-D case, but it
    # must still strictly pay off on both axes.
    assert predicted_weighted < predicted_uniform
    assert measured_weighted < measured_uniform

    report_table(
        "Heterogeneous cluster (4x1 + 4x4), triangle HyperCube: "
        "speed-weighted vs uniform shares",
        [
            f"{'routing':>10} {'predicted span':>15} {'measured span':>14}",
            f"{'uniform':>10} {predicted_uniform:>15.0f} "
            f"{measured_uniform:>14.0f}",
            f"{'weighted':>10} {predicted_weighted:>15.0f} "
            f"{measured_weighted:>14.0f}",
            "  measured improvement: "
            f"{measured_uniform / measured_weighted:.2f}x",
        ],
    )
