"""E12 -- Section 5.2/5.3: round lower bounds from (eps, r)-plans.

Regenerates Corollary 5.15 (chains), Corollary 5.17 (tree-like),
Lemma 5.18 (cycles), validates the Lemma 5.6/5.7 plan constructions
against Definition 5.5, and evaluates the Theorem 5.11 reported-
fraction bound at the critical load.
"""

from __future__ import annotations



from repro.core.families import chain_query
from repro.multiround.gamma import chain_rounds_upper_bound, rounds_upper_bound
from repro.multiround.good_sets import (
    chain_epsilon_r_plan,
    cycle_epsilon_r_plan,
    validate_plan,
)
from repro.multiround.lowerbounds import (
    beta_constant,
    chain_round_lower_bound,
    connected_components_round_lower_bound,
    cycle_round_lower_bound,
    load_constant_for_failure,
    reported_fraction_bound,
    tau_star_of_plan,
    tree_like_round_lower_bound,
)


def test_chain_bounds_table(report_table):
    lines = [f"{'k':>4} {'eps':>5} {'lower':>6} {'upper':>6} {'plan r':>7}"]
    for k in (8, 16, 32, 64):
        for eps in (0.0, 0.5):
            lower = chain_round_lower_bound(k, eps)
            upper = chain_rounds_upper_bound(k, eps)
            plan = chain_epsilon_r_plan(k, eps)
            validate_plan(plan)
            assert lower == upper  # tight for chains
            assert plan.round_lower_bound == lower
            lines.append(
                f"{k:>4} {eps:>5.2f} {lower:>6} {upper:>6} {plan.r:>7}"
            )
    report_table(
        "Corollary 5.15: chain round bounds (tight, plan-certified)", lines
    )


def test_cycle_bounds_table(report_table):
    lines = [f"{'k':>4} {'lower (5.18)':>12} {'upper (5.4)':>11} {'gap':>4}"]
    from repro.core.families import cycle_query

    for k in (5, 6, 8, 12, 16):
        lower = cycle_round_lower_bound(k, 0.0)
        upper = rounds_upper_bound(cycle_query(k), 0.0)
        assert 0 <= upper - lower <= 1  # the paper's <= 1 gap
        if k > 3:
            plan = cycle_epsilon_r_plan(k, 0.0)
            validate_plan(plan)
            assert plan.round_lower_bound <= upper
        lines.append(f"{k:>4} {lower:>12} {upper:>11} {upper - lower:>4}")
    report_table("Lemma 5.18 vs Lemma 5.4: cycle round bounds", lines)


def test_tree_like_bounds(report_table):
    lines = [f"{'query':>6} {'diam':>5} {'lower (5.17)':>12} {'upper':>6}"]
    for k in (4, 8, 16):
        q = chain_query(k)
        lower = tree_like_round_lower_bound(q, 0.0)
        upper = chain_rounds_upper_bound(k, 0.0)
        assert 0 <= upper - lower <= 1
        lines.append(f"{q.name:>6} {q.diameter:>5} {lower:>12} {upper:>6}")
    report_table("Corollary 5.17: tree-like round bounds (gap <= 1)", lines)


def test_theorem_5_11_constants(report_table):
    lines = [
        f"{'k':>4} {'r':>3} {'tau*(M)':>8} {'beta':>8} "
        f"{'critical c':>11}   (eps=0, p=2^10)"
    ]
    p = 2**10
    for k in (8, 16, 32):
        plan = chain_epsilon_r_plan(k, 0.0)
        tau_m = tau_star_of_plan(plan)
        beta = beta_constant(plan)
        c = load_constant_for_failure(plan, p)
        # At load c*M/p the fraction is below 1/9 (failure regime).
        m_bits = 2**24
        fraction = reported_fraction_bound(plan, 0.99 * c * m_bits / p, m_bits, p)
        assert fraction < 1 / 9
        lines.append(
            f"{k:>4} {plan.r:>3} {tau_m:>8.2f} {beta:>8.3f} {c:>11.4g}"
        )
    report_table("Theorem 5.11: beta(q, M), tau*(M), critical load", lines)


def test_connected_components_formula(report_table):
    lines = [f"{'log2 p':>7} {'round lower bound':>18}"]
    values = []
    for e in (16, 64, 256, 1024, 4096):
        v = connected_components_round_lower_bound(2**e, 0.0)
        values.append(v)
        lines.append(f"{e:>7} {v:>18}")
    assert values == sorted(values)
    assert values[-1] > values[0]
    lines.append("growth is linear in log p: the Omega(log p) of Thm 5.20")
    report_table("Theorem 5.20: CC round lower bound vs p", lines)


def test_benchmark_plan_validation(benchmark):
    plan = chain_epsilon_r_plan(32, 0.0)
    benchmark(validate_plan, plan)
