"""Shared infrastructure for the benchmark/reproduction harness.

Every bench regenerates one table, figure-shaped tradeoff, or worked
example from the paper and registers a "paper vs measured" table via
the ``report_table`` fixture.  Tables are printed in the terminal
summary (after the pytest-benchmark timing block), so they appear in
``bench_output.txt`` without needing ``-s``.
"""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, list[str]]] = []


def pytest_collection_modifyitems(config, items):
    """Keep reproduction-table tests alive under ``--benchmark-only``.

    pytest-benchmark skips tests that do not request the ``benchmark``
    fixture; the table tests are the point of this harness, so they get
    the fixture injected (unused) and run in both modes.
    """
    for item in items:
        names = getattr(item, "fixturenames", None)
        if names is not None and "benchmark" not in names:
            names.append("benchmark")


@pytest.fixture
def report_table():
    """Register a titled table to print in the terminal summary."""

    def record(title: str, rows: list[str]) -> None:
        _REPORTS.append((title, list(rows)))

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "paper reproduction tables")
    for title, rows in _REPORTS:
        tr.write_line("")
        tr.write_line(f"--- {title} ---")
        for row in rows:
            tr.write_line(row)
    tr.write_line("")
