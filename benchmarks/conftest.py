"""Shared infrastructure for the benchmark/reproduction harness.

Every bench regenerates one table, figure-shaped tradeoff, or worked
example from the paper and registers a "paper vs measured" table via
the ``report_table`` fixture.  Tables are printed in the terminal
summary (after the pytest-benchmark timing block), so they appear in
``bench_output.txt`` without needing ``-s``.
"""

from __future__ import annotations

import pathlib

import pytest

_REPORTS: list[tuple[str, list[str]]] = []
_BENCH_DIR = pathlib.Path(__file__).parent


@pytest.hookimpl(hookwrapper=True)
def pytest_collection_modifyitems(config, items):
    """Keep reproduction-table tests alive under ``--benchmark-only``.

    pytest-benchmark marks every test that does not request the
    ``benchmark`` fixture as skipped when ``--benchmark-only`` is
    active; the table tests are the point of this harness.  The wrapper
    snapshots this directory's marker lists before the other plugins'
    hooks run and restores them afterwards, undoing whatever skip the
    benchmark plugin added without matching on its (unversioned) reason
    text.  Author-declared markers (``skipif`` gates etc.) live in the
    snapshot and survive.  (Injecting the unused fixture instead would
    make every test emit a ``PytestBenchmarkWarning`` about the fixture
    never being called.)
    """
    active = config.getoption("--benchmark-only", default=False)
    snapshots = {}
    if active:
        for item in items:
            path = getattr(item, "path", None)
            if path is not None and _BENCH_DIR in path.parents:
                snapshots[item] = list(item.own_markers)
    yield
    for item, markers in snapshots.items():
        item.own_markers[:] = markers


@pytest.fixture
def report_table():
    """Register a titled table to print in the terminal summary."""

    def record(title: str, rows: list[str]) -> None:
        _REPORTS.append((title, list(rows)))

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "paper reproduction tables")
    for title, rows in _REPORTS:
        tr.write_line("")
        tr.write_line(f"--- {title} ---")
        for row in rows:
            tr.write_line(row)
    tr.write_line("")
