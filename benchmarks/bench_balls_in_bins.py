"""E14 -- Appendix A: weighted balls-in-bins and HyperCube partitions.

* Theorem A.1/A.2: empirical P(max bin >= (1+delta) m/K) never exceeds
  the closed-form tail bounds (and the KL bound dominates the h-bound).
* Theorem A.5 (no promise): skewed single-column relations land on a
  grid slice -- max load ~ m / min_i p_i.
* Theorem A.6 (with promise): bounded-degree relations spread at
  ~ m/p across the full grid.
"""

from __future__ import annotations


from repro.data.generators import matching_relation
from repro.hashing.balls import (
    adversarial_weights,
    max_load_exceed_probability,
    simulate_grid_partition,
    simulate_weighted_balls,
    weighted_balls_tail_bound,
    weighted_balls_tail_bound_kl,
)


def test_tail_bounds_hold_empirically(report_table):
    m, k, beta = 8_000, 8, 0.02
    weights = adversarial_weights(m, k, beta, seed=83)
    result = simulate_weighted_balls(weights, k, trials=60, seed=83)
    lines = [
        f"{'delta':>6} {'empirical P':>11} {'Thm A.1 bound':>13} "
        f"{'Thm A.2 (KL)':>13}"
    ]
    for delta in (0.1, 0.2, 0.4, 0.8):
        empirical = max_load_exceed_probability(result, delta)
        bound_h = min(1.0, weighted_balls_tail_bound(k, beta, delta))
        bound_kl = min(1.0, weighted_balls_tail_bound_kl(k, beta, delta))
        assert bound_kl <= bound_h + 1e-12
        assert empirical <= bound_h + 0.05
        lines.append(
            f"{delta:>6.1f} {empirical:>11.3f} {bound_h:>13.4f} "
            f"{bound_kl:>13.4f}"
        )
    report_table(
        f"Appendix A: weighted balls in bins (m={m}, K={k}, beta={beta})",
        lines,
    )


def test_grid_partition_with_promise(report_table):
    # Theorem A.6: a matching relation (degrees 1) on a 4x4 grid
    # concentrates near m/16.
    rel = matching_relation("R", 2, 1600, 10_000, seed=89)
    result = simulate_grid_partition(
        list(rel.tuples), [4, 4], trials=20, seed=89
    )
    mean = result.mean_load
    peak = max(result.max_loads)
    assert peak <= 2.0 * mean
    report_table(
        "Theorem A.6: grid partition with the degree promise",
        [
            f"m = 1600 over a 4x4 grid: mean bin = {mean:.0f} tuples",
            f"worst max bin over 20 trials = {peak:.0f} "
            f"({peak / mean:.2f}x the mean)",
        ],
    )


def test_grid_partition_without_promise(report_table):
    # Theorem A.5 tightness: all tuples share the first coordinate, so
    # only one grid row is used: max >= m / p_2.
    tuples = [(7, i) for i in range(1600)]
    result = simulate_grid_partition(tuples, [4, 4], trials=10, seed=97)
    floor_load = 1600 / 4
    assert min(result.max_loads) >= floor_load
    report_table(
        "Theorem A.5: grid partition without the promise (skewed column)",
        [
            "all tuples share attribute 1: only a 1x4 slice is hit",
            f"max bin >= m/p_2 = {floor_load:.0f} tuples in every trial "
            f"(observed min {min(result.max_loads):.0f})",
        ],
    )


def test_benchmark_balls_simulation(benchmark):
    weights = adversarial_weights(4000, 8, 0.05, seed=1)
    benchmark(simulate_weighted_balls, weights, 8, 10, 1)
