"""E13 -- Theorem 5.20 as an experiment: CC rounds grow with path length.

The theorem's graph family (layered matchings whose components realize
the answers of L_k) forces Omega(log p) rounds at bounded load.  We run
the tuple-based hash-to-min algorithm on that family: measured rounds
grow logarithmically in the path length (the upper-bound shape) while
diameter-bound label propagation pays the full k -- bracketing the
Theta(log) frontier the theorem establishes.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.data.generators import layered_path_graph
from repro.multiround.connected import connected_components_mpc


def test_rounds_vs_path_length(report_table):
    p = 8
    lines = [
        f"{'k (path len)':>12} {'hash-to-min':>12} {'label prop':>11} "
        f"{'log2 k':>7}"
    ]
    h2m_rounds = []
    for k in (4, 8, 16, 32, 64):
        edges, n = layered_path_graph(k, 4, seed=73)
        h2m = connected_components_mpc(edges, n, p=p, seed=3)
        lp = connected_components_mpc(
            edges, n, p=p, seed=3, algorithm="label_propagation"
        )
        assert h2m.converged and lp.converged
        g = nx.Graph(edges)
        g.add_nodes_from(range(n))
        truth = {frozenset(c) for c in nx.connected_components(g)}
        assert {frozenset(c) for c in h2m.components().values()} == truth
        assert {frozenset(c) for c in lp.components().values()} == truth
        h2m_rounds.append(h2m.rounds)
        lines.append(
            f"{k:>12} {h2m.rounds:>12} {lp.rounds:>11} "
            f"{math.log2(k):>7.1f}"
        )
        # Label propagation pays the diameter; hash-to-min stays ~log.
        assert lp.rounds >= k
        assert h2m.rounds <= 4 * math.log2(k) + 4
    # Logarithmic growth: each doubling of k adds ~1 round.
    diffs = [b - a for a, b in zip(h2m_rounds, h2m_rounds[1:])]
    assert all(0 <= d <= 3 for d in diffs)
    report_table(
        "Theorem 5.20 family: CC rounds vs path length (p=8)", lines
    )


def test_load_stays_bounded(report_table):
    # Two algorithms, two load profiles: label propagation keeps the
    # per-round load at O(m/p) but pays diameter rounds; hash-to-min
    # reaches O(log) rounds at the cost of aggregating each component
    # at its minimum vertex (peak <= ~component size x fair share).
    k, layer, p = 16, 32, 8
    edges, n = layered_path_graph(k, layer, seed=79)
    m = len(edges)
    fair = 2 * m / p
    lp = connected_components_mpc(
        edges, n, p=p, seed=5, algorithm="label_propagation"
    )
    h2m = connected_components_mpc(edges, n, p=p, seed=5)
    assert lp.converged and h2m.converged
    lp_peak = max(r.max_tuples for r in lp.report.rounds)
    h2m_peak = max(r.max_tuples for r in h2m.report.rounds)
    assert lp_peak <= 3 * fair  # flooding stays at the fair share
    assert h2m_peak <= 2 * fair * (k + 1)  # component-minimum hotspot
    report_table(
        "Theorem 5.20 family: per-round tuple loads",
        [
            f"m = {m} edges, p = {p}, fair share 2m/p = {fair:.0f} tuples",
            f"label propagation: peak {lp_peak} tuples "
            f"({lp_peak / fair:.2f}x fair), {lp.rounds} rounds",
            f"hash-to-min: peak {h2m_peak} tuples "
            f"({h2m_peak / fair:.2f}x fair), {h2m.rounds} rounds",
            "rounds/load tradeoff: log rounds cost a component-size "
            "factor in load",
        ],
    )


def test_benchmark_hash_to_min(benchmark):
    edges, n = layered_path_graph(16, 8, seed=1)
    benchmark(connected_components_mpc, edges, n, 8, 1)
