"""E3 -- the paper's in-text worked examples, regenerated.

* Example 2.3: the tight optimal packing (1, 0, 1) of L3, tau* = 2.
* Section 2.2: chi arithmetic for L5/{S2,S4} and K4/M.
* Example 3.17: the five vertices of pk(C3), their loads L(u, M, p),
  and the broadcast-to-HyperCube crossover at p = M/M1.
* Example 5.19: round bounds for C5 (open gap) and C6 (tight at 3).
"""

from __future__ import annotations

import pytest

from repro.bounds.one_round import load_formula, optimal_packing_vertex
from repro.core.families import chain_query, cycle_query, k4_query, triangle_query
from repro.core.packing import (
    fractional_vertex_cover_number,
    is_edge_packing,
    is_tight,
    packing_polytope_vertices,
)
from repro.core.stats import Statistics
from repro.multiround.gamma import rounds_upper_bound
from repro.multiround.lowerbounds import cycle_round_lower_bound


def test_example_2_3(report_table):
    q = chain_query(3)
    u = {"S1": 1.0, "S2": 0.0, "S3": 1.0}
    assert is_edge_packing(q, u) and is_tight(q, u)
    tau = fractional_vertex_cover_number(q)
    assert tau == pytest.approx(2.0)
    report_table(
        "Example 2.3: L3 packings",
        [
            "u = (1, 0, 1) is a tight edge packing: confirmed",
            f"tau*(L3) paper = 2, computed = {tau:g}",
        ],
    )


def test_characteristic_arithmetic(report_table):
    l5 = chain_query(5)
    contracted = l5.contract(["S2", "S4"])
    k4 = k4_query()
    m = k4.subquery(["S1", "S2", "S3"])
    k4c = k4.contract(["S1", "S2", "S3"])
    rows = [
        f"chi(L5) paper = 0, computed = {l5.characteristic}",
        f"chi(L5/{{S2,S4}}) paper = 0, computed = {contracted.characteristic}",
        f"chi(K4) paper = 3, computed = {k4.characteristic}",
        f"chi(M) paper = 1, computed = {m.characteristic}",
        f"chi(K4/M) paper = 2, computed = {k4c.characteristic}",
    ]
    assert l5.characteristic == 0
    assert contracted.characteristic == 0
    assert k4.characteristic == 3
    assert m.characteristic == 1
    assert k4c.characteristic == 2
    report_table("Section 2.2: characteristic arithmetic", rows)


def test_example_3_17_vertex_table(report_table):
    q = triangle_query()
    m1, m = 1_000, 100_000
    stats = Statistics(q, {"S1": m1, "S2": m, "S3": m}, domain_size=2**20)
    bits = stats.bits_vector()
    p = 1_000
    lines = [f"{'u':>18} {'L(u, M, p)':>14}   (p = {p})"]
    expected = {
        (0.5, 0.5, 0.5): (bits["S1"] * bits["S2"] * bits["S3"]) ** (1 / 3)
        / p ** (2 / 3),
        (1.0, 0.0, 0.0): bits["S1"] / p,
        (0.0, 1.0, 0.0): bits["S2"] / p,
        (0.0, 0.0, 1.0): bits["S3"] / p,
        (0.0, 0.0, 0.0): 0.0,
    }
    vertices = packing_polytope_vertices(q)
    assert len(vertices) == 5
    for u in vertices:
        key = tuple(round(u[r], 6) for r in q.relation_names)
        value = load_formula(u, bits, p)
        assert value == pytest.approx(expected[key], abs=1e-6)
        lines.append(f"{str(key):>18} {value:>14.1f}")
    report_table("Example 3.17: the five vertices of pk(C3)", lines)


def test_example_3_17_crossover(report_table):
    q = triangle_query()
    m1, m = 1_000, 100_000
    stats = Statistics(q, {"S1": m1, "S2": m, "S3": m}, domain_size=2**20)
    crossover = m / m1  # p = M/M1 = 100
    lines = [f"{'p':>8} {'optimal packing':>22} {'speedup exponent':>17}"]
    for p, expect_broadcast in ((10, True), (50, True), (500, False), (5000, False)):
        u, _ = optimal_packing_vertex(q, stats, p)
        broadcast = u["S1"] == pytest.approx(0.0) and max(u.values()) == pytest.approx(1.0)
        assert broadcast == expect_broadcast, (p, u)
        exponent = 1.0 / sum(u.values())
        label = "broadcast S1 (0,1,0)-like" if broadcast else "HyperCube (1/2,1/2,1/2)"
        lines.append(f"{p:>8} {label:>22} {exponent:>17.3f}")
    lines.append(f"paper crossover at p = M/M1 = {crossover:.0f}")
    report_table("Example 3.17: broadcast/HyperCube crossover", lines)


def test_example_5_19(report_table):
    rows = []
    for k, lower, upper in ((5, 2, 3), (6, 3, 3)):
        got_lower = cycle_round_lower_bound(k, 0.0)
        got_upper = rounds_upper_bound(cycle_query(k), 0.0)
        assert got_lower == lower and got_upper == upper
        gap = "tight" if lower == upper else "open gap"
        rows.append(
            f"C{k}: lower = {got_lower}, upper = {got_upper} ({gap})"
        )
    report_table("Example 5.19: C5 / C6 round bounds at eps = 0", rows)


def test_benchmark_polytope_enumeration(benchmark):
    q = k4_query()
    benchmark(packing_polytope_vertices, q)
