"""E8 -- Example 4.1 and Section 4.1: skew kills the vanilla hash join.

The simple join S1(x,z), S2(y,z) hashed on z has load O(M/p) without
skew but Theta(M) when every tuple shares one z value.  The
skew-oblivious LP (18) shares (p^{1/3} on each variable) cap the damage
at M/p^{1/3}.  We sweep the planted-hitter fraction and tabulate all
three: vanilla hash join, skew-oblivious HC, and the Corollary 4.3
prediction.
"""

from __future__ import annotations


from repro.core.families import simple_join_query
from repro.data.generators import planted_heavy_hitter_database
from repro.hypercube.algorithm import run_hypercube
from repro.hypercube.analysis import predicted_load_bits_skewed
from repro.join.multiway import evaluate
from repro.skew.oblivious import run_skew_oblivious_hypercube


def test_skew_sweep(report_table):
    query = simple_join_query()
    m, p = 540, 27
    lines = [
        f"{'hitter %':>8} {'hash join L':>12} {'oblivious L':>12} "
        f"{'ratio':>6}   (m={m}, p={p})"
    ]
    ratios = []
    for fraction in (0.0, 0.25, 0.5, 1.0):
        db = planted_heavy_hitter_database(
            query, m, 2**14, "z", fraction, 7, seed=37
        )
        truth = evaluate(query, db)
        vanilla = run_hypercube(query, db, p, exponents={"z": 1.0}, seed=37)
        oblivious = run_skew_oblivious_hypercube(query, db, p, seed=37)
        assert vanilla.answers == truth
        assert oblivious.answers == truth
        ratio = vanilla.max_load_bits / oblivious.max_load_bits
        ratios.append(ratio)
        lines.append(
            f"{fraction:>8.0%} {vanilla.max_load_bits:>12.0f} "
            f"{oblivious.max_load_bits:>12.0f} {ratio:>6.2f}"
        )
    # Without skew the hash join wins; with full skew the oblivious
    # shares win by ~ p^{1/3}-ish.
    assert ratios[0] < 1.0
    assert ratios[-1] > 2.0
    report_table(
        "Example 4.1: hash join vs skew-oblivious HC under planted skew",
        lines,
    )


def test_corollary_4_3_prediction(report_table):
    # The oblivious algorithm's measured load under *full* skew matches
    # the Corollary 4.3 prediction max_j M_j / min-share.
    query = simple_join_query()
    m, p = 540, 27
    db = planted_heavy_hitter_database(query, m, 2**14, "z", 1.0, 7, seed=41)
    stats = db.statistics(query)
    result = run_skew_oblivious_hypercube(query, db, p, seed=41)
    predicted = predicted_load_bits_skewed(query, stats, result.shares)
    ratio = result.max_load_bits / predicted
    assert 0.3 <= ratio <= 3.0
    report_table(
        "Corollary 4.3: oblivious-HC load prediction (full skew)",
        [
            f"shares: {result.shares}",
            f"measured L = {result.max_load_bits:.0f} bits",
            f"predicted max_j M_j/min-share = {predicted:.0f} bits",
            f"ratio = {ratio:.2f}",
        ],
    )


def test_benchmark_oblivious_join(benchmark):
    query = simple_join_query()
    db = planted_heavy_hitter_database(query, 400, 2**13, "z", 1.0, 3, seed=1)
    benchmark(run_skew_oblivious_hypercube, query, db, 27, 1)
