"""Ablation -- the paper's max-load share objective vs Afrati-Ullman's.

Section 3.1: "Afrati and Ullman compute the shares by optimizing the
total load [...] Our approach is to optimize the maximum load per
relation."  This bench quantifies the design choice: on equal-size
relations the two objectives coincide, but with unequal sizes the
total-load optimum can be far off the max-load optimum -- which is the
quantity the MPC model (and Theorem 3.5's lower bound) cares about.

A second ablation measures the cost of share *integerization*: real
clusters need integer shares, and rounding ``p^{e_i}`` can cost a
constant factor over the fractional LP prediction.
"""

from __future__ import annotations


import pytest

from repro.core.families import (
    chain_query,
    simple_join_query,
    spk_query,
    triangle_query,
)
from repro.core.shares import (
    afrati_ullman_share_exponents,
    integerize_shares,
    share_exponents,
)
from repro.core.stats import Statistics
from repro.hypercube.analysis import predicted_load_bits


def test_objective_ablation(report_table):
    p = 64
    cases = [
        (triangle_query(), {"S1": 2**17, "S2": 2**17, "S3": 2**17}),
        (triangle_query(), {"S1": 2**10, "S2": 2**17, "S3": 2**17}),
        (chain_query(3), {"S1": 2**10, "S2": 2**18, "S3": 2**18}),
        (simple_join_query(), {"S1": 2**12, "S2": 2**18}),
        (chain_query(4), {"S1": 2**18, "S2": 2**12, "S3": 2**18, "S4": 2**12}),
        (spk_query(2), {"R1": 2**18, "S1": 2**12, "R2": 2**18, "S2": 2**12}),
    ]
    lines = [
        f"{'query':>6} {'sizes':>10} {'AU max-load':>12} "
        f"{'BKS max-load':>13} {'AU/BKS':>7}"
    ]
    ratios = []
    for query, sizes in cases:
        stats = Statistics(query, sizes, 2**20)
        au = afrati_ullman_share_exponents(query, stats, p)
        bks = share_exponents(query, stats, p)
        ratio = au.load_bits / bks.load_bits
        ratios.append(ratio)
        # The paper's objective is optimal for max load by Thm 3.15:
        # AU can only be equal or worse.
        assert ratio >= 1.0 - 1e-6
        kind = "equal" if len(set(sizes.values())) == 1 else "skewed"
        lines.append(
            f"{query.name:>6} {kind:>10} {au.load_bits:>12.0f} "
            f"{bks.load_bits:>13.0f} {ratio:>7.2f}"
        )
    # Equal sizes: objectives coincide; unequal: AU strictly worse
    # somewhere (the 8x L3 case).
    assert ratios[0] == pytest.approx(1.0, rel=1e-3)
    assert max(ratios) > 3.0
    report_table(
        "Ablation: max-load (paper) vs total-load (Afrati-Ullman) shares",
        lines,
    )


def test_integerization_ablation(report_table):
    # Fractional LP load vs the load of realized integer shares.
    query = triangle_query()
    stats = Statistics.uniform(query, 2**18, domain_size=2**20)
    lines = [
        f"{'p':>6} {'fractional L':>13} {'integerized L':>14} {'ratio':>6}"
    ]
    worst = 0.0
    for p in (8, 27, 64, 100, 500, 1000):
        sol = share_exponents(query, stats, p)
        shares = integerize_shares(sol.exponents, p)
        realized = predicted_load_bits(query, stats, shares)
        ratio = realized / sol.load_bits
        worst = max(worst, ratio)
        assert ratio >= 1.0 - 1e-9  # integerization can't beat the LP
        lines.append(
            f"{p:>6} {sol.load_bits:>13.0f} {realized:>14.0f} {ratio:>6.2f}"
        )
    assert worst <= 4.0  # rounding costs a small constant
    lines.append(f"worst integerization penalty: {worst:.2f}x")
    report_table(
        "Ablation: share integerization penalty (triangle)", lines
    )


def test_benchmark_afrati_ullman(benchmark):
    query = chain_query(3)
    stats = Statistics(query, {"S1": 2**10, "S2": 2**18, "S3": 2**18}, 2**20)
    benchmark(afrati_ullman_share_exponents, query, stats, 64)
