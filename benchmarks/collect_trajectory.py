"""Append condensed benchmark results to the committed trajectory file.

``BENCH_trajectory.json`` at the repo root is an append-only list of
benchmark snapshots -- one entry per (host, version, date) -- so the
performance story of the codebase accumulates *in the repository*
instead of evaporating with CI artifact retention.  Each entry keeps
only what trend analysis needs: the per-benchmark mean/stddev/rounds
plus enough host context (cores, platform, python) to explain why a
single-core runner and a 4-core laptop disagree about pool speedups.

Two modes:

* ``--from-json A.json B.json ...`` condenses existing pytest-benchmark
  artifacts (the files CI already produces) and appends one entry.
* With no inputs it runs the worker-pool benches itself
  (``bench_parallel_engine.py``, ``bench_session_batch.py``) via
  pytest into a temp artifact, then condenses that.

Either mode accepts ``--trace DIR_OR_FILE ...``: communication traces
recorded with ``python -m repro --trace-dir`` (or any
``repro.trace`` JSONL artifact) are condensed into per-run totals --
bits shipped, max per-server load, dropped bits, spill I/O -- and
folded into the entry under ``"traces"``, so the trajectory tracks the
*communication* trend alongside the wall-clock one.

Idempotence: an entry whose ``(host_id, version, benchmarks)`` already
appears verbatim is not appended again, so re-running a CI job does not
duplicate rows.  The file stays sorted by collection time.

Every entry also records its execution context -- resolved worker-pool
kind, machine spec, git commit -- so a trend break can be traced to
"the default pool changed", not just "it got slower".

``--check`` turns the script into a CI perf-regression gate: instead of
appending, the fresh results are compared against the committed
trajectory and the process exits nonzero when a benchmark regressed
beyond ``--tolerance`` (default 1.5x).  Wall-clock means compare only
against the most recent entry from a *comparable host* (same CPU count
and architecture -- a 1-core CI runner cannot regress against a laptop);
deterministic ``extra_info`` facts (e.g. the heterogeneous makespan
comparison) compare host-independently.  No comparable baseline means
the wall-clock comparison is skipped with a note, not failed.

Usage::

    python benchmarks/collect_trajectory.py                 # run + append
    python benchmarks/collect_trajectory.py --from-json bench_planner.json
    python benchmarks/collect_trajectory.py --dry-run       # print, no write
    python benchmarks/collect_trajectory.py --check         # CI perf gate
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_trajectory.json"

#: The benches the no-argument mode runs: the worker-pool seam's
#: engine-level and batch-level scaling numbers.
DEFAULT_BENCHES = (
    "benchmarks/bench_parallel_engine.py",
    "benchmarks/bench_session_batch.py",
    "benchmarks/bench_heterogeneous.py",
)


def host_info() -> dict:
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def repro_version() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import repro

        return repro.__version__
    except Exception:
        return "unknown"
    finally:
        sys.path.pop(0)


def git_sha() -> str | None:
    """The current commit, or None outside a usable git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def execution_context() -> dict:
    """The execution-environment facts that explain an entry's numbers.

    A trend break reads differently when the default pool flipped from
    serial to process, or the machines default became heterogeneous,
    between two entries -- so record both, plus the commit.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.config import default_machines, default_pool

        machines = default_machines()
        context = {
            "pool": default_pool(),
            "machines": (
                machines.describe() if machines is not None else None
            ),
        }
    except Exception:
        context = {"pool": None, "machines": None}
    finally:
        sys.path.pop(0)
    context["git_sha"] = git_sha()
    return context


def condense(artifact: dict) -> list[dict]:
    """pytest-benchmark JSON -> the few numbers worth keeping."""
    rows = []
    for bench in artifact.get("benchmarks", []):
        stats = bench.get("stats", {})
        row = {
            "name": bench.get("fullname") or bench.get("name"),
            "mean_s": round(float(stats.get("mean", 0.0)), 6),
            "stddev_s": round(float(stats.get("stddev", 0.0)), 6),
            "rounds": int(stats.get("rounds", 0)),
        }
        # Bench-declared facts (e.g. the heterogeneous makespan
        # comparison) ride along so the trajectory tracks them too.
        if bench.get("extra_info"):
            row["extra_info"] = bench["extra_info"]
        rows.append(row)
    rows.sort(key=lambda r: r["name"] or "")
    return rows


def condense_traces(paths: list[str]) -> list[dict]:
    """Trace JSONL artifacts -> per-run communication totals.

    Uses :class:`repro.trace.TraceQuery` (src/ is put on the path the
    same way ``repro_version`` does), keeping one row per artifact:
    the run footer's totals plus spill I/O when the run had any.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.trace.cli import iter_trace_files
        from repro.trace.query import TraceQuery
    finally:
        sys.path.pop(0)

    rows = []
    for raw in paths:
        for path in iter_trace_files(raw):
            query = TraceQuery(path)
            run = query.run() or {}
            row = {
                "trace": path.name,
                "strategy": run.get("strategy"),
                "p": run.get("p"),
                "rounds": run.get("rounds"),
                "total_bits": run.get("total_bits", query.total_bits()),
                "max_load_bits": run.get("max_load_bits"),
                "dropped_bits": run.get("dropped_bits", 0.0),
            }
            spill = query.spill_totals()
            if spill["writes"] or spill["reads"]:
                row["spill"] = spill
            rows.append(row)
    rows.sort(key=lambda r: r["trace"])
    return rows


def run_benches(paths: tuple[str, ...]) -> dict:
    """Run the given bench files and return their benchmark artifact."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = pathlib.Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
        )
        command = [
            sys.executable, "-m", "pytest", *paths,
            "--benchmark-only", f"--benchmark-json={artifact_path}",
            "-q", "--benchmark-warmup=off", "--benchmark-min-rounds=3",
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(
                f"benchmark run failed with status {completed.returncode}"
            )
        return json.loads(artifact_path.read_text())


def load_trajectory(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text())


def append_entry(trajectory: list[dict], entry: dict) -> bool:
    """Append unless an identical measurement is already recorded."""
    for existing in trajectory:
        if (
            existing.get("host") == entry["host"]
            and existing.get("version") == entry["version"]
            and existing.get("benchmarks") == entry["benchmarks"]
        ):
            return False
    trajectory.append(entry)
    trajectory.sort(key=lambda e: e.get("collected_at", ""))
    return True


def comparable_hosts(a: dict, b: dict) -> bool:
    """Wall-clock numbers transfer only between matching hosts."""
    return (
        a.get("cpus") == b.get("cpus")
        and a.get("machine") == b.get("machine")
    )


def check_against_baseline(
    benchmarks: list[dict],
    trajectory: list[dict],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """The perf gate: ``(failures, notes)`` for fresh vs recorded.

    Wall-clock means are compared per benchmark against the most recent
    entry from a comparable host; deterministic ``extra_info`` numeric
    facts are compared against the most recent entry carrying them,
    host-independently (a makespan in model bits does not depend on the
    machine that computed it).  A fresh value more than ``tolerance``
    times the baseline is a failure; benchmarks the baseline never saw
    pass silently (they have no history to regress against).
    """
    host = host_info()
    failures: list[str] = []
    notes: list[str] = []

    baseline = None
    for entry in reversed(trajectory):
        if comparable_hosts(entry.get("host", {}), host):
            baseline = entry
            break
    if baseline is None:
        notes.append(
            "no comparable-host baseline entry (cpus/arch differ); "
            "wall-clock means not compared"
        )
    else:
        base_rows = {
            row["name"]: row for row in baseline.get("benchmarks", [])
        }
        for row in benchmarks:
            base = base_rows.get(row["name"])
            if base is None or not base.get("mean_s"):
                continue
            ratio = row["mean_s"] / base["mean_s"]
            if ratio > tolerance:
                failures.append(
                    f"{row['name']}: mean {row['mean_s']:.6f}s is "
                    f"{ratio:.2f}x the {base['mean_s']:.6f}s baseline "
                    f"from {baseline.get('collected_at')} "
                    f"(tolerance {tolerance:g}x)"
                )

    latest_facts: dict[str, dict] = {}
    for entry in trajectory:  # chronological: later entries win
        for row in entry.get("benchmarks", []):
            if row.get("extra_info"):
                latest_facts[row["name"]] = row["extra_info"]
    for row in benchmarks:
        base_info = latest_facts.get(row["name"])
        info = row.get("extra_info")
        if not base_info or not info:
            continue
        for key, base_value in base_info.items():
            value = info.get(key)
            if (
                isinstance(base_value, bool)
                or not isinstance(base_value, (int, float))
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
                or base_value <= 0
            ):
                continue
            ratio = value / base_value
            if ratio > tolerance:
                failures.append(
                    f"{row['name']} extra_info[{key!r}]: {value:g} is "
                    f"{ratio:.2f}x the recorded {base_value:g} "
                    f"(tolerance {tolerance:g}x)"
                )
    return failures, notes


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Condense benchmark JSON into BENCH_trajectory.json."
    )
    parser.add_argument(
        "--from-json", nargs="+", default=None, metavar="ARTIFACT",
        help="condense existing pytest-benchmark artifacts instead of "
             "running the default worker-pool benches",
    )
    parser.add_argument(
        "--trace", nargs="+", default=None, metavar="TRACE",
        help="fold communication-trace totals (JSONL files or "
             "directories from --trace-dir runs) into the entry",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"trajectory file to append to (default {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument(
        "--label", default=None,
        help="optional tag for the entry (e.g. 'ci-ubuntu-py312')",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the condensed entry without touching the file",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="perf-regression gate: compare fresh results against the "
             "committed trajectory instead of appending; exit nonzero "
             "when a benchmark regressed beyond --tolerance",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None, metavar="FILE",
        help="trajectory file to check against (default: --output)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.5, metavar="X",
        help="allowed slowdown factor for --check (default 1.5)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0")

    if args.from_json:
        benchmarks: list[dict] = []
        for name in args.from_json:
            benchmarks.extend(condense(json.loads(
                pathlib.Path(name).read_text()
            )))
    else:
        benchmarks = condense(run_benches(DEFAULT_BENCHES))

    if args.check:
        baseline_path = args.baseline or args.output
        trajectory = load_trajectory(baseline_path)
        failures, notes = check_against_baseline(
            benchmarks, trajectory, args.tolerance
        )
        for note in notes:
            print(f"note: {note}")
        if failures:
            print(f"PERF REGRESSION vs {baseline_path}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            raise SystemExit(1)
        print(
            f"perf check passed: {len(benchmarks)} benchmark(s) vs "
            f"{baseline_path} (tolerance {args.tolerance:g}x)"
        )
        return

    entry = {
        "collected_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "version": repro_version(),
        "host": host_info(),
        "context": execution_context(),
        "benchmarks": benchmarks,
    }
    if args.label:
        entry["label"] = args.label
    if args.trace:
        entry["traces"] = condense_traces(args.trace)

    if args.dry_run:
        json.dump(entry, sys.stdout, indent=2)
        print()
        return

    trajectory = load_trajectory(args.output)
    if append_entry(trajectory, entry):
        args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(
            f"appended entry ({len(benchmarks)} benchmark(s)) -> "
            f"{args.output} now has {len(trajectory)} entr"
            f"{'y' if len(trajectory) == 1 else 'ies'}"
        )
    else:
        print(f"identical entry already recorded in {args.output}; skipped")


if __name__ == "__main__":
    main()
