"""Append condensed benchmark results to the committed trajectory file.

``BENCH_trajectory.json`` at the repo root is an append-only list of
benchmark snapshots -- one entry per (host, version, date) -- so the
performance story of the codebase accumulates *in the repository*
instead of evaporating with CI artifact retention.  Each entry keeps
only what trend analysis needs: the per-benchmark mean/stddev/rounds
plus enough host context (cores, platform, python) to explain why a
single-core runner and a 4-core laptop disagree about pool speedups.

Two modes:

* ``--from-json A.json B.json ...`` condenses existing pytest-benchmark
  artifacts (the files CI already produces) and appends one entry.
* With no inputs it runs the worker-pool benches itself
  (``bench_parallel_engine.py``, ``bench_session_batch.py``) via
  pytest into a temp artifact, then condenses that.

Either mode accepts ``--trace DIR_OR_FILE ...``: communication traces
recorded with ``python -m repro --trace-dir`` (or any
``repro.trace`` JSONL artifact) are condensed into per-run totals --
bits shipped, max per-server load, dropped bits, spill I/O -- and
folded into the entry under ``"traces"``, so the trajectory tracks the
*communication* trend alongside the wall-clock one.

Idempotence: an entry whose ``(host_id, version, benchmarks)`` already
appears verbatim is not appended again, so re-running a CI job does not
duplicate rows.  The file stays sorted by collection time.

Usage::

    python benchmarks/collect_trajectory.py                 # run + append
    python benchmarks/collect_trajectory.py --from-json bench_planner.json
    python benchmarks/collect_trajectory.py --dry-run       # print, no write
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_trajectory.json"

#: The benches the no-argument mode runs: the worker-pool seam's
#: engine-level and batch-level scaling numbers.
DEFAULT_BENCHES = (
    "benchmarks/bench_parallel_engine.py",
    "benchmarks/bench_session_batch.py",
    "benchmarks/bench_heterogeneous.py",
)


def host_info() -> dict:
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def repro_version() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import repro

        return repro.__version__
    except Exception:
        return "unknown"
    finally:
        sys.path.pop(0)


def condense(artifact: dict) -> list[dict]:
    """pytest-benchmark JSON -> the few numbers worth keeping."""
    rows = []
    for bench in artifact.get("benchmarks", []):
        stats = bench.get("stats", {})
        row = {
            "name": bench.get("fullname") or bench.get("name"),
            "mean_s": round(float(stats.get("mean", 0.0)), 6),
            "stddev_s": round(float(stats.get("stddev", 0.0)), 6),
            "rounds": int(stats.get("rounds", 0)),
        }
        # Bench-declared facts (e.g. the heterogeneous makespan
        # comparison) ride along so the trajectory tracks them too.
        if bench.get("extra_info"):
            row["extra_info"] = bench["extra_info"]
        rows.append(row)
    rows.sort(key=lambda r: r["name"] or "")
    return rows


def condense_traces(paths: list[str]) -> list[dict]:
    """Trace JSONL artifacts -> per-run communication totals.

    Uses :class:`repro.trace.TraceQuery` (src/ is put on the path the
    same way ``repro_version`` does), keeping one row per artifact:
    the run footer's totals plus spill I/O when the run had any.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.trace.cli import iter_trace_files
        from repro.trace.query import TraceQuery
    finally:
        sys.path.pop(0)

    rows = []
    for raw in paths:
        for path in iter_trace_files(raw):
            query = TraceQuery(path)
            run = query.run() or {}
            row = {
                "trace": path.name,
                "strategy": run.get("strategy"),
                "p": run.get("p"),
                "rounds": run.get("rounds"),
                "total_bits": run.get("total_bits", query.total_bits()),
                "max_load_bits": run.get("max_load_bits"),
                "dropped_bits": run.get("dropped_bits", 0.0),
            }
            spill = query.spill_totals()
            if spill["writes"] or spill["reads"]:
                row["spill"] = spill
            rows.append(row)
    rows.sort(key=lambda r: r["trace"])
    return rows


def run_benches(paths: tuple[str, ...]) -> dict:
    """Run the given bench files and return their benchmark artifact."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = pathlib.Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
        )
        command = [
            sys.executable, "-m", "pytest", *paths,
            "--benchmark-only", f"--benchmark-json={artifact_path}",
            "-q", "--benchmark-warmup=off", "--benchmark-min-rounds=3",
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(
                f"benchmark run failed with status {completed.returncode}"
            )
        return json.loads(artifact_path.read_text())


def load_trajectory(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text())


def append_entry(trajectory: list[dict], entry: dict) -> bool:
    """Append unless an identical measurement is already recorded."""
    for existing in trajectory:
        if (
            existing.get("host") == entry["host"]
            and existing.get("version") == entry["version"]
            and existing.get("benchmarks") == entry["benchmarks"]
        ):
            return False
    trajectory.append(entry)
    trajectory.sort(key=lambda e: e.get("collected_at", ""))
    return True


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Condense benchmark JSON into BENCH_trajectory.json."
    )
    parser.add_argument(
        "--from-json", nargs="+", default=None, metavar="ARTIFACT",
        help="condense existing pytest-benchmark artifacts instead of "
             "running the default worker-pool benches",
    )
    parser.add_argument(
        "--trace", nargs="+", default=None, metavar="TRACE",
        help="fold communication-trace totals (JSONL files or "
             "directories from --trace-dir runs) into the entry",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"trajectory file to append to (default {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument(
        "--label", default=None,
        help="optional tag for the entry (e.g. 'ci-ubuntu-py312')",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the condensed entry without touching the file",
    )
    args = parser.parse_args(argv)

    if args.from_json:
        benchmarks: list[dict] = []
        for name in args.from_json:
            benchmarks.extend(condense(json.loads(
                pathlib.Path(name).read_text()
            )))
    else:
        benchmarks = condense(run_benches(DEFAULT_BENCHES))

    entry = {
        "collected_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "version": repro_version(),
        "host": host_info(),
        "benchmarks": benchmarks,
    }
    if args.label:
        entry["label"] = args.label
    if args.trace:
        entry["traces"] = condense_traces(args.trace)

    if args.dry_run:
        json.dump(entry, sys.stdout, indent=2)
        print()
        return

    trajectory = load_trajectory(args.output)
    if append_entry(trajectory, entry):
        args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(
            f"appended entry ({len(benchmarks)} benchmark(s)) -> "
            f"{args.output} now has {len(trajectory)} entr"
            f"{'y' if len(trajectory) == 1 else 'ies'}"
        )
    else:
        print(f"identical entry already recorded in {args.output}; skipped")


if __name__ == "__main__":
    main()
