"""E5 -- Theorem 3.15: L_lower == L_upper everywhere.

The paper's tightness theorem: the LP (10) HyperCube load equals the
packing-polytope lower bound for every query and every statistics
vector.  Swept over a query x sizes x p grid plus randomized statistics.
"""

from __future__ import annotations

import random


from repro.bounds.one_round import equivalence_gap, lower_bound, upper_bound
from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    simple_join_query,
    spk_query,
    star_query,
    triangle_query,
)
from repro.core.stats import Statistics

QUERIES = [
    triangle_query(),
    chain_query(3),
    chain_query(5),
    star_query(3),
    cycle_query(4),
    cycle_query(5),
    binom_query(4, 2),
    spk_query(2),
    simple_join_query(),
]


def test_equivalence_grid(report_table):
    lines = [f"{'query':>6} {'p':>6} {'L_lower':>12} {'L_upper':>12} {'gap':>8}"]
    worst = 0.0
    for query in QUERIES:
        for p in (4, 64, 1024):
            stats = Statistics.uniform(query, 2**18, domain_size=2**20)
            lo = lower_bound(query, stats, p)
            hi = upper_bound(query, stats, p)
            gap = abs(hi / lo - 1.0)
            worst = max(worst, gap)
            assert gap < 1e-6, (query.name, p)
            if p == 64:
                lines.append(
                    f"{query.name:>6} {p:>6} {lo:>12.1f} {hi:>12.1f} "
                    f"{hi / lo:>8.6f}"
                )
    lines.append(f"worst relative gap over the whole grid: {worst:.2e}")
    report_table("Theorem 3.15: L_lower = L_upper (equal sizes)", lines)


def test_equivalence_random_statistics(report_table):
    rng = random.Random(99)
    lines = []
    worst = 0.0
    for trial in range(40):
        query = rng.choice(QUERIES)
        p = rng.choice([4, 16, 256])
        sizes = {
            r: rng.randint(2**10, 2**22) for r in query.relation_names
        }
        stats = Statistics(query, sizes, domain_size=2**24)
        gap = abs(equivalence_gap(query, stats, p) - 1.0)
        worst = max(worst, gap)
        assert gap < 1e-5, (query.name, sizes, p)
    lines.append(
        f"40 random (query, sizes, p) draws: worst gap {worst:.2e}"
    )
    report_table("Theorem 3.15: randomized statistics", lines)


def test_benchmark_lower_bound(benchmark):
    query = binom_query(4, 2)
    stats = Statistics.uniform(query, 2**20)
    benchmark(lower_bound, query, stats, 256)
