"""E11 -- Section 5.1: multi-round plans and the rounds/load tradeoff.

* Example 5.2: L16 in 4 rounds of binary joins (load ~ M/p) versus 2
  rounds of 4-way joins (load ~ M/sqrt(p)).
* Example 5.3: SP_k's one-round load M/p^{1/k} versus the two-round
  plan's M/p.
* Lemma 5.4's cycle plan for C6.
"""

from __future__ import annotations


from repro.core.families import spk_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan, cycle_plan, spk_plan


def test_example_5_2_rounds_vs_load(report_table):
    m, p = 256, 16
    lines = [
        f"{'plan':>22} {'rounds':>6} {'max load':>9} {'M_rel':>7}"
    ]
    loads = {}
    for eps, label in ((0.0, "binary (eps=0)"), (0.5, "4-ary (eps=1/2)")):
        plan = chain_plan(16, eps)
        db = matching_database(plan.query, m=m, n=m, seed=61)
        stats = db.statistics(plan.query)
        result = run_plan(plan, db, p, seed=61)
        truth = evaluate(plan.query, db)
        assert result.answers == truth and len(truth) == m
        loads[eps] = result.max_load_bits
        lines.append(
            f"{label:>22} {result.rounds:>6} {result.max_load_bits:>9.0f} "
            f"{stats.bits('S1'):>7.0f}"
        )
    # Fewer rounds cost more load: the 2-round plan's load exceeds the
    # 4-round plan's (p^{1/2} vs p speedup).
    assert loads[0.5] > loads[0.0]
    report_table("Example 5.2: L16 rounds/load tradeoff (p=16)", lines)


def test_example_5_3_spk(report_table):
    k, p, m = 2, 16, 400
    query = spk_query(k)
    db = matching_database(query, m=m, n=m, seed=67)
    stats = db.statistics(query)
    truth = evaluate(query, db)

    one_round = run_hypercube(query, db, p, seed=67)
    assert one_round.answers == truth
    plan = spk_plan(k)
    two_round = run_plan(plan, db, p, seed=67)
    assert two_round.answers == truth

    # One round pays ~ M/p^{1/k}; two rounds get ~ M/p per relation.
    m_bits = stats.bits("R1")
    lines = [
        f"one round (tau* = {k}): L = {one_round.max_load_bits:.0f} bits "
        f"(theory ~ M/p^(1/{k}) = {m_bits / p ** (1 / k):.0f})",
        f"two rounds: L = {two_round.max_load_bits:.0f} bits "
        f"(theory ~ M/p = {m_bits / p:.0f} per relation)",
    ]
    assert two_round.rounds == 2
    assert two_round.max_load_bits < one_round.max_load_bits
    report_table("Example 5.3: SP2 one round vs two rounds (p=16)", lines)


def test_cycle_plan_c6(report_table):
    plan = cycle_plan(6, 0.0)
    db = matching_database(plan.query, m=200, n=200, seed=71)
    result = run_plan(plan, db, 16, seed=71)
    truth = evaluate(plan.query, db)
    assert result.answers == truth
    assert result.rounds == 3  # Lemma 5.4 / Example 5.19: tight
    report_table(
        "Lemma 5.4: C6 plan",
        [
            f"rounds = {result.rounds} (paper: 3, tight by Example 5.19)",
            f"max load = {result.max_load_bits:.0f} bits",
            f"answers = {len(result.answers)}",
        ],
    )


def test_benchmark_l16_two_round_plan(benchmark):
    plan = chain_plan(16, 0.5)
    db = matching_database(plan.query, m=128, n=128, seed=1)
    benchmark(run_plan, plan, db, 16, 1)
