"""E10 -- Section 4.2.2: the skew-aware triangle algorithm.

Hub graphs with a growing celebrity degree: vanilla HyperCube loads
blow up with the hub while the skew-aware algorithm stays on the paper's
formula O~(max(M/p^{2/3}, sqrt(sum_h M_R(h) M_T(h)/p))).
"""

from __future__ import annotations

import pytest

from repro.core.families import triangle_query
from repro.data.generators import triangle_database_from_edges
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.skew.triangle import run_triangle_skew


def hub_db(hub_degree: int, fan_edges: int):
    edges = {(0, v) for v in range(1, hub_degree + 1)}
    edges |= {(v, v + 1) for v in range(1, fan_edges + 1)}
    return triangle_database_from_edges(edges, hub_degree + 2)


def test_hub_degree_sweep(report_table):
    p = 27
    lines = [
        f"{'hub deg':>8} {'vanilla L':>10} {'skew-aware L':>13} "
        f"{'formula':>9} {'win':>5}"
    ]
    wins = []
    for hub_degree in (150, 400, 800):
        db = hub_db(hub_degree, 100)
        query = triangle_query()
        truth = evaluate(query, db)
        vanilla = run_hypercube(query, db, p, seed=53)
        aware = run_triangle_skew(db, p, seed=53)
        assert vanilla.answers == truth and aware.answers == truth
        # The Section 4.2.2 statement is O~: a value just below the
        # case-2 threshold m/p^{1/3} is handled by the light part,
        # where it may concentrate up to ~threshold tuples per relation
        # on one server.  Allow that sub-threshold scale next to the
        # formula (visible at hub degree 150, which is heavy in the
        # m/p sense but below m/p^{1/3}).
        stats = db.statistics(query)
        m = max(stats.tuples(r) for r in query.relation_names)
        threshold_bits = (m / p ** (1.0 / 3.0)) * 2 * stats.value_bits
        slack = max(aware.predicted_load_bits, threshold_bits)
        assert aware.max_load_bits <= 6.0 * slack
        win = vanilla.max_load_bits / aware.max_load_bits
        wins.append(win)
        lines.append(
            f"{hub_degree:>8} {vanilla.max_load_bits:>10.0f} "
            f"{aware.max_load_bits:>13.0f} "
            f"{aware.predicted_load_bits:>9.0f} {win:>5.1f}"
        )
    assert wins[-1] >= max(2.5, wins[0])
    report_table(
        "Section 4.2.2: triangle loads on celebrity-hub graphs (p=27)",
        lines,
    )


def test_no_skew_degenerates_to_vanilla(report_table):
    # Without hitters the skew-aware algorithm IS vanilla HC (light
    # part only): loads match.
    from repro.data.generators import matching_database

    query = triangle_query()
    db = matching_database(query, m=900, n=2**14, seed=59)
    p = 27
    vanilla = run_hypercube(query, db, p, seed=59)
    aware = run_triangle_skew(db, p, seed=59)
    assert aware.answers == vanilla.answers
    ratio = aware.max_load_bits / vanilla.max_load_bits
    assert ratio == pytest.approx(1.0, rel=0.35)
    report_table(
        "Section 4.2.2 sanity: no hitters -> same load as vanilla HC",
        [
            f"vanilla L = {vanilla.max_load_bits:.0f}, "
            f"skew-aware L = {aware.max_load_bits:.0f}, ratio {ratio:.2f}"
        ],
    )


def test_benchmark_triangle_skew(benchmark):
    db = hub_db(300, 60)
    benchmark(run_triangle_skew, db, 27, 1)
