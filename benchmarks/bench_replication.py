"""E7 -- Corollary 3.19 / Example 3.20: the replication-rate tradeoff.

For the triangle query with equal sizes the replication rate must grow
like sqrt(M/L).  The HyperCube algorithm at p servers has load
~ M/p^{2/3} and replication p^{1/3} = (M/L)^{1/2} -- sitting exactly on
the bound's curve.  We measure both sides.
"""

from __future__ import annotations

import pytest

from repro.bounds.replication import (
    replication_rate_equal_sizes,
    replication_rate_lower_bound,
)
from repro.core.families import star_query, triangle_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube


def test_triangle_replication_curve(report_table):
    query = triangle_query()
    m = 1_000
    db = matching_database(query, m=m, n=2**16, seed=29)
    stats = db.statistics(query)
    lines = [
        f"{'p':>5} {'measured r':>10} {'measured L':>12} "
        f"{'shape sqrt(M/L)':>16} {'Cor 3.19 bound':>15}"
    ]
    for p in (8, 27, 64, 216):
        result = run_hypercube(query, db, p, seed=29)
        r = result.replication_rate(stats)
        load = result.max_load_bits
        # The measured load sums all three relations; the per-relation
        # tradeoff curve uses L/3 (constants only).
        shape = replication_rate_equal_sizes(
            query, stats.bits("S1"), load / query.num_atoms
        )
        bound = replication_rate_lower_bound(query, stats, load)
        # Measured replication respects the lower bound...
        assert r >= bound - 1e-9
        # ...and sits within a constant of the sqrt(M/L) shape.
        assert r == pytest.approx(shape, rel=0.5)
        lines.append(
            f"{p:>5} {r:>10.2f} {load:>12.0f} {shape:>16.2f} {bound:>15.3f}"
        )
    report_table(
        "Example 3.20: triangle replication rate r ~ sqrt(M/L)", lines
    )


def test_star_needs_no_replication(report_table):
    # tau* = 1: r = O(1) is possible (hash on z replicates nothing).
    query = star_query(3)
    db = matching_database(query, m=800, n=2**14, seed=31)
    stats = db.statistics(query)
    result = run_hypercube(query, db, 16, seed=31)
    r = result.replication_rate(stats)
    assert r == pytest.approx(1.0, abs=0.05)
    report_table(
        "Replication for T3 (tau* = 1)",
        [f"measured replication rate at p=16: {r:.3f} (paper: O(1))"],
    )


def test_benchmark_replication_bound(benchmark):
    query = triangle_query()
    stats_db = matching_database(query, m=500, n=2**13, seed=1)
    stats = stats_db.statistics(query)
    load = stats.bits("S1") / 4
    benchmark(replication_rate_lower_bound, query, stats, load)
