"""Engine-level worker-pool scaling: one run fanned across cores.

PR 6's seam puts the per-server routing and local-join bodies of a
*single* HyperCube run onto a worker pool.  This bench measures one
large run under each pool kind, asserts the results are bit-identical
(the seam's acceptance), and reports the wall-clock and phase split.

No hard speedup gate: engine-level scaling needs real cores.  On a
single-core runner the serial pool wins (the others only add pickle
and scheduling overhead) and that is the honest, expected number; on a
4-core host the process pool's route+join phases shrink toward 1/4.
The trajectory file CI commits (``BENCH_trajectory.json``) is where
the numbers accumulate per host.

Run directly for the table: ``python benchmarks/bench_parallel_engine.py``.
"""

from __future__ import annotations

import time

from repro.core.families import triangle_query
from repro.data.generators import matching_database
from repro.hypercube import run_hypercube

P = 64
SEED = 11
M = 200_000

_DB_CACHE: dict[int, object] = {}


def _database(m: int):
    if m not in _DB_CACHE:
        q = triangle_query()
        _DB_CACHE[m] = (q, matching_database(q, m=m, n=4 * m, seed=SEED))
    return _DB_CACHE[m]


def fingerprint(result):
    return (
        result.answers_array().tobytes(),
        [sorted(r.bits.items()) for r in result.report.rounds],
    )


def run_once(pool: str, max_workers: int, m: int = M):
    q, db = _database(m)
    start = time.perf_counter()
    result = run_hypercube(
        q, db, P, seed=SEED, pool=pool, max_workers=max_workers,
        chunk_rows=32_768,
    )
    elapsed = time.perf_counter() - start
    return elapsed, result


def compare_pools(m: int = M) -> list[dict]:
    rows = []
    baseline = None
    for pool, workers in (("serial", 1), ("thread", 4), ("process", 4)):
        if pool == "process":
            # Warm the spawn cost out of the measurement: the shared
            # pool is cached, so real workloads pay it once.
            run_once(pool, workers, m=1_000)
        elapsed, result = run_once(pool, workers, m)
        fp = fingerprint(result)
        if baseline is None:
            baseline = fp
        assert fp == baseline, f"pool={pool} changed the results"
        phases = result.report.phase_seconds
        rows.append({
            "pool": pool,
            "workers": workers,
            "seconds": elapsed,
            "route_s": phases.get("route", 0.0),
            "join_s": phases.get("join", 0.0),
            "answers": len(result.answers_array()),
        })
    serial_s = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = serial_s / row["seconds"]
    return rows


def format_rows(rows: list[dict]) -> list[str]:
    lines = [
        f"{'pool':>8} {'workers':>7} {'total [s]':>10} {'route [s]':>10} "
        f"{'join [s]':>9} {'speedup':>8}   "
        f"(triangle m={M:,}, p={P}, bit-identical)"
    ]
    for r in rows:
        lines.append(
            f"{r['pool']:>8} {r['workers']:>7} {r['seconds']:>10.3f} "
            f"{r['route_s']:>10.3f} {r['join_s']:>9.3f} "
            f"{r['speedup']:>7.2f}x"
        )
    return lines


def test_engine_pools_identical(report_table):
    rows = compare_pools()
    report_table("Engine worker pools: one run across cores", format_rows(rows))


def test_engine_serial_latency(benchmark):
    """The in-process baseline the pooled runs compare against."""
    _database(M)  # generation outside the timer
    total = benchmark(lambda: len(run_once("serial", 1)[1].answers_array()))
    assert total >= 0


def test_engine_process_latency(benchmark):
    """One run fanned over 4 process workers (pool cached across rounds)."""
    _database(M)
    run_once("process", 4, m=1_000)  # warm the spawned pool
    total = benchmark(lambda: len(run_once("process", 4)[1].answers_array()))
    assert total >= 0


if __name__ == "__main__":
    for line in format_rows(compare_pools()):
        print(line)
