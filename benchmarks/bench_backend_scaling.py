"""Backend scaling: columnar (numpy) vs tuple-at-a-time execution.

The ROADMAP north-star experiment: the paper's analyses (HyperCube
loads, skew, multi-round plans) only become empirically interesting at
input sizes (n >= 10^6) the tuple engine cannot reach in reasonable
time.  This bench runs the same skewed binary join

    q(x, y, z) = S1(x, z), S2(y, z)     (planted heavy hitter on z)

through both backends across input sizes and tabulates wall-clock
times, verifying bit-identical loads and answer counts along the way.
The acceptance bar (>= 10x at n = 10^6) is asserted by the env-gated
large test; run ``REPRO_BENCH_FULL=1 pytest benchmarks/bench_backend_scaling.py``
or ``python benchmarks/bench_backend_scaling.py`` to exercise it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.query import Atom, ConjunctiveQuery
from repro.data.database import Database
from repro.data.relation import Relation
from repro.hypercube.algorithm import run_hypercube

P = 64
SEED = 42
HITTER_FRACTION = 0.001


def skewed_join_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        (Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))), name="skewed-join"
    )


def skewed_join_database(n: int, seed: int = SEED) -> Database:
    """n tuples per relation; a 0.1% heavy hitter planted on z."""
    rng = np.random.default_rng(seed)
    hitter_degree = max(1, int(n * HITTER_FRACTION))
    relations = []
    for name in ("S1", "S2"):
        other = rng.integers(0, n, size=n)
        z = rng.integers(0, n, size=n)
        z[:hitter_degree] = 7
        relations.append(Relation.from_array(name, np.column_stack([other, z])))
    return Database(relations, n)


def run_backend(query, db, backend: str) -> tuple[float, int, float]:
    """One timed run: (seconds, answer count, total bits communicated)."""
    start = time.perf_counter()
    result = run_hypercube(query, db, P, seed=SEED, backend=backend)
    if backend == "numpy":
        count = len(result.answers_array())
    else:
        count = len(result.answers)
    elapsed = time.perf_counter() - start
    return elapsed, count, result.report.total_bits


def compare_backends(n: int) -> dict:
    query = skewed_join_query()
    db = skewed_join_database(n)
    numpy_s, numpy_count, numpy_bits = run_backend(query, db, "numpy")
    tuple_s, tuple_count, tuple_bits = run_backend(query, db, "tuples")
    assert numpy_count == tuple_count, "backends disagree on answers"
    assert numpy_bits == tuple_bits, "backends disagree on loads"
    return {
        "n": n,
        "numpy_s": numpy_s,
        "tuple_s": tuple_s,
        "speedup": tuple_s / numpy_s,
        "answers": numpy_count,
    }


def format_rows(rows: list[dict]) -> list[str]:
    lines = [
        f"{'n':>10} {'tuples [s]':>11} {'numpy [s]':>10} {'speedup':>8} "
        f"{'answers':>9}   (p={P}, planted hitter {HITTER_FRACTION:.1%})"
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>10,} {r['tuple_s']:>11.3f} {r['numpy_s']:>10.3f} "
            f"{r['speedup']:>7.1f}x {r['answers']:>9,}"
        )
    return lines


def test_backend_scaling_small(report_table):
    # Fast tier-1 sanity: identical results at moderate n; the numpy
    # backend must not be slower once real work dominates (no strict
    # speed bar at this size to keep CI timing-robust).
    rows = [compare_backends(n) for n in (10_000, 50_000)]
    report_table("Backend scaling (skewed binary join)", format_rows(rows))


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_FULL") != "1",
    reason="large-n scaling run; set REPRO_BENCH_FULL=1 to enable",
)
def test_backend_speedup_large(report_table):
    row = compare_backends(1_000_000)
    report_table(
        "Backend scaling at n = 10^6 (acceptance: >= 10x)", format_rows([row])
    )
    assert row["speedup"] >= 10.0


if __name__ == "__main__":
    results = []
    for size in (10_000, 100_000, 1_000_000):
        print(f"running n = {size:,} ...", flush=True)
        results.append(compare_backends(size))
    print()
    print("\n".join(format_rows(results)))
