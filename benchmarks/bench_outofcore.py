"""Out-of-core chunked execution: n beyond RAM under a byte budget.

The acceptance harness for ``repro.storage``.  Three tiers:

* **Small (CI)** -- chunked hypercube runs against the in-memory
  columnar backend on a matching triangle database: bit-identical
  per-server loads and answers, with real spill traffic, plus a
  pytest-benchmark latency probe.
* **Budgeted smoke (CI)** -- a run whose assumed in-memory footprint
  exceeds a deliberately tiny byte budget completes chunked with its
  measured RSS growth under the budget.
* **Full (env-gated)** -- ``REPRO_BENCH_FULL=1`` streams an
  ``n = 10^8`` matching-database hypercube run end to end (generation
  included) under a fixed RSS budget that the in-memory path's
  footprint (input + routed replicas) exceeds by an order of
  magnitude.  ``REPRO_BENCH_N`` / ``REPRO_BENCH_BUDGET_MB`` override
  the scale.  Also runnable directly:
  ``python benchmarks/bench_outofcore.py --m 100000000``.
"""

from __future__ import annotations

import os
import resource
import sys
import time

import pytest

from repro.core.families import simple_join_query, triangle_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube
from repro.planner.engine import IN_MEMORY_FOOTPRINT_FACTOR
from repro.storage import StorageManager

P = 64
SEED = 42
#: The canonical hypercube workload (its matching-database answer count
#: is ~Poisson(m^3/n^3), i.e. usually zero at n = 4m -- the run is about
#: loads, not answers).
QUERY = triangle_query()
#: The Example 4.1 join: ~m^2/n answers on matching data, so the smoke
#: tier genuinely exercises the spooled answer path.
JOIN = simple_join_query()

#: ru_maxrss is KiB on Linux, bytes on macOS.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


def in_memory_footprint_bytes(m: int, replication: int = 4) -> int:
    """What the monolithic columnar path would hold at peak.

    Three binary relations of ``m`` int64 rows, plus every routed
    replica resident in per-server fragments (triangle shares 4x4x4
    replicate each relation 4x).
    """
    input_bytes = 3 * m * 2 * 8
    return input_bytes + input_bytes * replication


def run_outofcore(
    m: int, budget_bytes: int, p: int = P, seed: int = SEED, query=QUERY
) -> dict:
    """Generate + execute entirely through chunked storage."""
    with StorageManager.from_budget(budget_bytes) as storage:
        start = time.perf_counter()
        db = matching_database(
            query, m=m, n=4 * m, seed=seed, storage=storage
        )
        generated = time.perf_counter()
        result = run_hypercube(query, db, p=p, seed=seed, storage=storage)
        finished = time.perf_counter()
        return {
            "m": m,
            "gen_s": generated - start,
            "run_s": finished - generated,
            "answer_rows": result.simulation.output_rows_total(),
            "max_load_bits": result.report.max_load_bits,
            "spilled_bytes": storage.bytes_spilled,
            "chunk_rows": storage.chunk_rows,
        }


def test_outofcore_matches_inmemory(report_table):
    """Bit-identical loads and answers, with genuine spill traffic."""
    m, n = 60_000, 240_000
    db = matching_database(QUERY, m=m, n=n, seed=SEED)
    t0 = time.perf_counter()
    reference = run_hypercube(QUERY, db, p=P, seed=SEED, backend="numpy")
    in_memory_s = time.perf_counter() - t0
    with StorageManager(chunk_rows=1024) as storage:
        t0 = time.perf_counter()
        chunked = run_hypercube(
            QUERY, db, p=P, seed=SEED, backend="numpy", storage=storage
        )
        chunked_s = time.perf_counter() - t0
        assert storage.bytes_spilled > 0, "run never touched disk"
        assert chunked.report.num_rounds == reference.report.num_rounds
        for round_c, round_r in zip(
            chunked.report.rounds, reference.report.rounds
        ):
            assert round_c.bits == round_r.bits
            assert round_c.tuples == round_r.tuples
        assert chunked.answers == reference.answers
        report_table(
            "Out-of-core vs in-memory hypercube (matching triangle)",
            [
                f"{'m':>10} {'in-mem [s]':>11} {'chunked [s]':>12} "
                f"{'spilled [MiB]':>14} {'answers':>9}",
                f"{m:>10,} {in_memory_s:>11.3f} {chunked_s:>12.3f} "
                f"{storage.bytes_spilled / 2**20:>14.1f} "
                f"{len(reference.answers):>9,}",
            ],
        )


def test_outofcore_budgeted_smoke(report_table):
    """A budget the in-memory footprint exceeds completes chunked."""
    m = 120_000
    budget = 4 * 2**20  # 4 MiB: input alone is ~3.7 MiB
    assert m * 2 * 8 * 2 * IN_MEMORY_FOOTPRINT_FACTOR > budget
    before = peak_rss_bytes()
    row = run_outofcore(m, budget, query=JOIN)
    grown = peak_rss_bytes() - before
    # RSS growth stays within the budget (plus slack for the
    # allocator); the point is it does not scale with the 5.5 MiB
    # input times replication.
    assert grown <= max(budget * 8, 64 * 2**20), (
        f"RSS grew {grown / 2**20:.0f} MiB on a "
        f"{budget / 2**20:.0f} MiB budget"
    )
    assert row["answer_rows"] > 0
    report_table(
        "Budgeted chunked smoke (4 MiB budget)",
        [
            f"m={row['m']:,}: gen {row['gen_s']:.2f}s, "
            f"run {row['run_s']:.2f}s, "
            f"spilled {row['spilled_bytes'] / 2**20:.1f} MiB "
            f"(chunk_rows={row['chunk_rows']}), "
            f"{row['answer_rows']:,} answer rows",
        ],
    )


def test_outofcore_latency(benchmark):
    """Chunked hypercube wall-clock -- the number to track over PRs."""
    db = matching_database(QUERY, m=50_000, n=200_000, seed=SEED)

    def chunked_run():
        with StorageManager(chunk_rows=4096) as storage:
            return run_hypercube(
                QUERY, db, p=P, seed=SEED, backend="numpy", storage=storage
            )

    result = benchmark(chunked_run)
    assert result.report.num_rounds == 1


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_FULL") != "1",
    reason="n = 10^8 out-of-core run; set REPRO_BENCH_FULL=1 to enable",
)
def test_outofcore_full_scale(report_table):
    m = int(os.environ.get("REPRO_BENCH_N", 100_000_000))
    budget_mb = int(os.environ.get("REPRO_BENCH_BUDGET_MB", 4096))
    budget = budget_mb * 2**20
    footprint = in_memory_footprint_bytes(m)
    assert footprint > budget, (
        "the budget must be one the in-memory path cannot satisfy"
    )
    before = peak_rss_bytes()
    row = run_outofcore(m, budget)
    peak = peak_rss_bytes()
    grown = peak - before
    report_table(
        f"Out-of-core full scale (m = {m:,}, budget {budget_mb} MiB)",
        format_full_rows(row, footprint, grown),
    )
    assert grown <= budget, (
        f"peak RSS grew {grown / 2**20:.0f} MiB, over the "
        f"{budget_mb} MiB budget"
    )
    assert row["max_load_bits"] > 0


def format_full_rows(row: dict, footprint: int, grown: int) -> list[str]:
    return [
        f"generation {row['gen_s']:.1f}s, execution {row['run_s']:.1f}s "
        f"(p={P}, chunk_rows={row['chunk_rows']:,})",
        f"in-memory footprint {footprint / 2**30:.1f} GiB vs "
        f"RSS growth {grown / 2**20:.0f} MiB "
        f"(spilled {row['spilled_bytes'] / 2**30:.1f} GiB)",
        f"L = {row['max_load_bits']:.3g} bits, "
        f"{row['answer_rows']:,} answer rows",
    ]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=100_000_000,
                        help="tuples per relation (default 10^8)")
    parser.add_argument("--budget-mb", type=int, default=4096)
    parser.add_argument("--p", type=int, default=P)
    args = parser.parse_args()
    budget = args.budget_mb * 2**20
    footprint = in_memory_footprint_bytes(args.m)
    print(f"m = {args.m:,}, p = {args.p}, budget = {args.budget_mb} MiB "
          f"(in-memory footprint {footprint / 2**30:.1f} GiB)", flush=True)
    before = peak_rss_bytes()
    row = run_outofcore(args.m, budget, p=args.p)
    grown = peak_rss_bytes() - before
    print("\n".join(format_full_rows(row, footprint, grown)))
    if footprint > budget:
        status = "OK" if grown <= budget else "OVER BUDGET"
        print(f"RSS budget check: {status}")
