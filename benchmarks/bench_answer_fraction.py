"""E6 -- Theorem 3.5 as an experiment: load-capped algorithms miss answers.

A one-round algorithm whose per-server load is capped at L < L_lower
cannot report all answers; Theorem 3.5 bounds the reported fraction by
min_u (L / L(u, M, p) / sum u)^{sum u}.  We run the HyperCube algorithm
with a hard receive cap (excess tuples dropped) and compare the
measured recall against the bound's *shape*: recall decays as the cap
shrinks, full recall needs L ~ L_lower.

Also reproduces the Section 3.4 space-exponent story: at fixed load
exponent below 1 - 1/tau*, recall decays as p grows.
"""

from __future__ import annotations

import pytest

from repro.bounds.one_round import answer_fraction_bound, lower_bound
from repro.core.families import triangle_query
from repro.data.generators import uniform_database
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate


def test_recall_vs_load_cap(report_table):
    query = triangle_query()
    db = uniform_database(query, m=1_500, n=120, seed=17)
    stats = db.statistics(query)
    p = 27
    truth = evaluate(query, db)
    assert truth
    base = lower_bound(query, stats, p)
    lines = [
        f"{'cap / L_lower':>13} {'measured recall':>16} "
        f"{'Thm 3.5 cap on fraction':>24}"
    ]
    recalls = []
    for factor in (4.0, 2.0, 1.0, 0.5, 0.25):
        cap = factor * base
        result = run_hypercube(
            query, db, p, seed=17, capacity_bits=cap, on_overflow="drop"
        )
        recall = len(result.answers & truth) / len(truth)
        recalls.append(recall)
        bound = answer_fraction_bound(query, stats, p, cap, strengthened=True)
        lines.append(f"{factor:>13.2f} {recall:>16.3f} {bound:>24.3f}")
    # Recall is monotone in the cap and collapses under L_lower.
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert recalls[0] == pytest.approx(1.0)
    assert recalls[-1] < 0.7
    report_table("Theorem 3.5: recall under a hard load cap (C3, p=27)", lines)


def test_space_exponent_decay_with_p(report_table):
    # Fixed load exponent 1 - eps = 0.75 (eps = 0.25, below the
    # triangle's required 1/3): recall must decay as p grows, since
    # the needed load is M/p^{2/3} > M/p^{3/4}.
    query = triangle_query()
    lines = [f"{'p':>5} {'measured recall':>16} {'Thm 3.5 fraction cap':>21}"]
    recalls = []
    for p in (8, 27, 64):
        db = uniform_database(query, m=1_200, n=110, seed=19)
        stats = db.statistics(query)
        truth = evaluate(query, db)
        cap = 3 * stats.bits("S1") / p**0.75
        result = run_hypercube(
            query, db, p, seed=19, capacity_bits=cap, on_overflow="drop"
        )
        recall = len(result.answers & truth) / len(truth)
        bound = answer_fraction_bound(query, stats, p, cap, strengthened=True)
        recalls.append(recall)
        lines.append(f"{p:>5} {recall:>16.3f} {bound:>21.3f}")
    assert recalls[0] > recalls[-1]
    report_table(
        "Section 3.4: recall decay at space exponent below 1 - 1/tau*",
        lines,
    )


def test_benchmark_capped_run(benchmark):
    query = triangle_query()
    db = uniform_database(query, m=800, n=100, seed=23)
    stats = db.statistics(query)
    cap = lower_bound(query, stats, 27)

    def run():
        return run_hypercube(
            query, db, 27, seed=23, capacity_bits=cap, on_overflow="drop"
        )

    benchmark(run)
