"""Multi-round executor scaling: columnar (numpy) vs tuple execution.

The last tuple-only execution path went columnar in PR 3; this bench is
its acceptance harness.  It runs the two-round bushy plan for the chain
query ``L_4`` on permutation databases (``m = n``, so every
intermediate view stays at ``m`` tuples and the work is dominated by
routing + joining, not by answer blowup) through both backends across
input sizes, verifying bit-identical loads and answer counts along the
way.

The acceptance bar (>= 5x at n = 10^6) is asserted by the env-gated
large run; execute
``REPRO_BENCH_FULL=1 pytest benchmarks/bench_multiround_scaling.py``
or ``python benchmarks/bench_multiround_scaling.py`` to exercise it.
CI runs the small tier with ``--benchmark-json`` and uploads the
artifact next to ``bench_planner.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.data.generators import matching_database
from repro.multiround.executor import run_plan
from repro.multiround.plans import chain_plan

P = 16
SEED = 42
PLAN = chain_plan(4, eps=0.0)  # two rounds: binary joins, then the root


def permutation_database(n: int):
    return matching_database(PLAN.query, m=n, n=n, seed=SEED, backend="numpy")


def run_backend(db, backend: str) -> tuple[float, int, float]:
    """One timed run: (seconds, answer count, total bits communicated)."""
    start = time.perf_counter()
    result = run_plan(PLAN, db, P, seed=SEED, backend=backend)
    if backend == "numpy":
        count = len(result.answers_array())
    else:
        count = len(result.answers)
    elapsed = time.perf_counter() - start
    return elapsed, count, result.report.total_bits


def compare_backends(n: int) -> dict:
    db = permutation_database(n)
    numpy_s, numpy_count, numpy_bits = run_backend(db, "numpy")
    tuple_s, tuple_count, tuple_bits = run_backend(db, "tuples")
    assert numpy_count == tuple_count, "backends disagree on answers"
    assert numpy_bits == tuple_bits, "backends disagree on loads"
    return {
        "n": n,
        "numpy_s": numpy_s,
        "tuple_s": tuple_s,
        "speedup": tuple_s / numpy_s,
        "answers": numpy_count,
    }


def format_rows(rows: list[dict]) -> list[str]:
    lines = [
        f"{'n':>10} {'tuples [s]':>11} {'numpy [s]':>10} {'speedup':>8} "
        f"{'answers':>9}   (L4 bushy plan, {PLAN.depth} rounds, p={P})"
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>10,} {r['tuple_s']:>11.3f} {r['numpy_s']:>10.3f} "
            f"{r['speedup']:>7.1f}x {r['answers']:>9,}"
        )
    return lines


def test_multiround_scaling_small(report_table):
    # Fast tier-1 sanity: identical results at moderate n (no strict
    # speed bar at this size to keep CI timing-robust).
    rows = [compare_backends(n) for n in (10_000, 50_000)]
    report_table(
        "Multi-round backend scaling (L4 bushy plan)", format_rows(rows)
    )


def test_multiround_numpy_latency(benchmark):
    """Columnar run_plan wall-clock -- the number to track over PRs."""
    db = permutation_database(20_000)
    result = benchmark(run_plan, PLAN, db, P, SEED, "numpy")
    assert result.rounds == PLAN.depth


def test_multiround_tuples_latency(benchmark):
    """Tuple-reference run_plan wall-clock (smaller n; it is the slow path)."""
    db = permutation_database(2_000)
    result = benchmark(run_plan, PLAN, db, P, SEED, "tuples")
    assert result.rounds == PLAN.depth


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_FULL") != "1",
    reason="large-n scaling run; set REPRO_BENCH_FULL=1 to enable",
)
def test_multiround_speedup_large(report_table):
    row = compare_backends(1_000_000)
    report_table(
        "Multi-round scaling at n = 10^6 (acceptance: >= 5x)",
        format_rows([row]),
    )
    assert row["speedup"] >= 5.0


if __name__ == "__main__":
    results = []
    for size in (10_000, 100_000, 1_000_000):
        print(f"running n = {size:,} ...", flush=True)
        results.append(compare_backends(size))
    print()
    print("\n".join(format_rows(results)))
