"""E9 -- Section 4.2.1: the star-query algorithm vs Eq. (20) and Thm 4.4.

Sweeps Zipf skew on the star key and tabulates: vanilla z-hashing, the
Section 4.2.1 algorithm, the Eq. (20) upper-bound formula, and the
Theorem 4.4 lower bound.  Shape claims asserted: the algorithm tracks
Eq. (20) within a constant, Eq. (20) and Thm 4.4 agree within a
constant (matching bounds), and the skew-aware algorithm beats vanilla
hashing once a hitter dominates.
"""

from __future__ import annotations


from repro.core.families import star_query
from repro.data.generators import degree_sequence_database
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate
from repro.skew.bounds import star_skew_lower_bound, zipf_frequencies
from repro.skew.star import run_star_skew


def test_star_zipf_sweep(report_table):
    k, p, m = 2, 16, 2_000
    query = star_query(k)
    lines = [
        f"{'zipf s':>6} {'vanilla L':>10} {'star alg L':>11} "
        f"{'Eq.(20)':>9} {'Thm 4.4 LB':>11}"
    ]
    wins = []
    for skew in (0.4, 0.8, 1.2):
        freqs = {
            f"S{j}": zipf_frequencies(m, 80, skew=skew)
            for j in range(1, k + 1)
        }
        db = degree_sequence_database(query, "z", freqs, 2**15, seed=43)
        stats = db.statistics(query)
        truth = evaluate(query, db)
        vanilla = run_hypercube(query, db, p, exponents={"z": 1.0}, seed=43)
        star = run_star_skew(query, db, p, seed=43)
        assert vanilla.answers == truth and star.answers == truth
        hitter_stats = {
            rel: {h: c for h, c in f.items() if c >= stats.tuples(rel) / p}
            for rel, f in freqs.items()
        }
        lb = (
            star_skew_lower_bound(hitter_stats, stats.value_bits, p, with_constant=False)
            if any(hitter_stats.values())
            else stats.bits("S1") / p
        )
        # Upper bound formula tracks the algorithm and the lower bound.
        # The light-part analysis carries a polylog factor (the paper's
        # O~), visible at low skew where sub-threshold hot keys collide.
        assert star.max_load_bits <= 6.0 * star.predicted_load_bits
        assert star.predicted_load_bits <= 4.0 * max(lb, 1.0)
        wins.append(vanilla.max_load_bits / star.max_load_bits)
        lines.append(
            f"{skew:>6.1f} {vanilla.max_load_bits:>10.0f} "
            f"{star.max_load_bits:>11.0f} {star.predicted_load_bits:>9.0f} "
            f"{lb:>11.0f}"
        )
    assert wins[-1] > wins[0]  # more skew, bigger win
    assert wins[-1] > 1.5
    report_table(
        "Section 4.2.1: star join under Zipf skew (T2, p=16)", lines
    )


def test_star_single_mega_hitter(report_table):
    # The extreme of Section 4.2.1: one z value carries both relations;
    # load ~ (M1(h) M2(h)/p)^{1/2}, the Cartesian-product grid.
    query = star_query(2)
    p, mh = 16, 900
    freqs = {"S1": {0: mh}, "S2": {0: mh}}
    db = degree_sequence_database(query, "z", freqs, 2**13, seed=47)
    stats = db.statistics(query)
    star = run_star_skew(query, db, p, seed=47)
    truth = evaluate(query, db)
    assert star.answers == truth
    assert len(truth) == mh * mh
    grid_load = (
        (2 * mh * stats.value_bits) ** 2 / p
    ) ** 0.5
    ratio = star.max_load_bits / grid_load
    assert 0.2 <= ratio <= 3.0
    report_table(
        "Section 4.2.1 extreme: single mega-hitter (residual grid)",
        [
            f"answers = {len(truth)} (= m(h)^2)",
            f"measured L = {star.max_load_bits:.0f} bits",
            f"(M1(h) M2(h)/p)^(1/2) = {grid_load:.0f} bits",
            f"ratio = {ratio:.2f}",
        ],
    )


def test_benchmark_star_skew(benchmark):
    query = star_query(2)
    freqs = {
        "S1": zipf_frequencies(800, 40, 1.1),
        "S2": zipf_frequencies(800, 40, 1.1),
    }
    db = degree_sequence_database(query, "z", freqs, 2**13, seed=1)
    benchmark(run_star_skew, query, db, 16, 1)
