"""E15 -- Lemma 3.6, Friedgut (Eq. 7), and the AGM bound, empirically.

* Lemma 3.6: Monte-Carlo E[|q(I)|] over random matchings matches
  n^{k-a} prod_j m_j.
* AGM: measured output sizes never exceed min over covers of
  prod m_j^{u_j}.
* Friedgut: the inequality holds for random weight assignments on the
  triangle (cover 1/2,1/2,1/2) and chain (cover 1,0,1).
"""

from __future__ import annotations

import random


from repro.core.families import chain_query, simple_join_query, triangle_query
from repro.core.friedgut import (
    agm_bound,
    expected_output_size,
    friedgut_lhs,
    friedgut_rhs,
)
from repro.core.stats import Statistics
from repro.data.generators import matching_database, uniform_database
from repro.join.multiway import evaluate


def test_lemma_3_6_monte_carlo(report_table):
    lines = [
        f"{'query':>6} {'n':>5} {'m':>4} {'formula':>9} {'empirical':>10} "
        f"{'rel err':>8}"
    ]
    cases = [
        (chain_query(2), 24, 12, 400),
        (simple_join_query(), 24, 12, 400),
        (chain_query(3), 16, 8, 400),
    ]
    for query, n, m, trials in cases:
        stats = Statistics.uniform(query, m, domain_size=n)
        formula = expected_output_size(stats)
        total = 0
        for trial in range(trials):
            db = matching_database(query, m=m, n=n, seed=trial * 7919 + 1)
            total += len(evaluate(query, db))
        empirical = total / trials
        err = abs(empirical - formula) / formula
        assert err < 0.2, (query.name, empirical, formula)
        lines.append(
            f"{query.name:>6} {n:>5} {m:>4} {formula:>9.2f} "
            f"{empirical:>10.2f} {err:>8.1%}"
        )
    report_table("Lemma 3.6: E[|q(I)|] over random matchings", lines)


def test_agm_bound_never_violated(report_table):
    rng = random.Random(101)
    worst = 0.0
    for trial in range(30):
        query = rng.choice([triangle_query(), chain_query(2), chain_query(3)])
        m = rng.randint(20, 120)
        n = rng.randint(10, 40)
        db = uniform_database(query, m=min(m, n * n), n=n, seed=trial)
        output = len(evaluate(query, db))
        bound = agm_bound(
            query, {r: len(db[r]) for r in query.relation_names}
        )
        assert output <= bound + 1e-9
        if bound > 0:
            worst = max(worst, output / bound)
    report_table(
        "AGM bound: |q(I)| <= min_u prod m_j^{u_j}",
        [f"30 random instances: max utilization {worst:.1%} of the bound"],
    )


def test_friedgut_inequality_random_weights(report_table):
    rng = random.Random(103)
    checks = 0
    for trial in range(20):
        n = 4
        weights = {}
        q = triangle_query()
        for atom in q.atoms:
            w = {}
            for a in range(n):
                for b in range(n):
                    if rng.random() < 0.6:
                        w[(a, b)] = rng.uniform(0, 2)
            weights[atom.relation] = w
        lhs = friedgut_lhs(q, weights, n)
        rhs = friedgut_rhs(q, {"S1": 0.5, "S2": 0.5, "S3": 0.5}, weights)
        assert lhs <= rhs + 1e-9
        checks += 1
    report_table(
        "Friedgut's inequality (Eq. 7)",
        [f"{checks} random weightings of C3: LHS <= RHS every time"],
    )


def test_benchmark_expected_output_monte_carlo(benchmark):
    query = chain_query(2)

    def once():
        db = matching_database(query, m=16, n=32, seed=7)
        return len(evaluate(query, db))

    benchmark(once)
