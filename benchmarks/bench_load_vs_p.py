"""E4 -- measured HyperCube load vs p (the Theorem 3.4/3.5 'figure').

For skew-free matching databases the load should track M / p^{1/tau*}:
p^{2/3} speedup for triangles, p^{1/2} for L3/C4, p for stars.  We run
the real algorithm at increasing p and compare shapes: measured load
within a constant of the tight bound, and the measured *ratio* between
consecutive p values close to the predicted power law.
"""

from __future__ import annotations

import pytest

from repro.bounds.one_round import lower_bound
from repro.core.families import chain_query, cycle_query, star_query, triangle_query
from repro.data.generators import matching_database
from repro.hypercube.algorithm import run_hypercube
from repro.join.multiway import evaluate


CASES = [
    (triangle_query(), (8, 27, 64), 2 / 3),
    (chain_query(3), (4, 16, 64), 1 / 2),
    (star_query(2), (4, 16, 64), 1.0),
    (cycle_query(4), (4, 16, 64), 1 / 2),
]


@pytest.mark.parametrize("query,ps,exponent", CASES, ids=lambda c: getattr(c, "name", str(c)))
def test_load_tracks_power_law(query, ps, exponent, report_table):
    m = 1_200
    db = matching_database(query, m=m, n=2**16, seed=13)
    stats = db.statistics(query)
    truth = evaluate(query, db)
    lines = [
        f"{'p':>6} {'measured L':>11} {'bound L':>9} {'ratio':>6}"
        f"   (speedup exponent 1/tau* = {exponent:.3f})"
    ]
    measured = []
    for p in ps:
        result = run_hypercube(query, db, p, seed=13)
        assert result.answers == truth
        bound = lower_bound(query, stats, p)
        ratio = result.max_load_bits / bound
        measured.append(result.max_load_bits)
        # Within a small constant of the tight bound (the bound is
        # per-relation; the algorithm receives all l relations).
        assert 0.8 <= ratio <= 2.5 * query.num_atoms, (query.name, p)
        lines.append(
            f"{p:>6} {result.max_load_bits:>11.0f} {bound:>9.0f} {ratio:>6.2f}"
        )
    # Shape check: going from ps[0] to ps[-1] should scale close to
    # (ps[-1]/ps[0])^exponent.
    expected_gain = (ps[-1] / ps[0]) ** exponent
    actual_gain = measured[0] / measured[-1]
    assert actual_gain == pytest.approx(expected_gain, rel=0.45)
    lines.append(
        f"load gain p={ps[0]} -> p={ps[-1]}: measured {actual_gain:.2f}x, "
        f"predicted {expected_gain:.2f}x"
    )
    report_table(f"Load vs p for {query.name} (skew-free)", lines)


def test_benchmark_hypercube_triangle(benchmark):
    query = triangle_query()
    db = matching_database(query, m=600, n=2**14, seed=1)

    def run():
        return run_hypercube(query, db, 27, seed=1)

    result = benchmark(run)
    assert result.max_load_bits > 0
