"""The rule engine: parse once, run every rule, honor suppressions.

One :class:`Module` is built per source file (path, source, ``ast``
tree, lazily-computed parent links); every registered :class:`Rule`
walks it and yields file/line-anchored :class:`Finding` values.  The
engine then applies inline suppressions and returns a deterministic,
sorted :class:`CheckResult`.

Suppression syntax (one comment, same line or the line above)::

    x = time.time()  # repro: allow(wall-clock) -- bench timing only

    # repro: allow(unseeded-random) -- exploring, results unrecorded
    random.shuffle(candidates)

A suppression **must** carry a justification after ``--``; a bare
``# repro: allow(rule)`` suppresses nothing and is itself reported
under the ``suppression`` rule id, so every exemption in the tree is a
written decision.  Unknown rule ids in ``allow(...)`` are reported the
same way.

Comments are found with :mod:`tokenize` (never by substring search), so
a suppression-shaped string literal cannot silence a finding.
"""

from __future__ import annotations

import ast
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

#: JSON artifact schema tag; bump only with a breaking layout change.
SCHEMA = "repro.checks/1"

#: The rule id under which suppression-comment problems are reported.
SUPPRESSION_RULE = "suppression"

#: The rule id under which unparseable files are reported.
SYNTAX_RULE = "syntax"

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_\-\s,]+?)\s*\)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Module:
    """One parsed source file, shared by every rule.

    ``path`` is reported in findings exactly as given; ``posix`` is the
    forward-slash form rules use for allowlist matching (for example
    the wall-clock rule's timing/metrics module exemptions).
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.posix = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: dict[str, str] | None = None

    @property
    def parents(self) -> Mapping[ast.AST, ast.AST]:
        """Child node -> parent node, for ancestor walks."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    @property
    def imports(self) -> Mapping[str, str]:
        """Local alias -> dotted module/object path (module scope only).

        ``import numpy as np`` maps ``np -> numpy``;
        ``from time import perf_counter as pc`` maps
        ``pc -> time.perf_counter``.  Rules resolve call targets
        through this table so aliased imports cannot dodge a check.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        name = alias.asname or alias.name.split(".", 1)[0]
                        table[name] = alias.name if alias.asname else name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._imports = table
        return self._imports

    def dotted(self, node: ast.expr) -> str | None:
        """The canonical dotted path of a Name/Attribute chain.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; returns None for anything that is not a
        plain name chain (subscripts, calls, literals).
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def statement_of(self, node: ast.AST) -> ast.stmt | None:
        """The innermost statement containing ``node``."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current

    def in_loop(self, node: ast.AST) -> bool:
        """Is ``node`` executed per-iteration of an enclosing loop?

        Stops at the nearest function boundary: a loop *outside* the
        enclosing function does not count, because the function body is
        the unit the rules reason about.  Comprehensions count as
        loops.
        """
        current = self.parents.get(node)
        child = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return False
            if isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
                # The loop *target/iter* themselves evaluate once.
                if child in getattr(current, "body", []) or child in getattr(
                    current, "orelse", []
                ):
                    return True
            if isinstance(
                current,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                return True
            child = current
            current = self.parents.get(current)
        return False

    def inside(self, node: ast.AST, kinds: tuple[type, ...]) -> bool:
        """Does any ancestor of ``node`` have one of these types?"""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return True
            current = self.parents.get(current)
        return False


class Rule:
    """One mechanically-checkable invariant.

    Subclasses set ``id`` (the kebab-case name used in ``--rule`` and
    suppression comments) and ``description``, and implement
    :meth:`check` as a generator of findings over one :class:`Module`.
    """

    id: str = ""
    description: str = ""

    def check(self, module: Module) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass(frozen=True)
class CheckResult:
    """Everything one analyzer run produced."""

    findings: tuple[Finding, ...]
    files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "files": self.files,
            "findings": [f.to_json() for f in self.findings],
        }


def _code_lines(tokens: list[tokenize.TokenInfo]) -> set[int]:
    """Physical line numbers that carry actual code tokens."""
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
    lines: set[int] = set()
    for token in tokens:
        if token.type in skip:
            continue
        for row in range(token.start[0], token.end[0] + 1):
            lines.add(row)
    return lines


def parse_suppressions(
    path: str, source: str, known_rules: Iterable[str]
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Suppressed-(line -> rule ids), plus the malformed-comment findings.

    A trailing comment suppresses its own line; a standalone comment
    suppresses the next line that carries code.  Reasonless or
    unknown-rule suppressions suppress nothing and are reported under
    :data:`SUPPRESSION_RULE`.
    """
    known = set(known_rules)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return {}, []
    code_lines = _code_lines(tokens)
    suppressed: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        row = token.start[0]
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        reason = match.group("reason")
        if not reason:
            findings.append(Finding(
                rule=SUPPRESSION_RULE,
                path=path,
                line=row,
                col=token.start[1] + 1,
                message=(
                    "suppression without a justification; write "
                    "`# repro: allow(<rule>) -- <reason>`"
                ),
            ))
            continue
        unknown = sorted(rules - known - {SUPPRESSION_RULE, SYNTAX_RULE})
        if unknown:
            findings.append(Finding(
                rule=SUPPRESSION_RULE,
                path=path,
                line=row,
                col=token.start[1] + 1,
                message=(
                    f"suppression names unknown rule(s) {', '.join(unknown)}"
                ),
            ))
        rules &= known
        if not rules:
            continue
        standalone = not source.splitlines()[row - 1][: token.start[1]].strip()
        target = row
        if standalone:
            target = next(
                (line for line in sorted(code_lines) if line > row), row
            )
        suppressed.setdefault(target, set()).update(rules)
    return suppressed, findings


def iter_source_files(
    paths: Sequence[str | pathlib.Path],
) -> Iterator[pathlib.Path]:
    """Every ``.py`` file under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped; a named file is
    taken as-is.  Raises :class:`FileNotFoundError` for a missing path
    (a silently-empty run would read as a clean tree).
    """
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in parts
                ):
                    continue
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def check_source(
    path: str,
    source: str,
    rules: Sequence[Rule],
    known_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Run ``rules`` over one in-memory source file.

    ``known_ids`` is the full rule registry for suppression-comment
    validation; it defaults to the ids of ``rules`` and matters when a
    ``--rule`` filter runs a subset (a suppression naming a real but
    unselected rule must not read as "unknown").
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule=SYNTAX_RULE,
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            message=f"file does not parse: {exc.msg}",
        )]
    module = Module(path, source, tree)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))
    if known_ids is None:
        known_ids = [rule.id for rule in rules]
    suppressed, findings = parse_suppressions(path, source, known_ids)
    findings.extend(
        f for f in raw if f.rule not in suppressed.get(f.line, ())
    )
    return findings


def check_paths(
    paths: Sequence[str | pathlib.Path],
    rules: Sequence[Rule] | None = None,
) -> CheckResult:
    """Run the analyzer over files/directories and collect findings."""
    from repro.checks.rules import all_rules

    if rules is None:
        rules = all_rules()
    known_ids = [rule.id for rule in all_rules()]
    findings: list[Finding] = []
    files = 0
    for path in iter_source_files(paths):
        files += 1
        source = path.read_text(encoding="utf-8")
        findings.extend(check_source(str(path), source, rules, known_ids))
    findings.sort(key=Finding.sort_key)
    return CheckResult(findings=tuple(findings), files=files)


def render_text(result: CheckResult) -> str:
    """The human-readable report (one line per finding + a summary)."""
    lines = [finding.render() for finding in result.findings]
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
    )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    return json.dumps(result.to_json(), indent=2, sort_keys=False)
