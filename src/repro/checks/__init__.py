"""`repro.checks` — AST-based invariant analysis for this codebase.

Every major bugfix sweep in this repo's history (PR 3's unsorted
fragment routing, PR 6's picklability audit, PR 7/9's hook discipline)
violated an invariant that is mechanically checkable from source.
This package checks them: ``python -m repro check`` runs the rules in
:mod:`repro.checks.rules` over ``src/`` and exits nonzero on findings.

Public surface::

    from repro.checks import check_paths, all_rules, Finding

    result = check_paths(["src"])      # CheckResult
    result.clean                        # bool
    [f.render() for f in result.findings]
"""

from repro.checks.engine import (
    SCHEMA,
    CheckResult,
    Finding,
    Module,
    Rule,
    check_paths,
    check_source,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.checks.rules import all_rules, rule_ids

__all__ = [
    "SCHEMA",
    "CheckResult",
    "Finding",
    "Module",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rule_ids",
]
