"""Resolution discipline.

``repro.config`` is the single place where ``backend=`` / ``pool=`` /
``machines=`` get their defaults (env vars, registered fallbacks,
machine-spec parsing).  An entry point that hand-rolls its own default
— ``backend = backend or "numpy"`` or ``if pool is None: pool =
"serial"`` — silently diverges from ``REPRO_DEFAULT_*`` and from every
other entry point the moment the central default moves.  Resolve
through ``ExecutionSettings.resolve`` / ``resolve_backend`` /
``resolve_pool`` / ``resolve_machines`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.engine import Finding, Module, Rule

_SETTING_NAMES = frozenset({"backend", "pool", "machines"})

#: The module that *defines* the resolvers necessarily hand-rolls the
#: defaults everyone else must route through.
_EXEMPT_SUFFIX = "repro/config.py"


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class SettingsResolutionRule(Rule):
    id = "settings-resolution"
    description = (
        "backend/pool/machines defaults must come from repro.config "
        "resolvers, not hand-rolled `or`/`is None` fallbacks"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if module.posix.endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                name = _terminal_name(node.values[0])
                if name not in _SETTING_NAMES:
                    continue
                fallback = any(
                    isinstance(value, ast.Constant) and value.value is not None
                    for value in node.values[1:]
                )
                if not fallback:
                    continue
                # Purely presentational uses (f-strings building labels)
                # never feed execution; skip them.
                if module.inside(node, (ast.JoinedStr,)):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"hand-rolled default `{ast.unparse(node)}`; resolve "
                    f"{name} through repro.config (ExecutionSettings."
                    "resolve / resolve_*) so env-var and registry "
                    "defaults apply",
                )
            elif isinstance(node, ast.If):
                finding = self._none_branch_default(module, node)
                if finding is not None:
                    yield finding

    def _none_branch_default(
        self, module: Module, node: ast.If
    ) -> Finding | None:
        """``if X is None: X = <constant>`` for a settings name."""
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return None
        name = _terminal_name(test.left)
        if name not in _SETTING_NAMES:
            return None
        subject = ast.unparse(test.left)
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, (ast.Name, ast.Attribute))
                and ast.unparse(t) == subject
                for t in stmt.targets
            ):
                continue
            if (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is not None
            ):
                return self.finding(
                    module,
                    stmt,
                    f"hand-rolled default `{subject} = "
                    f"{ast.unparse(stmt.value)}` under `is None`; resolve "
                    f"{name} through repro.config instead",
                )
        return None
