"""Rule registry: every invariant the analyzer enforces, in one list."""

from __future__ import annotations

from repro.checks.engine import Rule
from repro.checks.rules.determinism import (
    SortedIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.checks.rules.hooks import HookGuardRule
from repro.checks.rules.parallel import ParentAccountingRule, PoolTaskRule
from repro.checks.rules.resolution import SettingsResolutionRule

__all__ = ["all_rules", "rule_ids"]


def all_rules() -> list[Rule]:
    """A fresh instance of every registered rule, in report order."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        SortedIterationRule(),
        PoolTaskRule(),
        ParentAccountingRule(),
        HookGuardRule(),
        SettingsResolutionRule(),
    ]


def rule_ids() -> list[str]:
    return [rule.id for rule in all_rules()]
