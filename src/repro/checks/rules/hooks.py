"""Observability-hook hygiene.

``active_recorder()`` / ``active_metrics()`` are contextvar lookups
that return ``None`` when tracing/metrics are off — which is the
default.  The discipline settled in PR 7/PR 9 is: fetch the hook
*once* per operation into a local (or instance attribute), guard that
binding with a single ``is not None`` (or truthiness) check, and never
re-fetch inside per-tuple loops where the contextvar lookup becomes
measurable overhead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.engine import Finding, Module, Rule

_HOOKS = ("active_recorder", "active_metrics")


def _hook_name(module: Module, call: ast.Call) -> str | None:
    dotted = module.dotted(call.func)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf if leaf in _HOOKS else None


def _guard_texts(module: Module) -> set[str]:
    """Unparse-texts of every expression used as a None/truthiness guard."""
    texts: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops) and any(
                isinstance(cmp, ast.Constant) and cmp.value is None
                for cmp in node.comparators
            ):
                texts.add(ast.unparse(node.left))
        elif isinstance(node, (ast.If, ast.IfExp, ast.While)):
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                test = test.operand
            if isinstance(test, (ast.Name, ast.Attribute)):
                texts.add(ast.unparse(test))
        elif isinstance(node, ast.BoolOp):
            for value in node.values:
                if isinstance(value, (ast.Name, ast.Attribute)):
                    texts.add(ast.unparse(value))
    return texts


class HookGuardRule(Rule):
    id = "hook-guard"
    description = (
        "active_recorder()/active_metrics() must be fetched once into a "
        "None-guarded binding, never used inline or re-fetched in loops"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        guards: set[str] | None = None  # built lazily, only if hooks appear
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            hook = _hook_name(module, node)
            if hook is None:
                continue
            if module.in_loop(node):
                yield self.finding(
                    module,
                    node,
                    f"{hook}() fetched inside a loop; hoist the lookup "
                    "out of the hot path and reuse the binding",
                )
                continue
            statement = module.statement_of(node)
            target: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
            if not isinstance(target, (ast.Name, ast.Attribute)):
                yield self.finding(
                    module,
                    node,
                    f"{hook}() used without binding the result; assign it "
                    "to a local and guard with `is not None`",
                )
                continue
            if guards is None:
                guards = _guard_texts(module)
            if ast.unparse(target) not in guards:
                yield self.finding(
                    module,
                    node,
                    f"{hook}() result {ast.unparse(target)!r} is never "
                    "None-checked; hooks return None when telemetry is "
                    "off (the default)",
                )
