"""Parallel-safety rules.

The worker-pool seam (PR 6) runs task bodies under a *spawn*-context
process pool: every task function crosses a pickle boundary.  Pickle
ships functions by qualified name, so a lambda, a closure, or a nested
def works under the serial/thread pools and then dies — or silently
diverges — under ``pool="process"``.  And because bit-identity is
guaranteed by replaying all simulator accounting on the parent in
serial order, a worker body that mutates ``MPCSimulation`` state
directly (``send``/``send_array``/output recording) would double-count
or order-scramble the very loads the paper's bounds are about.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.engine import Finding, Module, Rule

#: MPCSimulation calls that mutate accounting state.
_SIM_MUTATORS = frozenset({"send", "send_array", "output", "output_array"})


def _module_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound by top-level defs, imports, and assignments."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports / fallback defs still bind at module
            # scope; one level of nesting covers the common idiom.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(
                                alias.asname or alias.name.split(".", 1)[0]
                            )
    return names


def _nested_defs(tree: ast.Module) -> set[str]:
    """Names of functions defined *inside* another function (closures)."""
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(sub.name)
    return nested


def _imap_calls(tree: ast.Module) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "imap"
            and node.args
        ):
            yield node


class PoolTaskRule(Rule):
    id = "pool-task"
    description = (
        "functions handed to pool.imap must be module-level names — "
        "no lambdas, closures, or computed callables — so they survive "
        "the spawn-context pickle boundary"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        bindings = _module_level_bindings(module.tree)
        nested = _nested_defs(module.tree)
        for call in _imap_calls(module.tree):
            task = call.args[0]
            if isinstance(task, ast.Lambda):
                yield self.finding(
                    module,
                    task,
                    "lambda passed to pool.imap; lambdas cannot cross the "
                    "process-pool pickle boundary — define a module-level "
                    "task function",
                )
            elif isinstance(task, ast.Name):
                if task.id in nested and task.id not in bindings:
                    yield self.finding(
                        module,
                        task,
                        f"nested function {task.id!r} passed to pool.imap; "
                        "closures cannot cross the process-pool pickle "
                        "boundary — hoist it to module level",
                    )
                # A Name that is neither a nested def nor module-bound is
                # a parameter or local alias; assume the caller passed a
                # picklable module-level function.
            elif isinstance(task, (ast.Call, ast.Attribute)):
                yield self.finding(
                    module,
                    task,
                    "computed callable passed to pool.imap; pass a "
                    "module-level function so the reference pickles by "
                    "qualified name",
                )


def _worker_bodies(module: Module) -> Iterable[ast.FunctionDef]:
    """Module-level functions that run (or may run) inside pool workers.

    Two signals, both local to the file: the function is passed as the
    first argument to some ``pool.imap`` call, or it follows the
    ``*_task`` naming convention of ``repro.parallel.tasks`` (the
    parent-side ``server_*`` helpers keep the suffix but contain no
    mutators, so they pass the rule on their own merits).
    """
    imap_names = {
        call.args[0].id
        for call in _imap_calls(module.tree)
        if isinstance(call.args[0], ast.Name)
    }
    for node in module.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name in imap_names or node.name.endswith("_task"):
            yield node


class ParentAccountingRule(Rule):
    id = "parent-accounting"
    description = (
        "worker task bodies must not mutate MPCSimulation accounting "
        "(send/send_array/output); the parent replays accounting in "
        "serial order to keep runs bit-identical across pools"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        for body in _worker_bodies(module):
            for node in ast.walk(body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SIM_MUTATORS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"simulation mutator .{node.func.attr}() inside "
                        f"worker task {body.name!r}; record intents and "
                        "replay accounting on the parent instead",
                    )
