"""Determinism rules.

The repo's load guarantees only mean anything if runs are bit-identical
across backend × pool × worker count × storage × machine spec (see
PAPER.md / ROADMAP.md).  Three source-level habits break that:

- drawing from a *global* random state (``random.shuffle``,
  ``np.random.rand``, ``default_rng()`` with no seed) instead of a
  seeded generator derived from the run's seed;
- reading the wall clock in engine code, where the value flows into
  results or ordering (timing/metrics modules are the sanctioned
  homes for clocks);
- iterating a set (or union/intersection of sets) without ``sorted``,
  so routing and accounting order depend on hash randomization — the
  exact shape of the PR 3 fragment-routing bug and the PR 5
  canonical-order sweep.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.checks.engine import Finding, Module, Rule

#: ``random.<fn>`` calls that read or mutate the module-global state.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "randbytes",
})

#: ``numpy.random.<fn>`` legacy calls backed by the global RandomState.
_GLOBAL_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "seed", "shuffle", "permutation", "choice", "uniform",
    "normal", "standard_normal", "binomial", "poisson", "exponential",
    "beta", "gamma", "zipf", "bytes", "get_state", "set_state",
})

#: Wall-clock reads.  ``time.sleep`` is deliberately absent — it delays
#: but does not produce a value that can flow into results.
_CLOCK_FNS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Modules whose whole business is timekeeping; clocks are fine there.
_CLOCK_EXEMPT_FRAGMENTS = ("repro/mpc/timing", "repro/metrics/")


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    description = (
        "random draws must come from an explicitly seeded generator, "
        "never the module-global random/np.random state"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FNS
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to global-state random.{parts[1]}(); draw from "
                    "a seeded random.Random(seed) instead",
                )
            elif (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] in _GLOBAL_NP_RANDOM_FNS
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to global-state numpy.random.{parts[2]}(); use "
                    "a numpy.random.Generator seeded from the run's seed",
                )
            elif dotted == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    "default_rng() without a seed draws OS entropy; pass "
                    "a seed derived from the run's seed",
                )
            elif dotted == "random.Random" and not (node.args or node.keywords):
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed draws OS entropy; pass "
                    "a seed derived from the run's seed",
                )


class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "wall-clock reads belong in timing/metrics modules; elsewhere "
        "they leak host state into results"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if any(frag in module.posix for frag in _CLOCK_EXEMPT_FRAGMENTS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted in _CLOCK_FNS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {dotted}() outside timing/metrics "
                    "modules; route timing through repro.mpc.timing or "
                    "suppress with a justification",
                )


def _is_setish(node: ast.expr) -> bool:
    """Is this expression syntactically guaranteed to be a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left) or _is_setish(node.right)
    if isinstance(node, ast.IfExp):
        return _is_setish(node.body) or _is_setish(node.orelse)
    return False


def _iter_targets(module: Module) -> Iterator[tuple[ast.AST, ast.expr]]:
    """(anchor node, iterated expression) pairs the rule inspects."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield node, gen.iter
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate") and node.args:
                yield node, node.args[0]


class SortedIterationRule(Rule):
    id = "sorted-iteration"
    description = (
        "iteration order over sets is hash-randomized; wrap in sorted() "
        "before it can flow into routing or accounting"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        # A set expression consumed by sorted(...) never reaches this
        # loop: the iterated expression is then the sorted() call, which
        # is not set-ish.  list()/tuple()/enumerate() preserve set order
        # and are flagged like a bare for-loop.
        for anchor, iterated in _iter_targets(module):
            if not _is_setish(iterated):
                continue
            yield self.finding(
                module,
                anchor,
                "iteration over a set expression without sorted(); order "
                "is hash-randomized and must not reach routing/accounting",
            )
