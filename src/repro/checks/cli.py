"""Command-line front end: ``python -m repro check``.

Exit status is the contract CI relies on: 0 for a clean tree, 1 when
any finding survives suppression, 2 for usage errors (unknown rule id,
missing path).
"""

from __future__ import annotations

import sys
from typing import Sequence, TextIO

from repro.checks.engine import (
    CheckResult,
    check_paths,
    render_json,
    render_text,
)
from repro.checks.rules import all_rules

DEFAULT_PATHS = ("src",)


def run_check(
    paths: Sequence[str],
    rule_filter: Sequence[str] | None = None,
) -> CheckResult:
    """Run the analyzer; raises ValueError for an unknown ``--rule``."""
    rules = all_rules()
    if rule_filter:
        known = {rule.id for rule in rules}
        unknown = sorted(set(rule_filter) - known)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.id in set(rule_filter)]
    return check_paths(list(paths) or list(DEFAULT_PATHS), rules)


def list_rules(stream: TextIO) -> None:
    for rule in all_rules():
        stream.write(f"{rule.id}\n    {rule.description}\n")


def main(
    argv: Sequence[str] | None = None,
    *,
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    """Entry point shared by ``python -m repro check`` and tests."""
    import argparse

    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Statically check repro source for determinism, "
            "parallel-safety, and hook-hygiene invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro.checks/1 report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        list_rules(out)
        return 0

    try:
        result = run_check(args.paths, args.rules)
    except ValueError as exc:
        err.write(f"repro check: {exc}\n")
        return 2
    except FileNotFoundError as exc:
        err.write(f"repro check: {exc}\n")
        return 2

    if args.json:
        out.write(render_json(result) + "\n")
    else:
        out.write(render_text(result) + "\n")
    return 0 if result.clean else 1
