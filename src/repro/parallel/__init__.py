"""Pluggable worker pools and picklable engine tasks.

The process-parallel seam: :mod:`repro.parallel.pool` provides the
``WorkerPool`` protocol (serial / thread / process, shared and cached),
:mod:`repro.parallel.tasks` the picklable per-server task bodies and
the drivers that replay their results in deterministic serial order.
"""

from repro.parallel.pool import (
    POOL_KINDS,
    PoolKind,
    ProcessPool,
    SerialPool,
    ThreadPool,
    WorkerPool,
    default_max_workers,
    get_pool,
    in_worker,
    shutdown_pools,
)
from repro.parallel.tasks import (
    ArraySource,
    JoinTask,
    MaterializedRunResult,
    RouteTask,
    RunJobTask,
    iter_array_sources,
    join_over_pool,
    join_task,
    route_over_pool,
    route_task,
    run_job_task,
    server_join_task,
)

__all__ = [
    "POOL_KINDS",
    "PoolKind",
    "ProcessPool",
    "SerialPool",
    "ThreadPool",
    "WorkerPool",
    "default_max_workers",
    "get_pool",
    "in_worker",
    "shutdown_pools",
    "ArraySource",
    "JoinTask",
    "MaterializedRunResult",
    "RouteTask",
    "RunJobTask",
    "iter_array_sources",
    "join_over_pool",
    "join_task",
    "route_over_pool",
    "route_task",
    "run_job_task",
    "server_join_task",
]
