"""Worker pools: one fan-out seam for every per-server loop.

A :class:`WorkerPool` runs a stream of picklable tasks through a
module-level task function and hands the results back **in task
order** -- the only contract the executors need, because all simulator
accounting (bit counting, capacity truncation, output recording)
happens on the parent as results are merged.  Three implementations:

* :class:`SerialPool` -- runs each task inline at consumption time.
  The zero-overhead default; ``imap`` is fully lazy, so the streaming
  executors keep their one-chunk-resident memory profile.
* :class:`ThreadPool` -- a ``ThreadPoolExecutor``.  Worth it when the
  task bodies release the GIL (NumPy routing/joins on large arrays).
* :class:`ProcessPool` -- a spawn-context ``ProcessPoolExecutor``.
  True multicore for CPU-bound work; tasks and results cross a pickle
  boundary, so task dataclasses reference large on-disk chunks by path
  (re-opened as read-only memmaps in the worker) instead of by value.

``imap`` keeps at most ``2 * max_workers`` tasks in flight (bounded
prefetch), so fanning a million-chunk stream over a pool never
materializes the stream.

Pools are cached per ``(kind, max_workers)`` and shut down at
interpreter exit: a workload of many small runs pays the process-spawn
cost once, not per run.  Inside a process-pool worker
:func:`get_pool` always returns a :class:`SerialPool` -- a worker that
itself fanned out over processes would fork-bomb the machine, and the
engine code calling :func:`get_pool` cannot tell where it runs.

The spawn (not fork) context keeps workers safe in threaded parents
(``Session.run_many``'s thread mode) and on every platform; worker
processes import task functions from their defining modules, which is
why every task function in :mod:`repro.parallel.tasks` is module-level
and every task argument a plain dataclass.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import threading
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Literal, TypeVar

from repro.metrics.registry import active_metrics

logger = logging.getLogger("repro.parallel.pool")

PoolKind = Literal["serial", "thread", "process"]

POOL_KINDS = ("serial", "thread", "process")

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set in process-pool workers by the pool initializer; consulted by
#: :func:`get_pool` so nested fan-out degrades to serial execution.
_IN_WORKER = False

#: One warning per process when a nested fan-out actually degrades.
_NESTED_WARNED = False


def _mark_worker() -> None:  # pragma: no cover - runs in the worker
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a :class:`ProcessPool` worker process."""
    return _IN_WORKER


def default_max_workers() -> int:
    """The worker count used when the caller does not pick one."""
    return min(os.cpu_count() or 1, 8)


class WorkerPool:
    """The fan-out seam: ordered ``map``/``imap`` over picklable tasks.

    Subclasses implement :meth:`imap`; :meth:`map` is the eager form.
    Results always come back in task order, whatever the completion
    order -- the executors rely on it for deterministic merge.
    """

    kind: PoolKind = "serial"

    def __init__(self, max_workers: int = 1):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def imap(
        self, fn: Callable[[_T], _R], tasks: Iterable[_T]
    ) -> Iterator[_R]:
        raise NotImplementedError

    def map(self, fn: Callable[[_T], _R], tasks: Iterable[_T]) -> list[_R]:
        return list(self.imap(fn, tasks))

    def close(self) -> None:
        """Release pool resources (idempotent; no-op for serial)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialPool(WorkerPool):
    """Inline execution; ``imap`` is lazy (one task per ``next``)."""

    kind: PoolKind = "serial"

    def __init__(self, max_workers: int = 1):
        super().__init__(max_workers=1)

    def imap(self, fn, tasks):
        return (fn(task) for task in tasks)


class _ExecutorPool(WorkerPool):
    """Shared bounded-prefetch ``imap`` over a concurrent.futures executor."""

    def __init__(self, max_workers: int):
        super().__init__(max_workers)
        self._executor: Executor | None = None
        self._lock = threading.Lock()

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    @property
    def executor(self) -> Executor:
        with self._lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def imap(self, fn, tasks):
        executor = self.executor
        prefetch = 2 * self.max_workers
        metrics = active_metrics()
        depth = (
            metrics.gauge("repro_pool_queue_depth", kind=self.kind)
            if metrics is not None
            else None
        )

        def results() -> Iterator:
            pending: deque = deque()
            iterator = iter(tasks)
            exhausted = False
            while True:
                while not exhausted and len(pending) < prefetch:
                    try:
                        task = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append(executor.submit(fn, task))
                if depth is not None:
                    depth.set(float(len(pending)))
                if not pending:
                    return
                yield pending.popleft().result()

        return results()

    def close(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


class ThreadPool(_ExecutorPool):
    """GIL-sharing workers; effective when tasks release the GIL."""

    kind: PoolKind = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-pool",
        )


class ProcessPool(_ExecutorPool):
    """Spawn-context process workers for CPU-bound fan-out."""

    kind: PoolKind = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_mark_worker,
        )


_POOL_CLASSES = {
    "serial": SerialPool,
    "thread": ThreadPool,
    "process": ProcessPool,
}

_shared_pools: dict[tuple[str, int], WorkerPool] = {}
_shared_lock = threading.Lock()


def get_pool(kind: str | None, max_workers: int | None = None) -> WorkerPool:
    """A shared pool of the given kind (cached per worker count).

    ``kind=None`` means "no pool requested" and resolves to serial --
    engine cores pass ``ExecutionSettings.pool`` straight through
    without hand-rolling their own default.

    Shared pools amortize executor startup -- above all the process
    spawn cost -- across every run of a session or test suite; they
    are shut down at interpreter exit.  Inside a process-pool worker
    this always returns a :class:`SerialPool`, so engine code may
    request its configured pool unconditionally without risking nested
    process trees.
    """
    if kind is None:
        kind = "serial"
    if kind not in _POOL_CLASSES:
        raise ValueError(
            f"unknown pool kind {kind!r} (expected one of {POOL_KINDS})"
        )
    if kind == "serial" or _IN_WORKER:
        if kind != "serial" and _IN_WORKER:
            global _NESTED_WARNED
            if not _NESTED_WARNED:
                _NESTED_WARNED = True
                logger.warning(
                    "nested %s-pool fan-out requested inside a process-pool "
                    "worker; degrading to serial execution",
                    kind,
                )
        return _SERIAL
    workers = max_workers if max_workers is not None else default_max_workers()
    if workers < 1:
        raise ValueError("max_workers must be >= 1")
    key = (kind, workers)
    with _shared_lock:
        pool = _shared_pools.get(key)
        if pool is None:
            pool = _POOL_CLASSES[kind](workers)
            _shared_pools[key] = pool
        return pool


def shutdown_pools() -> None:
    """Close every cached pool (automatic at interpreter exit)."""
    with _shared_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown_pools)

_SERIAL = SerialPool()


def _worker_probe(_task: object = None) -> tuple[bool, str]:
    """Report ``(in_worker, get_pool("process").kind)`` where it runs.

    A module-level task function (process workers must import it) used
    by the test suite to verify the nested-fan-out guard: inside a
    worker the probe must see ``in_worker() == True`` and receive a
    serial pool.
    """
    return in_worker(), get_pool("process", 2).kind
