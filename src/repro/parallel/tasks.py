"""Picklable per-server task bodies and their deterministic drivers.

The engine layer's per-server loops (HyperCube routing and local
joins, the skew algorithms' light parts, the multi-round executor's
per-operator work) fan out over a
:class:`~repro.parallel.pool.WorkerPool` through the task functions
here.  The split is strict:

* **Workers compute, the parent accounts.**  :func:`route_task` and
  :func:`join_task` are pure functions of their dataclass argument --
  no closures, no simulator, no locks -- and return plain arrays.  All
  :class:`~repro.mpc.simulator.MPCSimulation` effects (bit accounting,
  capacity truncation, fragment storage, output recording) happen on
  the parent as results are merged.
* **Merging replays the serial order.**  ``imap`` returns results in
  task order and the drivers iterate tasks in exactly the order the
  serial loops used, so every ``send_array``/``output_array`` fires in
  the identical sequence at any pool kind and worker count -- which is
  what keeps answers, per-server per-round loads, and capacity-drop
  truncation bit-identical.
* **Large data ships by path.**  An :class:`ArraySource` wraps either
  an in-memory array or the path of a ``.npy`` spill chunk; process
  workers re-open paths as read-only memmaps
  (:meth:`~repro.storage.chunked.ChunkedRelation.chunk_handles`), so
  out-of-core fragments cross the pickle boundary as a few bytes.

:func:`run_job_task` is the session-layer counterpart: one whole
:meth:`Session.run_many` job executed in a worker process, returning a
:class:`MaterializedRunResult` that satisfies the ``RunResult``
protocol after the worker's session (and any worker-side spill
directory) is gone.
"""

from __future__ import annotations

import pathlib
import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

from repro.data.arrays import unique_rows
from repro.data.relation import Relation
from repro.hashing.family import GridPartitioner, HashFamily
from repro.metrics.registry import active_metrics
from repro.mpc.timing import PhaseTimer
from repro.parallel.pool import WorkerPool
from repro.storage.chunked import ChunkedRelation

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.query import ConjunctiveQuery
    from repro.mpc.simulator import MPCSimulation, ServerState


# --------------------------------------------------------------- sources


@dataclass(frozen=True, eq=False)
class ArraySource:
    """One shippable ``(n, arity)`` row batch: inline rows or a path.

    ``path`` names a ``.npy`` spill chunk that :meth:`load` re-opens as
    a read-only memmap -- the zero-copy hand-off for process workers.
    Exactly one of ``rows``/``path`` is set.
    """

    rows: np.ndarray | None = None
    path: str | None = None

    def load(self) -> np.ndarray:
        if self.rows is not None:
            return self.rows
        return np.load(self.path, mmap_mode="r", allow_pickle=False)


def _source(handle: np.ndarray | pathlib.Path) -> ArraySource:
    if isinstance(handle, pathlib.Path):
        return ArraySource(path=str(handle))
    return ArraySource(rows=handle)


def iter_array_sources(
    source: "Relation | np.ndarray",
    chunk_rows: int | None = None,
) -> Iterator[ArraySource]:
    """The :func:`~repro.storage.chunked.iter_array_chunks` twin.

    Yields the same rows in the same chunking, but as
    :class:`ArraySource` handles: a chunked relation's spilled chunks
    come out as paths (never opened here), everything else as arrays.
    """
    if isinstance(source, ChunkedRelation):
        for handle in source.chunk_handles():
            yield _source(handle)
        return
    array = (
        source.to_array() if isinstance(source, Relation)
        else np.asarray(source)
    )
    if chunk_rows is None or chunk_rows >= len(array):
        if len(array):
            yield ArraySource(rows=array)
        return
    for start in range(0, len(array), chunk_rows):
        yield ArraySource(rows=array[start:start + chunk_rows])


# --------------------------------------------------------------- routing


@dataclass(frozen=True)
class RouteTask:
    """Route one chunk of one relation over one HyperCube grid.

    Plain data only: the worker rebuilds the grid from
    ``(shares, family_seed, hash_method, weights)`` -- hash functions
    are pure functions of the seed (and the weighted-bucket thresholds
    of the weights), so the rebuilt grid routes identically to the
    parent's.  ``exclude`` drops rows whose value at a position is
    in the given set before routing (the skew algorithms' light-part
    filter; filtering commutes with chunking).  ``tag``/``base`` ride
    along so the driver can replay the send without holding the task.
    ``weights`` is the heterogeneous cluster's per-dimension bucket
    weighting (None: the uniform modulo grid).
    """

    tag: str
    source: ArraySource
    dimension_variables: tuple[str, ...]
    atom_variables: tuple[str, ...]
    shares: tuple[int, ...]
    family_seed: int
    hash_method: str = "splitmix64"
    base: int = 0
    exclude: tuple[tuple[int, tuple[int, ...]], ...] = ()
    weights: tuple[tuple[float, ...] | None, ...] | None = None


def route_task(
    task: RouteTask,
) -> tuple[str, int, list[tuple[int, np.ndarray]], float]:
    """Worker body: load, filter, route; no simulator side effects.

    The trailing float is the task body's own wall time, measured
    inside the worker -- the parent replays it as a trace ``task``
    event in deterministic merge order.
    """
    from repro.hypercube.algorithm import route_relation_arrays

    # repro: allow(wall-clock) -- per-task phase timing; reported as
    # telemetry, never folded into answers or routing.
    started = time.perf_counter()
    rows = np.asarray(task.source.load())
    for position, values in task.exclude:
        if len(values) and len(rows):
            heavy = np.fromiter(values, dtype=np.int64, count=len(values))
            rows = rows[~np.isin(rows[:, position], heavy)]
    grid = GridPartitioner(
        list(task.shares),
        HashFamily(task.family_seed, method=task.hash_method),
        weights=task.weights,
    )
    groups = list(
        route_relation_arrays(
            grid, task.dimension_variables, task.atom_variables, rows
        )
    )
    return task.tag, task.base, groups, time.perf_counter() - started  # repro: allow(wall-clock) -- phase timing telemetry


def route_over_pool(
    pool: WorkerPool,
    sim: "MPCSimulation",
    tasks: Iterable[RouteTask],
    timer: PhaseTimer | None = None,
) -> None:
    """Fan routing out, replaying deliveries in serial send order.

    Each task's ``(server, batch)`` groups arrive in the task's own
    order and are delivered strictly in task order, so the global send
    sequence -- and with it every load count and capacity truncation --
    matches the serial loop exactly.  Time spent waiting on results
    lands in the enclosing phase (``route``); simulator delivery is
    carved out as ``ship``.
    """
    timer = timer or PhaseTimer()
    trace = sim.trace
    metrics = active_metrics()
    if metrics is not None:
        tasks_total = metrics.counter("repro_pool_tasks_total", kind=pool.kind)
        task_seconds = metrics.histogram(
            "repro_pool_task_seconds", kind=pool.kind
        )
    for tag, base, groups, seconds in pool.imap(route_task, tasks):
        if trace is not None:
            trace.task("route", tag, seconds)
        if metrics is not None:
            tasks_total.inc()
            task_seconds.observe(seconds)
        with timer.phase("ship"):
            for server, batch in groups:
                sim.send_array(base + server, tag, batch)


# ----------------------------------------------------------------- joins


@dataclass(frozen=True)
class JoinTask:
    """Join one server's received fragments locally.

    ``fragments`` maps each tag to the source batches **in storage
    order**; the worker merges them exactly like
    :meth:`ServerState.array_fragment` (concatenate, then row-wise
    dedup) before joining, so the local answers match the serial
    computation phase bit for bit.
    """

    server: int
    query: "ConjunctiveQuery"
    fragments: tuple[tuple[str, tuple[ArraySource, ...]], ...]


def join_task(task: JoinTask) -> tuple[int, np.ndarray | None, float]:
    """Worker body: merge fragments, run the local join, return rows.

    The trailing float is the in-worker wall time, as in
    :func:`route_task`.
    """
    # Imported here to keep repro.parallel a leaf of the engine layer
    # (hypercube.algorithm imports this module's drivers).
    from repro.hypercube.algorithm import local_join_fragments

    # repro: allow(wall-clock) -- per-task phase timing; reported as
    # telemetry, never folded into answers or routing.
    started = time.perf_counter()
    merged: dict[str, np.ndarray] = {}
    for tag, sources in task.fragments:
        batches = [np.asarray(s.load()) for s in sources]
        if not batches:
            continue
        stacked = (
            batches[0] if len(batches) == 1
            else np.concatenate(batches, axis=0)
        )
        deduped = unique_rows(stacked)
        if len(deduped):
            merged[tag] = deduped
    if not merged:
        return task.server, None, time.perf_counter() - started  # repro: allow(wall-clock) -- phase timing telemetry
    local = local_join_fragments(task.query, merged)
    return (
        task.server,
        (local if len(local) else None),
        time.perf_counter() - started,  # repro: allow(wall-clock) -- phase timing telemetry
    )


def server_join_task(
    query: "ConjunctiveQuery",
    state: "ServerState",
    server: int,
    prefix: str | None = None,
) -> JoinTask:
    """Snapshot one server's array fragments into a picklable task.

    Mirrors :meth:`MPCSimulation.array_state`: tags enumerate in
    delivery-store order, spooled fragments become chunk handles
    (paths for spilled chunks), and ``prefix`` selects and strips the
    multi-round executor's namespaced tags.
    """
    tags = list(state.array_fragments)
    tags += [t for t in state.array_spools if t not in state.array_fragments]
    fragments: list[tuple[str, tuple[ArraySource, ...]]] = []
    for tag in tags:
        if prefix is not None and not tag.startswith(prefix):
            continue
        key = tag if prefix is None else tag[len(prefix):]
        spool = state.array_spools.get(tag)
        if spool is not None:
            sources = tuple(_source(h) for h in spool.chunk_handles())
        else:
            sources = tuple(
                ArraySource(rows=batch)
                for batch in state.array_fragments[tag]
            )
        if sources:
            fragments.append((key, sources))
    return JoinTask(server, query, tuple(fragments))


def join_over_pool(
    pool: WorkerPool,
    sim: "MPCSimulation",
    query: "ConjunctiveQuery",
    servers: Iterable[int],
    prefix: str | None = None,
    timer: PhaseTimer | None = None,
    on_result: "Callable[[int, np.ndarray | None], None] | None" = None,
    clear: bool = False,
) -> None:
    """Fan local joins out, merging results in server order.

    By default a non-empty local result is recorded via
    ``sim.output_array`` (the one-round executors); ``on_result``
    overrides that for executors that spool or retain view fragments
    (multi-round).  With ``clear`` each server's delivered fragments
    are freed as soon as its result lands -- the out-of-core executors'
    one-server-resident property, preserved because a server's spill
    files are only dropped after its own task has completed.
    """
    timer = timer or PhaseTimer()

    def tasks() -> Iterator[JoinTask]:
        for server in servers:
            yield server_join_task(query, sim.server(server), server, prefix)

    trace = sim.trace
    metrics = active_metrics()
    if metrics is not None:
        tasks_total = metrics.counter("repro_pool_tasks_total", kind=pool.kind)
        task_seconds = metrics.histogram(
            "repro_pool_task_seconds", kind=pool.kind
        )
    for server, local, seconds in pool.imap(join_task, tasks()):
        if trace is not None:
            trace.task("join", server, seconds)
        if metrics is not None:
            tasks_total.inc()
            task_seconds.observe(seconds)
        with timer.phase("merge"):
            if on_result is not None:
                on_result(server, local)
            elif local is not None and len(local):
                sim.output_array(server, local)
            if clear:
                sim.server(server).clear()


# ---------------------------------------------------------- session jobs


class MaterializedRunResult:
    """A ``RunResult`` that survived a pickle round-trip.

    Process-pool ``run_many`` jobs execute in a worker whose session,
    simulator and spill directory die with the process; this snapshot
    carries the answers (as the canonical array), the full
    :class:`~repro.mpc.report.LoadReport`, and the scalar metadata, and
    satisfies the :class:`repro.session.RunResult` protocol.
    """

    def __init__(
        self,
        strategy: str,
        rounds: int,
        predicted_bits: float | None,
        load_report,
        answers: np.ndarray,
    ):
        self.strategy = strategy
        self.rounds = rounds
        self.predicted_bits = predicted_bits
        self.load_report = load_report
        self._answers_array = answers
        self._answers: set[tuple[int, ...]] | None = None

    @classmethod
    def from_result(cls, result) -> "MaterializedRunResult":
        return cls(
            strategy=result.strategy,
            rounds=result.rounds,
            predicted_bits=result.predicted_bits,
            load_report=result.load_report,
            answers=result.answers_array(),
        )

    @property
    def answers(self) -> set[tuple[int, ...]]:
        if self._answers is None:
            self._answers = set(map(tuple, self._answers_array.tolist()))
        return self._answers

    def answers_array(self) -> np.ndarray:
        return self._answers_array

    def __repr__(self) -> str:
        return (
            f"MaterializedRunResult(strategy={self.strategy!r}, "
            f"answers={len(self._answers_array)})"
        )


@dataclass(frozen=True)
class RunJobTask:
    """One ``Session.run_many`` job, shipped whole to a worker process.

    The worker rebuilds a throwaway session from the pickled
    :class:`~repro.session.ClusterConfig` and runs the job through the
    exact ``_run_job`` path the thread/serial modes use (same
    ``derive_seed(seed, index)`` scheme), so results are identical
    across pool kinds.
    """

    config: object  # ClusterConfig (typed loosely: session imports us)
    job: object  # Job
    index: int


def _portable_error(exc: Exception) -> Exception:
    """``exc`` if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def run_job_task(
    task: RunJobTask,
) -> tuple[
    "MaterializedRunResult | None", object, Exception | None, dict | None
]:
    """Worker body: run one batch job inside a private session.

    Returns ``(result, record, error, metrics)`` with the same
    capture-don't-raise semantics as the thread path, so one failing
    job cannot poison its siblings' results.  ``metrics`` is the worker
    session's registry snapshot when the config enables metrics (the
    worker runs exactly one job, so its session registry *is* this
    job's delta); the parent merges it so the aggregated view is
    pool-kind-independent.
    """
    from repro.session import Session

    try:
        with Session(task.config) as session:
            result, record = session._run_job(task.job, task.index)
            # Materialize before the session (and any worker-side
            # spill directory) closes.
            snapshot = MaterializedRunResult.from_result(result)
            metrics = (
                session.metrics.snapshot()
                if session.metrics is not None
                else None
            )
        return snapshot, record, None, metrics
    except Exception as exc:  # noqa: BLE001 - mirrored to the parent
        return None, None, _portable_error(exc), None
