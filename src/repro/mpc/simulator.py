"""The round-based MPC simulator.

An :class:`MPCSimulation` is driven imperatively by algorithm code:

.. code-block:: python

    sim = MPCSimulation(p=8, value_bits=20)
    sim.begin_round()
    sim.send(dest=3, tag="S1", tuples=[(1, 2), (5, 6)])
    sim.end_round()                   # barrier: deliver + account loads
    fragment = sim.state(3)["S1"]     # local computation phase
    sim.output(3, answers)

Bits are accounted on *receipt*, exactly as the model defines load
(Section 2.1: "the load is the amount of data received by a server
during a particular round").  A tuple of arity ``a`` costs
``a * value_bits`` bits unless the sender overrides ``bits_per_tuple``.

Setting ``capacity_bits`` models a hard per-round load cap ``L``:
``on_overflow="fail"`` aborts the execution (the paper's randomized
algorithms "abort the computation if the amount of data received during
a round would exceed the maximum load L"), while ``on_overflow="drop"``
silently discards the excess -- the device used to *run* load-capped
algorithms for the Theorem 3.5 answer-fraction experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.data.arrays import unique_rows
from repro.mpc.report import LoadReport, RoundLoad


class LoadExceededError(RuntimeError):
    """A server's per-round received bits exceeded ``capacity_bits``."""

    def __init__(self, server: int, round_index: int, bits: float, capacity: float):
        super().__init__(
            f"server {server} received {bits:.0f} bits in round "
            f"{round_index}, exceeding the capacity {capacity:.0f}"
        )
        self.server = server
        self.round_index = round_index
        self.bits = bits
        self.capacity = capacity


@dataclass
class ServerState:
    """What one server has stored so far: tag -> set of tuples.

    The columnar backend stores received batches as arrays instead
    (``array_fragments``); :meth:`array_fragment` canonicalizes them
    into one deduplicated ``(n, arity)`` array per tag.  Both stores
    share the same bit accounting at the round barrier.
    """

    server_id: int
    fragments: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)
    array_fragments: dict[str, list[np.ndarray]] = field(default_factory=dict)

    def add(self, tag: str, tuples: Iterable[tuple[int, ...]]) -> None:
        self.fragments.setdefault(tag, set()).update(tuples)

    def add_array(self, tag: str, rows: np.ndarray) -> None:
        self.array_fragments.setdefault(tag, []).append(rows)

    def get(self, tag: str) -> set[tuple[int, ...]]:
        return self.fragments.get(tag, set())

    def array_fragment(self, tag: str) -> np.ndarray | None:
        """The deduplicated array stored under ``tag`` (None if absent)."""
        batches = self.array_fragments.get(tag)
        if not batches:
            return None
        if len(batches) == 1:
            merged = batches[0]
        else:
            merged = np.concatenate(batches, axis=0)
        merged = unique_rows(merged)
        self.array_fragments[tag] = [merged]
        return merged

    def tags(self) -> tuple[str, ...]:
        seen = dict.fromkeys(self.fragments)
        seen.update(dict.fromkeys(self.array_fragments))
        return tuple(seen)

    def clear(self, tag: str | None = None) -> None:
        """Forget stored data (free local storage between plan stages)."""
        if tag is None:
            self.fragments.clear()
            self.array_fragments.clear()
        else:
            self.fragments.pop(tag, None)
            self.array_fragments.pop(tag, None)


class MPCSimulation:
    """A ``p``-server MPC execution with bit-level load accounting."""

    def __init__(
        self,
        p: int,
        value_bits: int,
        capacity_bits: float | None = None,
        on_overflow: Literal["fail", "drop"] = "fail",
    ):
        if p < 1:
            raise ValueError("need at least one server")
        if value_bits < 1:
            raise ValueError("value_bits must be >= 1")
        if on_overflow not in ("fail", "drop"):
            raise ValueError("on_overflow must be 'fail' or 'drop'")
        self.p = p
        self.value_bits = value_bits
        self.capacity_bits = capacity_bits
        self.on_overflow = on_overflow
        self._servers = [ServerState(s) for s in range(p)]
        self._report = LoadReport(p)
        self._in_round = False
        self._pending: list[
            tuple[int, str, tuple[tuple[int, ...], ...] | np.ndarray, float]
        ] = []
        self._outputs: list[set[tuple[int, ...]]] = [set() for _ in range(p)]
        self._array_outputs: list[list[np.ndarray]] = [[] for _ in range(p)]

    # ------------------------------------------------------------- lifecycle

    def begin_round(self) -> None:
        if self._in_round:
            raise RuntimeError("already inside a round; call end_round first")
        self._in_round = True
        self._pending = []

    def end_round(self) -> RoundLoad:
        """The synchronization barrier: deliver sends, account loads."""
        if not self._in_round:
            raise RuntimeError("no round in progress; call begin_round first")
        round_load = RoundLoad()
        received_bits = [0.0] * self.p
        for dest, tag, payload, bits_per_tuple in self._pending:
            if isinstance(payload, np.ndarray):
                self._deliver_array(
                    round_load, received_bits, dest, tag, payload, bits_per_tuple
                )
                continue
            accepted: list[tuple[int, ...]] = []
            for t in payload:
                cost = bits_per_tuple
                if (
                    self.capacity_bits is not None
                    and received_bits[dest] + cost > self.capacity_bits
                ):
                    if self.on_overflow == "fail":
                        raise LoadExceededError(
                            dest,
                            self._report.num_rounds + 1,
                            received_bits[dest] + cost,
                            self.capacity_bits,
                        )
                    round_load.drop(dest, cost)
                    continue
                received_bits[dest] += cost
                accepted.append(t)
            if accepted:
                self._servers[dest].add(tag, accepted)
                round_load.add(
                    dest, len(accepted) * bits_per_tuple, len(accepted)
                )
        self._report.rounds.append(round_load)
        self._in_round = False
        self._pending = []
        return round_load

    def _deliver_array(
        self,
        round_load: RoundLoad,
        received_bits: list[float],
        dest: int,
        tag: str,
        rows: np.ndarray,
        bits_per_tuple: float,
    ) -> None:
        """Deliver an array batch with the tuple path's exact accounting.

        Every row costs ``bits_per_tuple`` on receipt; under a capacity
        cap the accepted rows are the longest prefix that fits (the
        per-tuple loop accepts exactly that prefix, since all rows of a
        batch share one cost).
        """
        accept = len(rows)
        if self.capacity_bits is not None and bits_per_tuple > 0:
            headroom = self.capacity_bits - received_bits[dest]
            fit = int(headroom // bits_per_tuple) if headroom > 0 else 0
            if fit < accept:
                if self.on_overflow == "fail":
                    raise LoadExceededError(
                        dest,
                        self._report.num_rounds + 1,
                        received_bits[dest] + (fit + 1) * bits_per_tuple,
                        self.capacity_bits,
                    )
                round_load.drop(dest, (accept - fit) * bits_per_tuple)
                accept = fit
        if accept:
            received_bits[dest] += accept * bits_per_tuple
            self._servers[dest].add_array(tag, rows[:accept])
            round_load.add(dest, accept * bits_per_tuple, accept)

    # ----------------------------------------------------------- primitives

    def send(
        self,
        dest: int,
        tag: str,
        tuples: Iterable[tuple[int, ...]],
        bits_per_tuple: float | None = None,
    ) -> None:
        """Queue tuples for delivery to ``dest`` at the round barrier."""
        if not self._in_round:
            raise RuntimeError("send outside a round; call begin_round first")
        if not 0 <= dest < self.p:
            raise ValueError(f"destination {dest} outside [0, {self.p})")
        batch = tuple(tuple(t) for t in tuples)
        if not batch:
            return
        if bits_per_tuple is None:
            bits_per_tuple = len(batch[0]) * self.value_bits
        self._pending.append((dest, tag, batch, float(bits_per_tuple)))

    def send_array(
        self,
        dest: int,
        tag: str,
        rows: np.ndarray,
        bits_per_tuple: float | None = None,
    ) -> None:
        """Queue a ``(n, arity)`` array batch for delivery at the barrier.

        Accounting is identical to :meth:`send`: each row costs
        ``arity * value_bits`` bits on receipt unless overridden.
        """
        if not self._in_round:
            raise RuntimeError("send outside a round; call begin_round first")
        if not 0 <= dest < self.p:
            raise ValueError(f"destination {dest} outside [0, {self.p})")
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"need a 2-D (n, arity) batch, got shape {rows.shape}")
        if len(rows) == 0:
            return
        if bits_per_tuple is None:
            bits_per_tuple = rows.shape[1] * self.value_bits
        self._pending.append((dest, tag, rows, float(bits_per_tuple)))

    def broadcast(
        self,
        tag: str,
        tuples: Iterable[tuple[int, ...]],
        bits_per_tuple: float | None = None,
    ) -> None:
        """Send the same tuples to every server."""
        batch = tuple(tuple(t) for t in tuples)
        for dest in range(self.p):
            self.send(dest, tag, batch, bits_per_tuple)

    # --------------------------------------------------------------- access

    def state(self, server: int) -> dict[str, set[tuple[int, ...]]]:
        """The server's stored fragments (local computation phase)."""
        return self._servers[server].fragments

    def array_state(
        self, server: int, prefix: str | None = None
    ) -> dict[str, np.ndarray]:
        """The server's array-form fragments (columnar local phase).

        Only tags that received array batches appear; each maps to one
        deduplicated ``(n, arity)`` array.  With ``prefix``, only tags
        starting with it are merged (co-resident operators' fragments
        stay untouched) and the keys are returned with the prefix
        stripped -- the namespaced-tag convention of the multi-round
        executor.
        """
        state = self._servers[server]
        out: dict[str, np.ndarray] = {}
        for tag in state.array_fragments:
            if prefix is not None and not tag.startswith(prefix):
                continue
            merged = state.array_fragment(tag)
            if merged is not None and len(merged):
                out[tag if prefix is None else tag[len(prefix):]] = merged
        return out

    def server(self, server: int) -> ServerState:
        return self._servers[server]

    def clear_all(self, tag: str | None = None) -> None:
        """Drop stored fragments on every server (between plan stages)."""
        for s in self._servers:
            s.clear(tag)

    def output(self, server: int, tuples: Iterable[tuple[int, ...]]) -> None:
        """Record locally-produced answers (stays at the server)."""
        self._outputs[server].update(tuple(t) for t in tuples)

    def output_array(self, server: int, rows: np.ndarray) -> None:
        """Record locally-produced answers given as a ``(n, k)`` array."""
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"need a 2-D (n, k) answer array, got {rows.shape}")
        if len(rows):
            self._array_outputs[server].append(rows)

    def outputs(self) -> set[tuple[int, ...]]:
        """The union of all servers' outputs -- the algorithm's answer."""
        out: set[tuple[int, ...]] = set()
        for chunk in self._outputs:
            out |= chunk
        for batches in self._array_outputs:
            for rows in batches:
                out.update(map(tuple, rows.tolist()))
        return out

    def outputs_array(self, width: int) -> np.ndarray:
        """All servers' outputs as one canonical ``(n, width)`` array.

        The columnar counterpart of :meth:`outputs`: set-form outputs
        are converted, array batches concatenated, and the union
        deduplicated row-wise.
        """
        batches = [
            rows for per_server in self._array_outputs for rows in per_server
        ]
        merged_sets = set()
        for chunk in self._outputs:
            merged_sets |= chunk
        if merged_sets:
            batches.append(
                np.array(sorted(merged_sets), dtype=np.int64).reshape(
                    len(merged_sets), width
                )
            )
        if not batches:
            return np.empty((0, width), dtype=np.int64)
        return unique_rows(np.concatenate(batches, axis=0))

    def outputs_of(self, server: int) -> set[tuple[int, ...]]:
        out = set(self._outputs[server])
        for rows in self._array_outputs[server]:
            out.update(map(tuple, rows.tolist()))
        return out

    def output_counts(self) -> list[int]:
        """Distinct answers recorded per server."""
        return [len(self.outputs_of(s)) for s in range(self.p)]

    @property
    def report(self) -> LoadReport:
        return self._report

    @property
    def rounds_executed(self) -> int:
        return self._report.num_rounds
