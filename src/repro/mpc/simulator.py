"""The round-based MPC simulator.

An :class:`MPCSimulation` is driven imperatively by algorithm code:

.. code-block:: python

    sim = MPCSimulation(p=8, value_bits=20)
    sim.begin_round()
    sim.send(dest=3, tag="S1", tuples=[(1, 2), (5, 6)])
    sim.end_round()                   # barrier: close the round's loads
    fragment = sim.state(3)["S1"]     # local computation phase
    sim.output(3, answers)

Bits are accounted on *receipt*, exactly as the model defines load
(Section 2.1: "the load is the amount of data received by a server
during a particular round").  A tuple of arity ``a`` costs
``a * value_bits`` bits unless the sender overrides ``bits_per_tuple``.
Delivery is streaming: each ``send`` is accounted and stored the moment
it is issued (in send order, which is all capacity truncation depends
on), so a round never buffers its full traffic -- the property that
lets out-of-core executions route terabytes through a constant-memory
simulator.  ``end_round`` is purely the accounting barrier closing the
round's :class:`RoundLoad`.

Setting ``capacity_bits`` models a hard per-round load cap ``L``:
``on_overflow="fail"`` aborts the execution (the paper's randomized
algorithms "abort the computation if the amount of data received during
a round would exceed the maximum load L"), while ``on_overflow="drop"``
silently discards the excess -- the device used to *run* load-capped
algorithms for the Theorem 3.5 answer-fraction experiments.

With a :class:`~repro.storage.manager.StorageManager` attached
(``storage=``), every server's received array batches and array outputs
accumulate in chunked spools that spill to disk past the chunk size, so
per-server fragments of an out-of-core run never sum up in RAM; the
bit accounting is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Literal

import numpy as np

from repro.data.arrays import unique_rows
from repro.metrics.registry import active_metrics
from repro.mpc.report import LoadReport, RoundLoad
from repro.trace.recorder import active_recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config import MachineSpec
    from repro.mpc.timing import PhaseTimer
    from repro.storage.manager import StorageManager
    from repro.trace.recorder import TraceRecorder


class LoadExceededError(RuntimeError):
    """A server's per-round received bits exceeded its capacity.

    ``capacity`` is the *breaching server's own* effective cap -- on a
    heterogeneous cluster (per-machine ``capacity_bits`` in a
    :class:`~repro.config.MachineSpec`) servers cap at different
    levels, so the error carries the one that was actually exceeded,
    not a global number.
    """

    def __init__(self, server: int, round_index: int, bits: float, capacity: float):
        super().__init__(
            f"server {server} received {bits:.0f} bits in round "
            f"{round_index}, exceeding its capacity {capacity:.0f}"
        )
        self.server = server
        self.round_index = round_index
        self.bits = bits
        self.capacity = capacity

    def __reduce__(self):
        # The default exception reduce replays __init__ with args=(the
        # formatted message,), which does not match this 4-argument
        # signature -- pickling would raise on unpickle.  Process-pool
        # workers ship this exception back to the parent, so rebuild it
        # from the structured fields instead.
        return (
            LoadExceededError,
            (self.server, self.round_index, self.bits, self.capacity),
        )


@dataclass
class ServerState:
    """What one server has stored so far: tag -> set of tuples.

    The columnar backend stores received batches as arrays instead
    (``array_fragments``); :meth:`array_fragment` canonicalizes them
    into one deduplicated ``(n, arity)`` array per tag.  Both stores
    share the same bit accounting at delivery time.  With a storage
    manager attached, array batches go to per-tag chunked spools
    (``array_spools``) that spill to disk instead of accumulating in
    RAM.
    """

    server_id: int
    storage: "StorageManager | None" = None
    fragments: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)
    array_fragments: dict[str, list[np.ndarray]] = field(default_factory=dict)
    array_spools: dict[str, object] = field(default_factory=dict)

    def add(self, tag: str, tuples: Iterable[tuple[int, ...]]) -> None:
        self.fragments.setdefault(tag, set()).update(tuples)

    def add_array(self, tag: str, rows: np.ndarray) -> None:
        if self.storage is not None:
            spool = self.array_spools.get(tag)
            if spool is None:
                spool = self.storage.spool(
                    f"srv{self.server_id}-{tag}", rows.shape[1]
                )
                self.array_spools[tag] = spool
            spool.append(rows)
            return
        self.array_fragments.setdefault(tag, []).append(rows)

    def get(self, tag: str) -> set[tuple[int, ...]]:
        return self.fragments.get(tag, set())

    def array_fragment(self, tag: str) -> np.ndarray | None:
        """The deduplicated array stored under ``tag`` (None if absent).

        In-memory batches are merged once and cached back; spooled
        batches are merged per call and deliberately *not* cached (the
        caller is about to join and discard them -- pinning the merge
        would hold every server's fragment at once again).
        """
        spool = self.array_spools.get(tag)
        if spool is not None:
            if not len(spool):
                return None
            return unique_rows(spool.to_array())
        batches = self.array_fragments.get(tag)
        if not batches:
            return None
        if len(batches) == 1:
            merged = batches[0]
        else:
            merged = np.concatenate(batches, axis=0)
        merged = unique_rows(merged)
        self.array_fragments[tag] = [merged]
        return merged

    def tags(self) -> tuple[str, ...]:
        seen = dict.fromkeys(self.fragments)
        seen.update(dict.fromkeys(self.array_fragments))
        seen.update(dict.fromkeys(self.array_spools))
        return tuple(seen)

    def clear(self, tag: str | None = None) -> None:
        """Forget stored data (free local storage between plan stages)."""
        if tag is None:
            self.fragments.clear()
            self.array_fragments.clear()
            for spool in self.array_spools.values():
                spool.drop()
            self.array_spools.clear()
        else:
            self.fragments.pop(tag, None)
            self.array_fragments.pop(tag, None)
            spool = self.array_spools.pop(tag, None)
            if spool is not None:
                spool.drop()


class MPCSimulation:
    """A ``p``-server MPC execution with bit-level load accounting."""

    def __init__(
        self,
        p: int,
        value_bits: int,
        capacity_bits: float | None = None,
        on_overflow: Literal["fail", "drop"] = "fail",
        storage: "StorageManager | None" = None,
        timer: "PhaseTimer | None" = None,
        trace: "TraceRecorder | None" = None,
        machines: "MachineSpec | None" = None,
    ):
        if p < 1:
            raise ValueError("need at least one server")
        if value_bits < 1:
            raise ValueError("value_bits must be >= 1")
        if on_overflow not in ("fail", "drop"):
            raise ValueError("on_overflow must be 'fail' or 'drop'")
        self.p = p
        self.value_bits = value_bits
        self.capacity_bits = capacity_bits
        self.on_overflow = on_overflow
        self.storage = storage
        # Per-server effective caps: each server's own machine cap (the
        # spec extends modularly past machines.p -- block servers of the
        # skew executors live on the same physical machines) tightened
        # by the global cap.  Homogeneous clusters put the global cap in
        # every slot, so the per-delivery comparisons are unchanged.
        self.machines = machines
        caps: list[float | None] = [capacity_bits] * p
        if machines is not None and machines.capacities is not None:
            for s in range(p):
                own = machines.capacity(s)
                if own is not None:
                    caps[s] = own if capacity_bits is None else min(own, capacity_bits)
        self._caps = caps
        # Accounting side-channels.  The timer attributes delivered bits
        # to the executor's current phase (phase_bytes); the recorder
        # gets one event per delivery.  Neither affects results: both
        # observe the exact accepted/dropped quantities the accounting
        # below computes anyway.  When no trace is passed explicitly,
        # the context-installed recorder (repro.trace.tracing) applies.
        self.timer = timer
        self.trace = trace if trace is not None else active_recorder()
        # Metrics follow the same contextvar scoping as tracing; the
        # per-delivery counters are bound once here so the hot paths
        # pay one None check plus a few guarded adds when enabled.
        self.metrics = active_metrics()
        if self.metrics is not None:
            self.metrics.counter("repro_sim_simulations_total").inc()
            self._metric_sends = self.metrics.counter("repro_sim_sends_total")
            self._metric_bits = self.metrics.counter("repro_sim_bits_total")
            self._metric_tuples = self.metrics.counter(
                "repro_sim_tuples_total"
            )
            self._metric_dropped = self.metrics.counter(
                "repro_sim_dropped_bits_total"
            )
        if self.trace is not None:
            event = {
                "t": "sim",
                "p": p,
                "value_bits": value_bits,
                "capacity_bits": capacity_bits,
                "on_overflow": on_overflow,
                "storage": storage is not None,
            }
            if machines is not None:
                event["machines"] = machines.describe()
            self.trace.emit(event)
        self._servers = [ServerState(s, storage) for s in range(p)]
        self._report = LoadReport(p, machines=machines)
        self._in_round = False
        self._round_load: RoundLoad | None = None
        self._received_bits: list[float] = []
        self._outputs: list[set[tuple[int, ...]]] = [set() for _ in range(p)]
        self._array_outputs: list[list[np.ndarray]] = [[] for _ in range(p)]
        self._output_spools: list[object | None] = [None] * p

    # ------------------------------------------------------------- lifecycle

    def begin_round(self) -> None:
        if self._in_round:
            raise RuntimeError("already inside a round; call end_round first")
        self._in_round = True
        self._round_load = RoundLoad()
        self._received_bits = [0.0] * self.p

    def end_round(self) -> RoundLoad:
        """The synchronization barrier: close the round's accounting."""
        if not self._in_round:
            raise RuntimeError("no round in progress; call begin_round first")
        round_load = self._round_load
        self._report.rounds.append(round_load)
        self._in_round = False
        self._round_load = None
        self._received_bits = []
        if self.trace is not None:
            self.trace.emit({
                "t": "round",
                "r": self._report.num_rounds,
                "total_bits": round_load.total_bits,
                "max_bits": round_load.max_bits,
                "tuples": sum(round_load.tuples.values()),
                "dropped_bits": sum(round_load.dropped_bits.values()),
            })
        if self.metrics is not None:
            self.metrics.counter("repro_sim_rounds_total").inc()
            self.metrics.gauge("repro_sim_round_max_bits").set(
                round_load.max_bits
            )
        return round_load

    def _deliver_tuples(
        self,
        dest: int,
        tag: str,
        batch: tuple[tuple[int, ...], ...],
        bits_per_tuple: float,
    ) -> None:
        """Deliver a tuple batch with per-tuple capacity accounting."""
        round_load = self._round_load
        received_bits = self._received_bits
        capacity = self._caps[dest]
        accepted: list[tuple[int, ...]] = []
        dropped = 0.0
        for t in batch:
            cost = bits_per_tuple
            if (
                capacity is not None
                and received_bits[dest] + cost > capacity
            ):
                if self.on_overflow == "fail":
                    raise LoadExceededError(
                        dest,
                        self._report.num_rounds + 1,
                        received_bits[dest] + cost,
                        capacity,
                    )
                round_load.drop(dest, cost)
                dropped += cost
                continue
            received_bits[dest] += cost
            accepted.append(t)
        accepted_bits = len(accepted) * bits_per_tuple
        if accepted:
            self._servers[dest].add(tag, accepted)
            round_load.add(dest, accepted_bits, len(accepted))
            if self.timer is not None:
                self.timer.account_bits(accepted_bits)
        if self.trace is not None and (accepted or dropped):
            self.trace.send(
                self._report.num_rounds + 1,
                dest,
                tag,
                accepted_bits,
                len(accepted),
                dropped,
            )
        if self.metrics is not None and (accepted or dropped):
            self._metric_sends.inc()
            self._metric_bits.inc(accepted_bits)
            self._metric_tuples.inc(len(accepted))
            if dropped:
                self._metric_dropped.inc(dropped)

    def _deliver_array(
        self,
        dest: int,
        tag: str,
        rows: np.ndarray,
        bits_per_tuple: float,
    ) -> None:
        """Deliver an array batch with the tuple path's exact accounting.

        Every row costs ``bits_per_tuple`` on receipt; under a capacity
        cap the accepted rows are the longest prefix that fits (the
        per-tuple loop accepts exactly that prefix, since all rows of a
        batch share one cost).
        """
        round_load = self._round_load
        received_bits = self._received_bits
        capacity = self._caps[dest]
        accept = len(rows)
        dropped = 0.0
        if capacity is not None and bits_per_tuple > 0:
            headroom = capacity - received_bits[dest]
            fit = int(headroom // bits_per_tuple) if headroom > 0 else 0
            if fit < accept:
                if self.on_overflow == "fail":
                    raise LoadExceededError(
                        dest,
                        self._report.num_rounds + 1,
                        received_bits[dest] + (fit + 1) * bits_per_tuple,
                        capacity,
                    )
                dropped = (accept - fit) * bits_per_tuple
                round_load.drop(dest, dropped)
                accept = fit
        accepted_bits = accept * bits_per_tuple
        if accept:
            received_bits[dest] += accepted_bits
            self._servers[dest].add_array(tag, rows[:accept])
            round_load.add(dest, accepted_bits, accept)
            if self.timer is not None:
                self.timer.account_bits(accepted_bits)
        if self.trace is not None and (accept or dropped):
            self.trace.send(
                self._report.num_rounds + 1,
                dest,
                tag,
                accepted_bits,
                accept,
                dropped,
            )
        if self.metrics is not None and (accept or dropped):
            self._metric_sends.inc()
            self._metric_bits.inc(accepted_bits)
            self._metric_tuples.inc(accept)
            if dropped:
                self._metric_dropped.inc(dropped)

    # ----------------------------------------------------------- primitives

    def send(
        self,
        dest: int,
        tag: str,
        tuples: Iterable[tuple[int, ...]],
        bits_per_tuple: float | None = None,
    ) -> None:
        """Account and store tuples at ``dest`` (streaming delivery)."""
        if not self._in_round:
            raise RuntimeError("send outside a round; call begin_round first")
        if not 0 <= dest < self.p:
            raise ValueError(f"destination {dest} outside [0, {self.p})")
        batch = tuple(tuple(t) for t in tuples)
        if not batch:
            return
        if bits_per_tuple is None:
            bits_per_tuple = len(batch[0]) * self.value_bits
        self._deliver_tuples(dest, tag, batch, float(bits_per_tuple))

    def send_array(
        self,
        dest: int,
        tag: str,
        rows: np.ndarray,
        bits_per_tuple: float | None = None,
    ) -> None:
        """Account and store a ``(n, arity)`` array batch at ``dest``.

        Accounting is identical to :meth:`send`: each row costs
        ``arity * value_bits`` bits on receipt unless overridden.
        """
        if not self._in_round:
            raise RuntimeError("send outside a round; call begin_round first")
        if not 0 <= dest < self.p:
            raise ValueError(f"destination {dest} outside [0, {self.p})")
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"need a 2-D (n, arity) batch, got shape {rows.shape}")
        if len(rows) == 0:
            return
        if bits_per_tuple is None:
            bits_per_tuple = rows.shape[1] * self.value_bits
        self._deliver_array(dest, tag, rows, float(bits_per_tuple))

    def broadcast(
        self,
        tag: str,
        tuples: Iterable[tuple[int, ...]],
        bits_per_tuple: float | None = None,
    ) -> None:
        """Send the same tuples to every server."""
        batch = tuple(tuple(t) for t in tuples)
        for dest in range(self.p):
            self.send(dest, tag, batch, bits_per_tuple)

    # --------------------------------------------------------------- access

    def state(self, server: int) -> dict[str, set[tuple[int, ...]]]:
        """The server's stored fragments (local computation phase)."""
        return self._servers[server].fragments

    def array_state(
        self, server: int, prefix: str | None = None
    ) -> dict[str, np.ndarray]:
        """The server's array-form fragments (columnar local phase).

        Only tags that received array batches appear; each maps to one
        deduplicated ``(n, arity)`` array.  With ``prefix``, only tags
        starting with it are merged (co-resident operators' fragments
        stay untouched) and the keys are returned with the prefix
        stripped -- the namespaced-tag convention of the multi-round
        executor.
        """
        state = self._servers[server]
        tags = list(state.array_fragments)
        tags += [t for t in state.array_spools if t not in state.array_fragments]
        out: dict[str, np.ndarray] = {}
        for tag in tags:
            if prefix is not None and not tag.startswith(prefix):
                continue
            merged = state.array_fragment(tag)
            if merged is not None and len(merged):
                out[tag if prefix is None else tag[len(prefix):]] = merged
        return out

    def server(self, server: int) -> ServerState:
        return self._servers[server]

    def clear_all(self, tag: str | None = None) -> None:
        """Drop stored fragments on every server (between plan stages)."""
        for s in self._servers:
            s.clear(tag)

    def output(self, server: int, tuples: Iterable[tuple[int, ...]]) -> None:
        """Record locally-produced answers (stays at the server)."""
        self._outputs[server].update(tuple(t) for t in tuples)

    def output_array(self, server: int, rows: np.ndarray) -> None:
        """Record locally-produced answers given as a ``(n, k)`` array.

        With a storage manager attached the rows go to a per-server
        output spool, so huge answer sets spill instead of pinning RAM.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"need a 2-D (n, k) answer array, got {rows.shape}")
        if not len(rows):
            return
        if self.storage is not None:
            spool = self._output_spools[server]
            if spool is None:
                spool = self.storage.spool(f"out{server}", rows.shape[1])
                self._output_spools[server] = spool
            spool.append(rows)
            return
        self._array_outputs[server].append(rows)

    def adopt_output_spool(self, server: int, spool) -> None:
        """Hand an existing chunked spool over as ``server``'s outputs.

        Out-of-core executors whose final per-server results already
        live in manager-owned spools (the multi-round root view) avoid
        re-reading and re-spilling every chunk through
        :meth:`output_array`.
        """
        if self.storage is None:
            raise RuntimeError("adopt_output_spool needs storage mode")
        if (
            self._output_spools[server] is not None
            or self._outputs[server]
            or self._array_outputs[server]
        ):
            raise RuntimeError(f"server {server} already holds outputs")
        self._output_spools[server] = spool

    def _array_output_batches(self, server: int) -> list[np.ndarray]:
        batches = list(self._array_outputs[server])
        spool = self._output_spools[server]
        if spool is not None:
            # Copy memmap chunks so each file descriptor closes as the
            # next chunk is read (see ServerState.array_fragment).
            batches.extend(np.array(c) for c in spool.chunks())
        return batches

    def outputs(self) -> set[tuple[int, ...]]:
        """The union of all servers' outputs -- the algorithm's answer."""
        out: set[tuple[int, ...]] = set()
        for chunk in self._outputs:
            out |= chunk
        for server in range(self.p):
            for rows in self._array_output_batches(server):
                out.update(map(tuple, rows.tolist()))
        return out

    def outputs_array(self, width: int) -> np.ndarray:
        """All servers' outputs as one canonical ``(n, width)`` array.

        The columnar counterpart of :meth:`outputs`: set-form outputs
        are converted, array batches concatenated, and the union
        deduplicated row-wise.
        """
        batches = [
            rows
            for server in range(self.p)
            for rows in self._array_output_batches(server)
        ]
        merged_sets = set()
        for chunk in self._outputs:
            merged_sets |= chunk
        if merged_sets:
            batches.append(
                np.array(sorted(merged_sets), dtype=np.int64).reshape(
                    len(merged_sets), width
                )
            )
        if not batches:
            return np.empty((0, width), dtype=np.int64)
        return unique_rows(np.concatenate(batches, axis=0))

    def output_rows_total(self) -> int:
        """Rows recorded across all servers, duplicates included.

        A streaming-friendly size signal: unlike :meth:`outputs` it
        never materializes the union, so out-of-core benches can report
        answer volumes without holding them.
        """
        total = sum(len(chunk) for chunk in self._outputs)
        for server in range(self.p):
            total += sum(
                len(rows) for rows in self._array_outputs[server]
            )
            spool = self._output_spools[server]
            if spool is not None:
                total += len(spool)
        return total

    def outputs_of(self, server: int) -> set[tuple[int, ...]]:
        out = set(self._outputs[server])
        for rows in self._array_output_batches(server):
            out.update(map(tuple, rows.tolist()))
        return out

    def output_counts(self) -> list[int]:
        """Distinct answers recorded per server."""
        return [len(self.outputs_of(s)) for s in range(self.p)]

    @property
    def report(self) -> LoadReport:
        return self._report

    @property
    def rounds_executed(self) -> int:
        return self._report.num_rounds
