"""The Massively Parallel Communication (MPC) model as a simulator.

Section 2.1 defines the model: ``p`` servers connected by private
channels compute in synchronous rounds, each round consisting of a
communication phase followed by unlimited local computation.  An
algorithm is judged by two numbers only -- the number of rounds ``r``
and the *maximum load* ``L``, the largest number of bits any server
receives in any single round.

:class:`~repro.mpc.simulator.MPCSimulation` realizes exactly this
abstract machine: algorithms call ``send`` during a round, the
simulator delivers everything at the round barrier and records bits
received per (server, round).  Local computation is free (it happens in
plain Python between rounds), mirroring the model's "infinitely
powerful" servers.  A configurable per-round capacity lets experiments
abort or truncate on overload, which is how the load-capped
lower-bound experiments are run.
"""

from repro.mpc.report import LoadReport, RoundLoad
from repro.mpc.simulator import LoadExceededError, MPCSimulation, ServerState

__all__ = [
    "LoadExceededError",
    "LoadReport",
    "MPCSimulation",
    "RoundLoad",
    "ServerState",
]
