"""Per-phase wall-clock accounting for one execution.

A :class:`PhaseTimer` splits a run's wall time across named phases
(``generate``/``route``/``ship``/``join``/``merge``) with *exclusive*
nesting: entering an inner phase pauses the enclosing one, so the
recorded seconds are disjoint and sum to the instrumented wall time.
That is what makes the split meaningful for locating where a worker
pool's speedup lands -- ``route`` is time producing routed batches,
``ship`` is simulator delivery/accounting, ``join`` is local
computation, ``merge`` is output collection.

The executors attach the accumulated dict to their
:class:`~repro.mpc.report.LoadReport` (``phase_seconds``), from where
:class:`~repro.session.RunRecord` and ``workload_summary()`` surface
it.  Under the serial pool a phase's producer runs inline at
consumption time, so ``route``/``join`` include the task bodies; under
thread/process pools those bodies overlap, and the parent-side phases
measure what the merging thread actually waited for.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PhaseTimer:
    """Accumulate exclusive per-phase seconds via nested contexts.

    .. code-block:: python

        timer = PhaseTimer()
        with timer.phase("route"):
            ...
            with timer.phase("ship"):   # pauses "route"
                sim.send_array(...)
        timer.seconds  # {"route": ..., "ship": ...}
    """

    __slots__ = ("seconds", "bits", "_stack")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.bits: dict[str, float] = {}
        self._stack: list[list] = []  # [name, started] frames

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        now = time.perf_counter()
        if self._stack:
            outer = self._stack[-1]
            self.seconds[outer[0]] = (
                self.seconds.get(outer[0], 0.0) + now - outer[1]
            )
        self._stack.append([name, now])
        try:
            yield
        finally:
            now = time.perf_counter()
            frame = self._stack.pop()
            self.seconds[frame[0]] = (
                self.seconds.get(frame[0], 0.0) + now - frame[1]
            )
            if self._stack:
                self._stack[-1][1] = now

    def account_bits(self, bits: float) -> None:
        """Attribute delivered bits to the innermost active phase.

        Called by the simulator on every accepted delivery when it was
        constructed with this timer, so ``self.bits`` splits the run's
        communicated bits across the same exclusive phases as the
        seconds (``phase_bytes`` on the report).  Outside any phase the
        bits land under ``"other"``.
        """
        name = self._stack[-1][0] if self._stack else "other"
        self.bits[name] = self.bits.get(name, 0.0) + bits

    def attach(self, report) -> None:
        """Copy the accumulated seconds and bits onto the report."""
        report.phase_seconds.update(self.seconds)
        report.phase_bytes.update(self.bits)


def format_phase_seconds(phase_seconds: dict[str, float]) -> str:
    """``"route 0.12s, join 0.50s"`` in canonical phase order."""
    order = ("generate", "route", "ship", "join", "merge")
    named = [
        f"{name} {phase_seconds[name] * 1e3:.1f}ms"
        for name in order
        if name in phase_seconds
    ]
    named += [
        f"{name} {value * 1e3:.1f}ms"
        for name, value in phase_seconds.items()
        if name not in order
    ]
    return ", ".join(named)


def format_bits(bits: float) -> str:
    """Humanize a bit count: ``"736b"``, ``"7.2kb"``, ``"3.1Mb"``."""
    bits = float(bits)
    for threshold, unit in ((1e9, "Gb"), (1e6, "Mb"), (1e3, "kb")):
        if abs(bits) >= threshold:
            return f"{bits / threshold:.1f}{unit}"
    return f"{bits:.0f}b"


def format_phases(
    phase_seconds: dict[str, float], phase_bytes: dict[str, float]
) -> str:
    """``"route 0.1ms/7.2kb, join 0.5ms"`` in canonical phase order.

    Phases appearing in either dict are rendered; the bits part is
    omitted for phases that shipped nothing (``generate``, ``join``).
    """
    order = ("generate", "route", "ship", "join", "merge")
    names = [n for n in order if n in phase_seconds or n in phase_bytes]
    names += [
        n
        for n in {**phase_seconds, **phase_bytes}
        if n not in order
    ]
    parts = []
    for name in names:
        rendered = f"{name} {phase_seconds.get(name, 0.0) * 1e3:.1f}ms"
        if phase_bytes.get(name):
            rendered += f"/{format_bits(phase_bytes[name])}"
        parts.append(rendered)
    return ", ".join(parts)
