"""Load accounting for MPC executions.

The MPC model's cost metrics (Section 2.1): the number of rounds ``r``
and the maximum load ``L = max over servers and rounds of bits received
in one round``.  Section 3.4 additionally defines the *replication
rate* ``r = sum_s L_s / |I|`` -- how many times each input bit is
communicated on average.  :class:`LoadReport` collects all of these
from a finished simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config import MachineSpec


@dataclass
class RoundLoad:
    """Bits and tuples received by every server during one round."""

    bits: dict[int, float] = field(default_factory=dict)
    tuples: dict[int, int] = field(default_factory=dict)
    dropped_bits: dict[int, float] = field(default_factory=dict)

    def add(self, server: int, bits: float, tuples: int) -> None:
        self.bits[server] = self.bits.get(server, 0.0) + bits
        self.tuples[server] = self.tuples.get(server, 0) + tuples

    def drop(self, server: int, bits: float) -> None:
        self.dropped_bits[server] = self.dropped_bits.get(server, 0.0) + bits

    def bits_array(self, p: int) -> np.ndarray:
        """Per-server received bits as a dense length-``p`` array.

        Servers that received nothing this round appear as 0 -- they
        are real servers and belong in every percentile.
        """
        out = np.zeros(p, dtype=np.float64)
        if self.bits:
            index = np.fromiter(self.bits.keys(), dtype=np.int64,
                                count=len(self.bits))
            values = np.fromiter(self.bits.values(), dtype=np.float64,
                                 count=len(self.bits))
            out[index] = values
        return out

    @property
    def max_bits(self) -> float:
        return max(self.bits.values(), default=0.0)

    @property
    def max_tuples(self) -> int:
        return max(self.tuples.values(), default=0)

    @property
    def total_bits(self) -> float:
        return sum(self.bits.values())


@dataclass
class LoadReport:
    """Per-round load history of a complete MPC execution.

    When the execution was chosen by the cost-based planner, the
    planner attaches its prediction (:meth:`attach_prediction`) so
    every report can answer "how close was the model?" via
    :meth:`prediction_ratio`.
    """

    p: int
    rounds: list[RoundLoad] = field(default_factory=list)
    strategy: str | None = None
    predicted_load_bits: float | None = None
    predicted_rounds: int | None = None
    #: Exclusive wall-clock seconds per execution phase
    #: (``generate``/``route``/``ship``/``join``/``merge``), attached by
    #: the instrumented executors via
    #: :meth:`repro.mpc.timing.PhaseTimer.attach`.  Empty when the
    #: executor does not instrument (the tuple-backend baselines).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Exclusive *bits delivered* per execution phase -- the
    #: communication-volume twin of :attr:`phase_seconds`, accounted by
    #: the simulator against the innermost active phase on every
    #: accepted delivery.  For instrumented executors the values sum to
    #: :attr:`total_bits`; empty for the uninstrumented baselines.
    #: (Named ``phase_bytes`` for symmetry with the trace tooling; the
    #: unit is the model's load unit, bits.)
    phase_bytes: dict[str, float] = field(default_factory=dict)
    #: Spill I/O deltas for this run when it executed against a
    #: :class:`~repro.storage.manager.StorageManager`
    #: (:meth:`attach_spill`): ``bytes_written``, ``bytes_read``,
    #: ``files_created``, ``peak_live_bytes``.  None for in-memory runs.
    spill_stats: dict[str, int] | None = None
    #: The cluster's machine spec when the run was heterogeneous
    #: (per-server speeds/capacities); None for the homogeneous model.
    #: Enables the speed-normalized metrics (:meth:`makespan_bits`,
    #: :meth:`normalized_percentiles`) -- with unit speeds they all
    #: coincide with the raw-load ones.
    machines: "MachineSpec | None" = None

    def attach_prediction(
        self,
        strategy: str,
        load_bits: float,
        rounds: int | None = None,
    ) -> None:
        """Record the cost model's prediction for this execution."""
        self.strategy = strategy
        self.predicted_load_bits = float(load_bits)
        self.predicted_rounds = rounds

    def attach_spill(self, stats: dict[str, int]) -> None:
        """Record the run's spill I/O counters (out-of-core runs)."""
        self.spill_stats = dict(stats)

    def prediction_ratio(self) -> float | None:
        """``measured L / predicted L`` (None without a prediction).

        Values near 1 mean the closed-form cost model was accurate;
        values well below 1 mean it was conservative.
        """
        if not self.predicted_load_bits:
            return None
        return self.max_load_bits / self.predicted_load_bits

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def max_load_bits(self) -> float:
        """``L``: the paper's maximum load, in bits."""
        return max((r.max_bits for r in self.rounds), default=0.0)

    @property
    def max_load_tuples(self) -> int:
        """Maximum tuples received by any server in any round."""
        return max((r.max_tuples for r in self.rounds), default=0)

    @property
    def total_bits(self) -> float:
        """All bits communicated over the whole execution."""
        return sum(r.total_bits for r in self.rounds)

    def server_total_bits(self, server: int) -> float:
        """``L_s`` summed over rounds for one server."""
        return sum(r.bits.get(server, 0.0) for r in self.rounds)

    def round_max_bits(self, round_index: int) -> float:
        return self.rounds[round_index].max_bits

    def replication_rate(self, input_bits: float) -> float:
        """Section 3.4: ``r = sum_s L_s / |I|``."""
        if input_bits <= 0:
            raise ValueError("input size must be positive")
        return self.total_bits / input_bits

    def server_bits_array(self, round_index: int | None = None) -> np.ndarray:
        """Per-server bits, dense over all ``p`` servers.

        For one round when ``round_index`` is given; otherwise each
        server's *worst* round (element-wise max), so the array's
        maximum is exactly :attr:`max_load_bits`.
        """
        if round_index is not None:
            return self.rounds[round_index].bits_array(self.p)
        out = np.zeros(self.p, dtype=np.float64)
        for r in self.rounds:
            np.maximum(out, r.bits_array(self.p), out=out)
        return out

    def load_percentiles(
        self, quantiles: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        """Distribution of per-server worst-round loads, vectorized.

        Returns ``{"p50": ..., "p90": ..., "p99": ..., "max": ...}``
        (keys follow ``quantiles``); ``max`` always equals
        :attr:`max_load_bits`.  The spread between p50 and max is the
        skew signal the paper's Section 4 algorithms exist to flatten:
        a balanced HyperCube run has p99 close to the median, a heavy
        hitter shows up as max detaching from p99.
        """
        bits = self.server_bits_array()
        out = {
            f"p{q}": float(np.percentile(bits, q)) if len(bits) else 0.0
            for q in quantiles
        }
        out["max"] = float(bits.max()) if len(bits) else 0.0
        return out

    def percentile_line(self) -> str:
        """The one-line p50/p90/p99/max rendering used by summaries."""
        pct = self.load_percentiles()
        return (
            f"per-server bits: p50 {pct['p50']:.0f}, p90 {pct['p90']:.0f}, "
            f"p99 {pct['p99']:.0f}, max {pct['max']:.0f}"
        )

    @property
    def dropped_bits(self) -> float:
        """Bits discarded by capacity truncation (0 in normal runs)."""
        return sum(sum(r.dropped_bits.values()) for r in self.rounds)

    def server_dropped_bits(self, server: int) -> float:
        """Bits capacity-truncation discarded at one server, all rounds.

        The per-server view of :attr:`dropped_bits`: on a cluster with
        per-machine capacities, drops concentrate at the small-cap
        servers, and this is how a report answers "who dropped?".
        """
        return sum(r.dropped_bits.get(server, 0.0) for r in self.rounds)

    # ------------------------------------------------- heterogeneous metrics

    def speeds_array(self) -> np.ndarray:
        """Per-server relative speeds (all 1.0 without a machine spec).

        Servers beyond ``machines.p`` (skew executors' block servers)
        take the spec's modular extension, matching the simulator.
        """
        if self.machines is None:
            return np.ones(self.p, dtype=np.float64)
        return np.array(
            [self.machines.speed(s) for s in range(self.p)], dtype=np.float64
        )

    @property
    def makespan_bits(self) -> float:
        """Predicted-completion load: ``max over rounds, servers of L_s / v_s``.

        The heterogeneous-cluster replacement for :attr:`max_load_bits`
        (arXiv 2501.08896's objective): a server processes its received
        bits at its own speed, so the round finishes when the *slowest
        relative to its load* server does.  With unit speeds this is
        exactly ``max_load_bits``.
        """
        speeds = self.speeds_array()
        out = 0.0
        for r in self.rounds:
            if r.bits:
                out = max(out, float((r.bits_array(self.p) / speeds).max()))
        return out

    def normalized_server_bits_array(self) -> np.ndarray:
        """Each server's worst-round load divided by its speed."""
        return self.server_bits_array() / self.speeds_array()

    def normalized_percentiles(
        self, quantiles: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        """Percentiles of speed-normalized per-server loads.

        The heterogeneity twin of :meth:`load_percentiles`: a fast
        server carrying proportionally more bits is *balanced* here even
        though its raw load sticks out.  ``max`` is the worst-round
        per-server makespan contribution (equals :attr:`makespan_bits`
        when all of a server's load arrives in its worst round).
        """
        bits = self.normalized_server_bits_array()
        out = {
            f"p{q}": float(np.percentile(bits, q)) if len(bits) else 0.0
            for q in quantiles
        }
        out["max"] = float(bits.max()) if len(bits) else 0.0
        return out

    def summary(self) -> str:
        lines = [f"MPC execution: p={self.p}, rounds={self.num_rounds}"]
        for i, r in enumerate(self.rounds, 1):
            lines.append(
                f"  round {i}: max load {r.max_bits:.0f} bits"
                f" ({r.max_tuples} tuples), total {r.total_bits:.0f} bits"
            )
        lines.append(f"  L = {self.max_load_bits:.0f} bits")
        lines.append(f"  {self.percentile_line()}")
        if self.machines is not None and not self.machines.is_uniform:
            pct = self.normalized_percentiles()
            lines.append(
                f"  machines: {self.machines.describe()}, makespan "
                f"{self.makespan_bits:.0f} bits/speed (normalized p50 "
                f"{pct['p50']:.0f}, p99 {pct['p99']:.0f})"
            )
        if self.phase_seconds or self.phase_bytes:
            from repro.mpc.timing import format_phases

            lines.append(
                f"  phases: {format_phases(self.phase_seconds, self.phase_bytes)}"
            )
        if self.spill_stats:
            stats = self.spill_stats
            lines.append(
                "  spill I/O: wrote "
                f"{stats.get('bytes_written', 0) / 2**20:.2f} MiB in "
                f"{stats.get('files_created', 0)} chunk(s), read "
                f"{stats.get('bytes_read', 0) / 2**20:.2f} MiB, peak live "
                f"{stats.get('peak_live_bytes', 0) / 2**20:.2f} MiB"
            )
        if self.predicted_load_bits is not None:
            ratio = self.prediction_ratio()
            # `ratio is not None` (not truthiness): a zero-measured-load
            # run against a positive prediction has ratio 0.0 and must
            # still render.
            lines.append(
                f"  planner: strategy={self.strategy or '?'}, predicted "
                f"L = {self.predicted_load_bits:.0f} bits"
                + (
                    f" (measured/predicted = {ratio:.2f})"
                    if ratio is not None
                    else ""
                )
            )
        return "\n".join(lines)
