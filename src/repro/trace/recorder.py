"""The event recorder behind :mod:`repro.trace`.

A :class:`TraceRecorder` is an append-only list of event dicts with a
few typed helpers; it does **no** I/O while recording (one dict append
per simulator delivery is the entire cost).  Activation is scoped, not
threaded through call signatures: :func:`tracing` installs a recorder
in a :mod:`contextvars` context, and every instrumented component --
:class:`~repro.mpc.simulator.MPCSimulation` at construction,
:class:`~repro.storage.manager.StorageManager` on spill I/O, the
worker-pool drivers on task completion -- picks it up via
:func:`active_recorder`.  With no recorder installed each hook is a
single ``None`` check, which is what keeps tracing off by default with
near-zero overhead.

Context-variable scoping composes with the concurrency model: a
``Session.run_many`` thread batch installs one recorder per job inside
the job's own thread context, so concurrent runs never interleave
events; process-pool jobs record in the worker process and ship the
written artifact's path back.

:meth:`TraceRecorder.finish` seals the recording into an immutable
:class:`Trace`, prepending a ``meta`` header and -- given the run's
:class:`~repro.mpc.report.LoadReport` -- appending the per-phase
events and the ``run`` footer (totals, per-server bits, prediction),
so a serialized trace is self-contained.  See :mod:`repro.trace` for
the event schema.
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpc.report import LoadReport
    from repro.trace.query import TraceQuery

_ACTIVE: ContextVar["TraceRecorder | None"] = ContextVar(
    "repro_trace_recorder", default=None
)


def active_recorder() -> "TraceRecorder | None":
    """The recorder installed in the current context (None: tracing off)."""
    return _ACTIVE.get()


@contextmanager
def tracing(
    recorder: "TraceRecorder | None" = None,
) -> Iterator["TraceRecorder"]:
    """Install a recorder for the duration of the ``with`` block.

    .. code-block:: python

        from repro.trace import tracing

        with tracing() as rec:
            result = run_hypercube(q, db, p=64)
        trace = rec.finish(report=result.load_report)
        trace.write_jsonl("run.jsonl")

    Every simulation, storage manager and pool driver that runs inside
    the block records into ``rec``; nesting installs the inner recorder
    and restores the outer one on exit.  ``Session`` runs with
    ``ClusterConfig(trace=...)`` manage this scope (and the artifact
    write) themselves.
    """
    rec = TraceRecorder() if recorder is None else recorder
    token = _ACTIVE.set(rec)
    try:
        yield rec
    finally:
        _ACTIVE.reset(token)


class TraceRecorder:
    """An append-only event sink (see :mod:`repro.trace` for the schema)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: dict) -> None:
        """Append one raw event dict (must carry a ``"t"`` type field)."""
        self.events.append(event)

    # ------------------------------------------------------- typed helpers

    def send(
        self,
        round_index: int,
        dest: int,
        tag: str,
        bits: float,
        tuples: int,
        dropped: float = 0.0,
    ) -> None:
        """One simulator delivery: ``bits`` accepted at ``dest``."""
        event = {
            "t": "send",
            "r": round_index,
            "dst": dest,
            "tag": tag,
            "bits": bits,
            "n": tuples,
        }
        if dropped:
            event["drop"] = dropped
        self.events.append(event)

    def spill(self, op: str, path: str | None, nbytes: int) -> None:
        """One spill-file operation (``op``: ``"write"`` or ``"read"``)."""
        self.events.append(
            {"t": "spill", "op": op, "path": path, "bytes": int(nbytes)}
        )

    def task(self, kind: str, label: object, seconds: float) -> None:
        """One worker-pool task body's own wall time (parent merge order)."""
        self.events.append(
            {"t": "task", "kind": kind, "label": label, "seconds": seconds}
        )

    # ------------------------------------------------------------- sealing

    def finish(
        self,
        report: "LoadReport | None" = None,
        meta: dict | None = None,
        wall_seconds: float | None = None,
    ) -> "Trace":
        """Seal the recording into a self-contained :class:`Trace`.

        ``meta`` (query name, label, seed, version, ...) becomes the
        leading ``meta`` event.  With a ``report``, one ``phase`` event
        per instrumented phase and a ``run`` footer (totals, per-server
        bits, prediction, spill counters) are appended, so offline
        consumers need nothing but the file.  The recorder itself is
        left untouched and may keep recording.
        """
        events = list(self.events)
        if meta is not None:
            events.insert(0, {"t": "meta", **meta})
        if report is not None:
            names = list(
                dict.fromkeys(
                    list(report.phase_seconds) + list(report.phase_bytes)
                )
            )
            for name in names:
                events.append({
                    "t": "phase",
                    "name": name,
                    "seconds": report.phase_seconds.get(name, 0.0),
                    "bits": report.phase_bytes.get(name, 0.0),
                })
            server_bits: dict[int, float] = {}
            for round_load in report.rounds:
                for server, bits in round_load.bits.items():
                    server_bits[server] = server_bits.get(server, 0.0) + bits
            footer = {
                "t": "run",
                "p": report.p,
                "strategy": report.strategy,
                "rounds": report.num_rounds,
                "total_bits": report.total_bits,
                "max_load_bits": report.max_load_bits,
                "dropped_bits": report.dropped_bits,
                "predicted_bits": report.predicted_load_bits,
                "predicted_rounds": report.predicted_rounds,
                "server_bits": {
                    str(s): server_bits[s] for s in sorted(server_bits)
                },
            }
            if report.spill_stats:
                footer["spill"] = dict(report.spill_stats)
            if wall_seconds is not None:
                footer["wall_seconds"] = wall_seconds
            events.append(footer)
        return Trace(events)


class Trace:
    """A sealed event sequence, serializable to compact JSONL.

    One JSON object per line, ``separators=(",", ":")`` -- a 10^5-send
    trace is a few MB.  :meth:`query` opens the analysis layer
    (:class:`~repro.trace.query.TraceQuery`).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[dict]):
        self.events = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events)

    @property
    def meta(self) -> dict | None:
        """The leading ``meta`` event (None when sealed without one)."""
        for event in self.events:
            if event.get("t") == "meta":
                return event
        return None

    @property
    def run(self) -> dict | None:
        """The ``run`` footer (None when sealed without a report)."""
        for event in reversed(self.events):
            if event.get("t") == "run":
                return event
        return None

    def write_jsonl(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write one compact JSON object per line; returns the path."""
        path = pathlib.Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return path

    @classmethod
    def read_jsonl(cls, path: str | pathlib.Path) -> "Trace":
        """Load a trace written by :meth:`write_jsonl` (blank lines skipped)."""
        events = []
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return cls(events)

    def query(self) -> "TraceQuery":
        """A :class:`~repro.trace.query.TraceQuery` over these events."""
        from repro.trace.query import TraceQuery

        return TraceQuery(self)

    def __repr__(self) -> str:
        run = self.run
        suffix = (
            f", strategy={run.get('strategy')!r}" if run is not None else ""
        )
        return f"Trace({len(self.events)} events{suffix})"
