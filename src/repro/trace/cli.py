"""Rendering for the ``python -m repro trace`` subcommand.

Turns a recorded JSONL trace (or a directory of them) into the summary
tables the acceptance questions ask for: top-k heaviest servers,
per-round bytes, per-phase bytes/seconds -- plus hottest tags, spill
I/O and worker-task totals when the trace has them.
"""

from __future__ import annotations

import pathlib

from repro.mpc.timing import format_bits
from repro.trace.query import TraceQuery


def iter_trace_files(path: str | pathlib.Path) -> list[pathlib.Path]:
    """The trace files under ``path``: itself, or its ``*.jsonl`` children."""
    path = pathlib.Path(path)
    if path.is_dir():
        return sorted(path.glob("*.jsonl"))
    if path.exists():
        return [path]
    raise FileNotFoundError(f"no trace file or directory at {path}")


def render_trace(path: str | pathlib.Path, top: int = 5) -> str:
    """The summary tables for one JSONL trace, as printable text."""
    query = TraceQuery(path)
    lines = [f"trace: {path}"]

    meta = next(
        (e for e in query.events if e.get("t") == "meta"), None
    )
    if meta is not None:
        fields = ", ".join(
            f"{key}={meta[key]}"
            for key in (
                "label", "query", "strategy", "seed", "version", "machines",
            )
            if meta.get(key) is not None
        )
        if fields:
            lines.append(f"  meta: {fields}")

    run = query.run()
    if run is not None:
        lines.append(
            "  run: strategy={strategy}, p={p}, rounds={rounds}, "
            "L = {L}, total = {total}, dropped = {dropped}"
            .format(
                strategy=run.get("strategy"),
                p=run.get("p"),
                rounds=run.get("rounds"),
                L=format_bits(run.get("max_load_bits") or 0),
                total=format_bits(run.get("total_bits") or 0),
                dropped=format_bits(run.get("dropped_bits") or 0),
            )
        )

    round_rows = query.round_totals()
    if round_rows:
        lines.append("  per-round bytes:")
        for row in round_rows:
            drop = (
                f", dropped {format_bits(row['dropped_bits'])}"
                if row["dropped_bits"]
                else ""
            )
            lines.append(
                f"    round {row['r']}: total {format_bits(row['total_bits'])}"
                f", max/server {format_bits(row['max_bits'])}"
                f", {row['tuples']} tuples, {row['sends']} sends{drop}"
            )

    ranked_servers = query.top_servers(k=top)
    if ranked_servers:
        rendered = ", ".join(
            f"#{server} {format_bits(bits)}"
            for server, bits in ranked_servers
        )
        lines.append(f"  top {len(ranked_servers)} servers: {rendered}")

    classes = query.speed_class_bits()
    if classes:
        lines.append("  per speed class:")
        for row in classes:
            lines.append(
                f"    {row['servers']} server(s) at {row['speed']:g}x: "
                f"{format_bits(row['bits'])} "
                f"({format_bits(row['bits_per_speed'])}/unit speed)"
            )
        makespan = query.makespan_bits()
        if makespan is not None:
            lines.append(
                f"  measured makespan: {format_bits(makespan)} "
                "(bits per unit speed)"
            )

    hot_tags = query.hottest_tags(k=top)
    if hot_tags:
        rendered = ", ".join(
            f"{tag} {format_bits(bits)}" for tag, bits in hot_tags
        )
        lines.append(f"  hottest tags: {rendered}")

    phases = query.phases()
    if phases:
        lines.append("  phases (exclusive):")
        for name, row in phases.items():
            lines.append(
                f"    {name}: {row['seconds'] * 1e3:.2f}ms, "
                f"{format_bits(row['bits'])}"
            )

    deltas = [
        row for row in query.predicted_deltas() if row["ratio"] is not None
    ]
    if deltas:
        rendered = ", ".join(
            f"round {row['r']} {row['ratio']:.2f}x" for row in deltas
        )
        lines.append(f"  measured/predicted per round: {rendered}")

    spill = query.spill_totals()
    if spill["writes"] or spill["reads"]:
        lines.append(
            f"  spill I/O: wrote {spill['bytes_written'] / 2**20:.2f} MiB "
            f"in {spill['writes']} chunk(s), "
            f"read {spill['bytes_read'] / 2**20:.2f} MiB "
            f"in {spill['reads']} access(es)"
        )

    tasks = query.task_totals()
    if tasks:
        rendered = ", ".join(
            f"{kind} x{int(row['count'])} ({row['seconds'] * 1e3:.2f}ms)"
            for kind, row in sorted(tasks.items())
        )
        lines.append(f"  worker tasks: {rendered}")

    return "\n".join(lines)


def render_path(path: str | pathlib.Path, top: int = 5) -> str:
    """Render every trace under ``path`` (a file or a directory)."""
    files = iter_trace_files(path)
    if not files:
        raise FileNotFoundError(f"no *.jsonl traces under {path}")
    return "\n\n".join(render_trace(f, top=top) for f in files)
