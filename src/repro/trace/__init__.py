"""``repro.trace`` -- the queryable communication-trace subsystem.

The paper's subject is communication cost; this package records it at
event granularity instead of end-of-run aggregates.  Tracing is **off
by default** and activated per run, either scoped::

    from repro.trace import tracing

    with tracing() as rec:
        result = run_hypercube(q, db, p=64)
    trace = rec.finish(report=result.load_report)
    trace.write_jsonl("run.jsonl")

or through the session front door, which writes one JSONL artifact per
run and points ``RunRecord.trace_path`` at it::

    with Session(p=64, seed=0, trace="traces/") as session:
        record = session.run(q, db)
    print(TraceQuery(record.trace_path).top_servers(k=5))

Enabling tracing never perturbs results: every engine stays
bit-identical (answers, per-server per-round bits, capacity drops) at
any pool kind x worker count x storage on/off, and a trace's
per-server bit totals reconcile exactly with the run's ``LoadReport``
(see ``TraceQuery.reconcile``).

Trace schema (JSONL: one JSON object per line, typed by ``"t"``)
----------------------------------------------------------------

``meta``
    Run identity, first line when present.  Keys: ``query`` (name),
    ``strategy``, ``label``, ``seed``, ``index`` (position in a
    ``run_many`` batch), ``version`` (repro release), ``pool`` (the
    session's resolved worker-pool kind), ``machines`` (the
    heterogeneous spec's ``describe()`` form, None for the
    homogeneous model).
``sim``
    Emitted when an ``MPCSimulation`` is constructed inside the traced
    scope.  Keys: ``p`` (number of servers, including any extra heavy
    servers an executor allocates), ``value_bits``, ``capacity_bits``
    (None: unbounded), ``on_overflow`` (``"fail"``/``"drop"``),
    ``storage`` (bool: spill-backed server state).
``send``
    One per simulator delivery -- the unit the MPC model accounts.
    Keys: ``r`` (1-based round), ``dst`` (destination server), ``tag``
    (relation/fragment tag), ``bits`` (accepted bits -- the model's
    load unit), ``n`` (accepted tuple count), ``drop`` (capacity-
    dropped bits; omitted when zero).
``round``
    End-of-round summary.  Keys: ``r``, ``total_bits``, ``max_bits``
    (the round's max per-server load), ``tuples``, ``dropped_bits``.
``spill``
    One per spill-file operation of the storage layer.  Keys: ``op``
    (``"write"``/``"read"``), ``path`` (chunk file), ``bytes``.
``task``
    One per worker-pool task, emitted by the parent in deterministic
    merge order.  Keys: ``kind`` (``"route"``/``"join"``), ``label``
    (relation tag or server id), ``seconds`` (the task body's own wall
    time, measured inside the worker).
``phase``
    One per instrumented phase at sealing time.  Keys: ``name``
    (generate/route/ship/join/merge), ``seconds`` (exclusive wall
    time), ``bits`` (exclusive bits delivered while the phase was
    innermost -- ``phase_bytes`` in ``LoadReport`` terms).
``run``
    Footer with the sealed run's aggregates.  Keys: ``p``,
    ``strategy``, ``rounds``, ``total_bits``, ``max_load_bits``,
    ``dropped_bits``, ``predicted_bits``/``predicted_rounds`` (the
    planner's prediction, None when not attached), ``server_bits``
    (per-server totals keyed by server id as a string), ``spill``
    (cumulative I/O counters for spill-backed runs), ``wall_seconds``.

All ``bits`` fields are in the model's load unit (bits, not bytes);
``spill`` events use real file bytes.  Analysis lives in
:class:`TraceQuery` (filter/group/aggregate, top-k, predicted-vs-
measured deltas) and the ``python -m repro trace <file-or-dir>`` CLI.
"""

from repro.trace.query import TraceQuery
from repro.trace.recorder import Trace, TraceRecorder, active_recorder, tracing

__all__ = [
    "Trace",
    "TraceQuery",
    "TraceRecorder",
    "active_recorder",
    "tracing",
]
