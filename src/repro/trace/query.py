"""Filter/group/aggregate analysis over a recorded trace.

:class:`TraceQuery` answers the questions a `LoadReport` aggregate
cannot: *which* servers were heaviest, *which* relation tags carried
the bits, how each round's measured load compares to the planner's
prediction, and where spill I/O went.  It works equally over an
in-memory :class:`~repro.trace.recorder.Trace`, a recorder, a JSONL
path, or any iterable of event dicts, so the same code serves live
analysis and offline tooling (`python -m repro trace`).

Every aggregate is derived from the per-event stream, not the ``run``
footer -- which is what makes :meth:`reconcile` a real check: it
compares the event-derived per-server bit totals against an
independently accounted :class:`~repro.mpc.report.LoadReport` and
returns the (expected empty) dict of discrepancies.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING, Iterable

from repro.trace.recorder import Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.config import MachineSpec
    from repro.mpc.report import LoadReport


class TraceQuery:
    """Queryable view over trace events (see :mod:`repro.trace`)."""

    def __init__(
        self, source: "Trace | str | pathlib.Path | Iterable[dict]"
    ) -> None:
        if isinstance(source, (str, pathlib.Path)):
            self.events = Trace.read_jsonl(source).events
        elif hasattr(source, "events"):
            self.events = list(source.events)
        else:
            self.events = list(source)

    def _of_type(self, kind: str) -> list[dict]:
        return [e for e in self.events if e.get("t") == kind]

    # ------------------------------------------------------------- filters

    def sends(
        self,
        round_index: int | None = None,
        server: int | None = None,
        tag: str | None = None,
    ) -> list[dict]:
        """``send`` events, optionally filtered by round/destination/tag."""
        out = []
        for e in self._of_type("send"):
            if round_index is not None and e.get("r") != round_index:
                continue
            if server is not None and e.get("dst") != server:
                continue
            if tag is not None and e.get("tag") != tag:
                continue
            out.append(e)
        return out

    # ---------------------------------------------------------- aggregates

    def server_bits(self, round_index: int | None = None) -> dict[int, float]:
        """Accepted bits per destination server, summed over sends."""
        totals: dict[int, float] = {}
        for e in self.sends(round_index=round_index):
            dst = e["dst"]
            totals[dst] = totals.get(dst, 0.0) + e.get("bits", 0.0)
        return totals

    def top_servers(
        self, k: int = 5, round_index: int | None = None
    ) -> list[tuple[int, float]]:
        """The ``k`` heaviest servers as ``(server, bits)``, heaviest first."""
        totals = self.server_bits(round_index=round_index)
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: max(0, k)]

    def tag_bits(self) -> dict[str, float]:
        """Accepted bits per relation/fragment tag."""
        totals: dict[str, float] = {}
        for e in self._of_type("send"):
            tag = e.get("tag", "?")
            totals[tag] = totals.get(tag, 0.0) + e.get("bits", 0.0)
        return totals

    def hottest_tags(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` heaviest tags as ``(tag, bits)``, heaviest first."""
        ranked = sorted(
            self.tag_bits().items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        return ranked[: max(0, k)]

    def total_bits(self) -> float:
        """Accepted bits summed over every send event."""
        return sum(e.get("bits", 0.0) for e in self._of_type("send"))

    def dropped_bits(self) -> float:
        """Capacity-dropped bits summed over every send event."""
        return sum(e.get("drop", 0.0) for e in self._of_type("send"))

    def round_totals(self) -> list[dict]:
        """Per-round summaries, from ``round`` events when present.

        Falls back to recomputing from the send stream for truncated
        traces (e.g. a recording cut short by a capacity failure).
        Each row: ``{"r", "total_bits", "max_bits", "tuples",
        "dropped_bits", "sends"}``.
        """
        recorded = {e["r"]: e for e in self._of_type("round")}
        rows: dict[int, dict] = {}
        for e in self._of_type("send"):
            row = rows.setdefault(
                e["r"],
                {
                    "r": e["r"],
                    "total_bits": 0.0,
                    "tuples": 0,
                    "dropped_bits": 0.0,
                    "sends": 0,
                    "_server": {},
                },
            )
            row["total_bits"] += e.get("bits", 0.0)
            row["tuples"] += e.get("n", 0)
            row["dropped_bits"] += e.get("drop", 0.0)
            row["sends"] += 1
            server = row["_server"]
            server[e["dst"]] = server.get(e["dst"], 0.0) + e.get("bits", 0.0)
        out = []
        for r in sorted(set(rows) | set(recorded)):
            computed = rows.get(r)
            base = dict(recorded.get(r, {}))
            base.pop("t", None)
            row = {
                "r": r,
                "total_bits": base.get(
                    "total_bits",
                    computed["total_bits"] if computed else 0.0,
                ),
                "max_bits": base.get(
                    "max_bits",
                    max(computed["_server"].values(), default=0.0)
                    if computed
                    else 0.0,
                ),
                "tuples": base.get(
                    "tuples", computed["tuples"] if computed else 0
                ),
                "dropped_bits": base.get(
                    "dropped_bits",
                    computed["dropped_bits"] if computed else 0.0,
                ),
                "sends": computed["sends"] if computed else 0,
            }
            out.append(row)
        return out

    def phases(self) -> dict[str, dict[str, float]]:
        """Per-phase exclusive time and bits: ``name -> {seconds, bits}``."""
        out: dict[str, dict[str, float]] = {}
        for e in self._of_type("phase"):
            out[e["name"]] = {
                "seconds": e.get("seconds") or 0.0,
                "bits": e.get("bits") or 0.0,
            }
        return out

    def spill_totals(self) -> dict[str, float]:
        """Spill I/O summed over spill events.

        ``{"bytes_written", "writes", "bytes_read", "reads"}`` --
        zeroes for in-memory runs.
        """
        totals = {
            "bytes_written": 0,
            "writes": 0,
            "bytes_read": 0,
            "reads": 0,
        }
        for e in self._of_type("spill"):
            nbytes = int(e.get("bytes", 0))
            if e.get("op") == "write":
                totals["bytes_written"] += nbytes
                totals["writes"] += 1
            elif e.get("op") == "read":
                totals["bytes_read"] += nbytes
                totals["reads"] += 1
        return totals

    def task_totals(self) -> dict[str, dict[str, float]]:
        """Worker-task counts and summed in-task seconds, per task kind."""
        out: dict[str, dict[str, float]] = {}
        for e in self._of_type("task"):
            row = out.setdefault(e.get("kind", "?"), {
                "count": 0, "seconds": 0.0,
            })
            row["count"] += 1
            row["seconds"] += e.get("seconds", 0.0)
        return out

    def run(self) -> dict | None:
        """The ``run`` footer event, if the trace was sealed with one."""
        for e in reversed(self.events):
            if e.get("t") == "run":
                return e
        return None

    # -------------------------------------------------------- heterogeneity

    def machines(self) -> "MachineSpec | None":
        """The machine spec the traced run executed under, if recorded.

        Parsed back from the ``machines`` describe string that the
        ``meta`` header (session runs) or the ``sim`` event (bare
        simulator runs) carries; ``None`` for traces of homogeneous
        runs, which record no spec.
        """
        from repro.config import MachineSpec

        for e in self.events:
            if e.get("t") in ("meta", "sim") and e.get("machines"):
                return MachineSpec.parse(e["machines"])
        return None

    def speed_class_bits(
        self, round_index: int | None = None
    ) -> list[dict] | None:
        """Accepted bits grouped by machine speed class.

        Each row: ``{"speed", "servers", "bits", "bits_per_speed"}``
        (``bits_per_speed`` = the class's summed bits divided by its
        summed speed -- the class's contribution to makespan pressure).
        Servers beyond the spec's size map modularly onto it, matching
        the executors' block-server placement.  ``None`` when the trace
        records no machine spec.
        """
        machines = self.machines()
        if machines is None:
            return None
        per_class: dict[float, dict] = {
            speed: {"speed": speed, "servers": len(servers), "bits": 0.0}
            for speed, servers in machines.speed_classes().items()
        }
        for server, bits in self.server_bits(round_index=round_index).items():
            per_class[machines.speed(server)]["bits"] += bits
        rows = []
        for speed in sorted(per_class):
            row = per_class[speed]
            row["bits_per_speed"] = row["bits"] / (speed * row["servers"])
            rows.append(row)
        return rows

    def makespan_bits(self) -> float | None:
        """Measured makespan: max over rounds and servers of bits/speed.

        The speed-normalized analogue of the ``L`` the ``run`` footer
        carries (both take the worst round), recomputed from the send
        stream; ``None`` when the trace records no machine spec.
        """
        machines = self.machines()
        if machines is None:
            return None
        rounds: dict[int, dict[int, float]] = {}
        for e in self._of_type("send"):
            per_server = rounds.setdefault(e["r"], {})
            dst = e["dst"]
            per_server[dst] = per_server.get(dst, 0.0) + e.get("bits", 0.0)
        return max(
            (
                bits / machines.speed(s)
                for per_server in rounds.values()
                for s, bits in per_server.items()
            ),
            default=0.0,
        )

    def predicted_deltas(self) -> list[dict]:
        """Per-round measured max load vs the planner's predicted L.

        The cost model predicts one per-round maximum load; each row
        compares a round's measured ``max_bits`` against it.  ``ratio``
        is None when there is no prediction or it is zero (empty-input
        runs), never a division by zero.
        """
        run = self.run()
        predicted = run.get("predicted_bits") if run else None
        rows = []
        for round_row in self.round_totals():
            measured = round_row["max_bits"]
            delta = None if predicted is None else measured - predicted
            ratio = (
                measured / predicted
                if predicted is not None and predicted > 0
                else None
            )
            rows.append({
                "r": round_row["r"],
                "measured_max_bits": measured,
                "predicted_bits": predicted,
                "delta_bits": delta,
                "ratio": ratio,
            })
        return rows

    # ------------------------------------------------------- verification

    def reconcile(self, report: "LoadReport") -> dict[int, tuple[float, float]]:
        """Differences between event-derived and report per-server bits.

        Returns ``{server: (trace_bits, report_bits)}`` for every
        server where the two disagree -- empty means the trace
        reconciles exactly with the independently accounted
        :class:`~repro.mpc.report.LoadReport`.
        """
        trace_totals = self.server_bits()
        report_totals: dict[int, float] = {}
        for round_load in report.rounds:
            for server, bits in round_load.bits.items():
                report_totals[server] = report_totals.get(server, 0.0) + bits
        mismatches: dict[int, tuple[float, float]] = {}
        for server in sorted(set(trace_totals) | set(report_totals)):
            a = trace_totals.get(server, 0.0)
            b = report_totals.get(server, 0.0)
            if a != b:
                mismatches[server] = (a, b)
        return mismatches
