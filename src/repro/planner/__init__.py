"""Cost-based query planner: one front door for every executor.

The paper's contribution *is* a plan-cost model -- closed-form maximum
loads for one-round HyperCube (Theorem 3.15), the skew-aware star and
triangle algorithms (Eq. 20, Section 4.2.2), and multi-round plans
(Proposition 5.1).  This subpackage turns those formulas into an
optimizer:

* :mod:`repro.planner.statistics` -- :class:`DataStatistics`, the
  cardinalities + heavy-hitter frequency vectors every server is
  assumed to know;
* :mod:`repro.planner.cost` -- per-strategy closed-form cost
  estimates (:class:`CostEstimate`), no execution involved;
* :mod:`repro.planner.strategies` -- the :class:`Strategy` registry
  wrapping every executor (HyperCube tuple/columnar, skew-oblivious,
  skew-aware star/triangle, enumerated multi-round plans, baselines);
* :mod:`repro.planner.optimizer` -- :func:`plan`, which prunes
  inapplicable strategies, ranks the rest and returns an
  :class:`ExplainedPlan` with the EXPLAIN cost table;
* :mod:`repro.planner.engine` -- :func:`execute`, which runs the
  winner and attaches predicted-vs-measured load to the
  :class:`~repro.mpc.report.LoadReport`.

Quickstart::

    from repro import triangle_query, zipf_database
    from repro.planner import execute, plan

    q = triangle_query()
    db = zipf_database(q, m=2000, n=2000, skew=1.0, seed=0)
    print(plan(q, db, p=64).table())     # the EXPLAIN cost table
    result = execute(q, db, p=64)        # runs the predicted winner
    print(result.summary())              # table + measured/predicted
"""

from repro.planner.cost import CostEstimate
from repro.planner.engine import PlannedExecution, execute
from repro.planner.optimizer import Candidate, ExplainedPlan, plan
from repro.planner.statistics import DataStatistics
from repro.planner.strategies import (
    BroadcastJoin,
    MultiRoundPlan,
    OneRoundHyperCube,
    ParallelHashJoin,
    SingleServer,
    SkewAwareStar,
    SkewAwareTriangle,
    SkewObliviousHyperCube,
    Strategy,
    StrategyOutcome,
    default_strategies,
    register,
)

__all__ = [
    "Candidate",
    "CostEstimate",
    "DataStatistics",
    "ExplainedPlan",
    "PlannedExecution",
    "Strategy",
    "StrategyOutcome",
    "BroadcastJoin",
    "MultiRoundPlan",
    "OneRoundHyperCube",
    "ParallelHashJoin",
    "SingleServer",
    "SkewAwareStar",
    "SkewAwareTriangle",
    "SkewObliviousHyperCube",
    "default_strategies",
    "execute",
    "plan",
    "register",
]
