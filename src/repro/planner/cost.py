"""Closed-form cost estimates for every strategy (no execution).

Each estimator prices one algorithm family using the paper's own
formulas, evaluated on :class:`~repro.planner.statistics.DataStatistics`
alone:

* one-round HyperCube -- LP (10) shares, integerized, priced with
  Corollary 3.3 plus the data-dependent hotspot term of
  :func:`~repro.hypercube.analysis.predicted_load_bits_with_frequencies`
  (which recovers Corollary 4.3 under total skew);
* skew-oblivious HyperCube -- the same, with LP (18) shares;
* the skew-aware star algorithm -- Eq. (20) plus the light term,
  priced in the sum-form server convention described below (the
  max-form statistics-only bound lives in
  :func:`~repro.skew.star.star_skew_load_bound_from_stats`);
* the skew-aware triangle algorithm -- the Section 4.2.2 formula,
  same convention (max-form:
  :func:`~repro.skew.triangle.triangle_skew_load_bound_from_stats`);
* multi-round plans -- per-operator LP loads summed within a round
  (Proposition 5.1's constant-factor regime), with intermediate view
  sizes estimated by Lemma 3.6's expected output size, clamped by the
  AGM bound;
* the baselines (broadcast join, parallel hash join, single server) --
  their exact shipping formulas.

All estimates are in bits of maximum per-server, per-round load -- the
MPC model's ``L`` -- so they are directly comparable with each other,
with the Theorem 3.15 lower bound, and with measured
:class:`~repro.mpc.report.LoadReport` maxima.

On a heterogeneous cluster (``machines=`` a
:class:`~repro.config.MachineSpec` with per-server speeds) every
estimator prices the *makespan* instead: ``max_s load_s / v_s`` in
bits per unit speed, the objective the optimizer minimizes when fast
servers can absorb proportionally more load.  With unit speeds the two
objectives coincide exactly, so homogeneous rankings are unchanged.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.friedgut import agm_bound, expected_output_size
from repro.core.lp import balanced_makespan
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import (
    integerize_shares,
    share_exponents,
    skew_oblivious_share_exponents,
)
from repro.core.stats import Statistics
from repro.hypercube.analysis import (
    predicted_load_bits_with_frequencies,
    predicted_makespan_bits,
)

from repro.multiround.plans import Plan
from repro.planner.statistics import DataStatistics
from repro.skew.heavy_hitters import HitterStatistics
from repro.skew.star import _heavy_allocation, star_center
from repro.skew.triangle import _STRUCTURE as _TRIANGLE_STRUCTURE

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.config import MachineSpec


@dataclass(frozen=True)
class CostEstimate:
    """A strategy's predicted cost: the two MPC metrics plus servers.

    ``load_bits`` is the predicted maximum per-server, per-round load
    ``L``; ``rounds`` the number of communication rounds; ``servers``
    how many servers the strategy occupies (the skew-aware algorithms
    use ``Theta(p)`` extra blocks).  ``detail`` carries a short
    human-readable note for the EXPLAIN table (chosen shares, chosen
    plan, ...).
    """

    load_bits: float
    rounds: int
    servers: int
    detail: str = ""

    def sort_key(self) -> tuple[float, int, int]:
        """Rank by load, then fewer rounds, then fewer servers."""
        return (self.load_bits, self.rounds, self.servers)


# ------------------------------------------------------------------ HyperCube


def hypercube_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    skew_oblivious: bool = False,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Price one-round HyperCube with LP (10) or LP (18) shares.

    With a heterogeneous ``machines`` spec the executor routes through
    speed-weighted grid marginals, so the estimate is the predicted
    makespan over that weighted grid
    (:func:`~repro.hypercube.analysis.predicted_makespan_bits`).
    """
    stats = dstats.stats
    solve = skew_oblivious_share_exponents if skew_oblivious else share_exponents
    solution = solve(query, stats, p)
    shares = solution.integer_shares()
    label = "LP(18)" if skew_oblivious else "LP(10)"
    detail = f"{label} shares " + "x".join(
        str(shares[v]) for v in query.variables
    )
    if machines is None:
        load = predicted_load_bits_with_frequencies(
            query, stats, shares, dstats.frequency_maps()
        )
    else:
        load = predicted_makespan_bits(
            query, stats, shares, machines, dstats.frequency_maps()
        )
        if not machines.is_uniform:
            detail += ", speed-weighted makespan"
    return CostEstimate(load_bits=load, rounds=1, servers=p, detail=detail)


# ------------------------------------------------------------ skew-aware star


def star_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Price the Section 4.2.1 star algorithm via Eq. (20).

    Heterogeneous pricing mirrors the executor: the light part is
    speed-weighted on the center axis (exactly rebalanceable, so it
    divides by the *total* speed), while the per-hitter heavy blocks
    route unweighted over modularly-extended servers (their worst
    server is the slowest one, so those terms divide by the minimum
    speed).
    """
    center = star_center(query)
    stats = dstats.stats
    hitters = dstats.hitters.get(center)
    if hitters is None:
        hitters = HitterStatistics(query, center, {})
    # Eq. (20) quotes the light part as max_j M_j/p and each heavy term
    # as (sum_h prod_{j in I} M_j(h) / p)^{1/|I|}.  A server receives
    # its share of every relation it participates in, so the planner
    # prices the sums: all l relations on a light server, the |I|
    # residual relations on a heavy-block server (the same convention
    # as the HyperCube estimator; within the paper's O(l) constants).
    #
    # A hitter's frequency in a relation where it sits *below* that
    # relation's m_j/p detection threshold is invisible to the
    # statistics; approximate it by the threshold itself (its exact
    # ceiling).  The executor uses exact degrees and drops hitters
    # absent from some relation -- absent and merely-light are
    # indistinguishable here, so the planner prices both conservatively.
    total_light_bits = sum(stats.bits(r) for r in query.relation_names)
    if machines is None:
        load = total_light_bits / p
        block_speed = 1.0
    else:
        load = balanced_makespan(
            total_light_bits, [machines.speed(s) for s in range(p)]
        )
        block_speed = machines.min_speed
    relations = query.relation_names
    heavy = hitters.hitters

    def residual_tuples(rel: str, h: int) -> float:
        known = hitters.frequency(rel, h)
        return known if known > 0 else stats.tuples(rel) / p

    for size in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, size):
            total = 0.0
            for h in heavy:
                product = 1.0
                for r in subset:
                    product *= residual_tuples(r, h) * 2 * stats.value_bits
                total += product
            if total > 0:
                load = max(
                    load,
                    size * (total / p) ** (1.0 / size) / block_speed,
                )

    # Server budget: mirrors the executor's per-hitter allocation, with
    # the same sub-threshold approximation as above.
    bits_per_hitter: dict[int, dict[str, float]] = {
        h: {
            rel: residual_tuples(rel, h) * stats.value_bits
            for rel in relations
        }
        for h in heavy
    }
    allocation = _heavy_allocation(query.relation_names, bits_per_hitter, p)
    servers = p + sum(allocation.values())
    detail = f"{len(hitters.hitters)} heavy hitter(s) on {center}"
    if machines is not None and not machines.is_uniform:
        detail += ", speed-weighted light part"
    return CostEstimate(load_bits=load, rounds=1, servers=servers, detail=detail)


# -------------------------------------------------------- skew-aware triangle


def triangle_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Price the Section 4.2.2 triangle algorithm.

    Heterogeneous pricing mirrors the executor: the light block's
    speed-weighted marginals rebalance its load toward speed-
    proportional (scale by ``p / total_speed``), while the
    case-1/case-2 blocks route unweighted (divide by the minimum
    speed).
    """
    stats = dstats.stats
    if machines is None:
        light_speed = 1.0
        block_speed = 1.0
    else:
        light_speed = machines.total_speed / p
        block_speed = machines.min_speed
    # Sum-form convention throughout (see the module docstring): a
    # light-block server receives fragments of all three relations, a
    # case-2 block server its share of both residual sides.
    load = (
        sum(stats.bits(r) for r in query.relation_names)
        / p ** (2.0 / 3.0)
        / light_speed
    )
    m = max(stats.tuples(r) for r in query.relation_names)
    threshold2 = max(1.0, m / p ** (1.0 / 3.0))
    tuple_bits = 2 * stats.value_bits
    case2 = 0
    for variable, (succ_rel, pred_rel, _mid) in _TRIANGLE_STRUCTURE.items():
        stats_v = dstats.hitters.get(variable)
        if stats_v is None:
            continue
        total = 0.0
        for h in stats_v.hitters:
            freq = max(
                stats_v.frequency(succ_rel, h), stats_v.frequency(pred_rel, h)
            )
            if freq < threshold2:
                continue
            case2 += 1
            total += (
                stats_v.frequency(succ_rel, h)
                * tuple_bits
                * stats_v.frequency(pred_rel, h)
                * tuple_bits
            )
        if total > 0:
            load = max(load, 2.0 * math.sqrt(total / p) / block_speed)
    # Light block + three case-1 blocks + >= p^{2/3} per case-2 hitter,
    # boosted by ~p in total -- the executor's Theta(p) budget.
    servers = 4 * p + case2 * math.ceil(p ** (2.0 / 3.0)) + (p if case2 else 0)
    detail = f"{case2} case-2 hitter(s)"
    if machines is not None and not machines.is_uniform:
        detail += ", speed-weighted light block"
    return CostEstimate(load_bits=load, rounds=1, servers=servers, detail=detail)


# -------------------------------------------------------------- multi-round


def multiround_plan_cost(
    plan: Plan,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Price a query plan: per-round sums of per-operator LP loads.

    Intermediate view sizes are estimated with Lemma 3.6's expected
    output size over the matching probability space (clamped by the AGM
    bound), so the estimate is exact in expectation for matching
    databases and optimistic when intermediate results correlate.
    Operators over base relations keep the hotspot correction, since
    their frequency vectors are known.
    """
    stats = dstats.stats
    frequency_maps = dstats.frequency_maps()
    domain = stats.domain_size
    view_sizes: dict[str, float] = {}
    round_loads: dict[int, float] = {}

    for depth, nodes in sorted(plan.root.nodes_by_depth().items()):
        for node in nodes:
            operator = node.operator
            sizes: dict[str, int] = {}
            for child in node.children:
                if isinstance(child, Atom):
                    sizes[child.relation] = stats.tuples(child.relation)
                else:
                    sizes[child.name] = int(math.ceil(view_sizes[child.name]))
            op_stats = Statistics(operator, sizes, domain)
            solution = share_exponents(operator, op_stats, p)
            shares = solution.integer_shares()
            if machines is None:
                load = predicted_load_bits_with_frequencies(
                    operator, op_stats, shares, frequency_maps
                )
            else:
                # Every round's per-operator grid routes through
                # speed-weighted marginals, so each operator contributes
                # its predicted makespan over that weighted grid.
                load = predicted_makespan_bits(
                    operator, op_stats, shares, machines, frequency_maps
                )
            round_loads[depth] = round_loads.get(depth, 0.0) + load
            estimate = expected_output_size(op_stats)
            bound = agm_bound(operator, op_stats.tuples_vector())
            view_sizes[node.name] = max(0.0, min(estimate, bound))

    load = max(round_loads.values(), default=0.0)
    return CostEstimate(
        load_bits=load,
        rounds=plan.depth,
        servers=p,
        detail=f"{plan.depth} round(s)",
    )


# ------------------------------------------------------------------ baselines


def broadcast_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Partition the largest relation, broadcast the rest (Lemma 3.18).

    The baseline executor routes unweighted, so on a heterogeneous
    cluster its makespan is pinned by the slowest server.
    """
    stats = dstats.stats
    partition = max(query.relation_names, key=lambda r: stats.bits(r))
    load = stats.bits(partition) / p + sum(
        stats.bits(r) for r in query.relation_names if r != partition
    )
    if machines is not None:
        load /= machines.min_speed
    return CostEstimate(
        load_bits=load, rounds=1, servers=p, detail=f"partition {partition}"
    )


def hash_join_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    join_variables: tuple[str, ...],
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """All shares spread over the common join variables (Example 4.1).

    The baseline executor routes unweighted, so heterogeneous pricing
    divides by the slowest server's speed.
    """
    stats = dstats.stats
    exponents = {v: 1.0 / len(join_variables) for v in join_variables}
    shares = integerize_shares(
        {v: exponents.get(v, 0.0) for v in query.variables}, p
    )
    load = predicted_load_bits_with_frequencies(
        query, stats, shares, dstats.frequency_maps()
    )
    if machines is not None:
        load /= machines.min_speed
    detail = "hash on " + ",".join(join_variables)
    return CostEstimate(load_bits=load, rounds=1, servers=p, detail=detail)


def single_server_cost(
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec | None" = None,
) -> CostEstimate:
    """Ship the whole input to one server: ``L = |I|``.

    The baseline always ships to server 0, so heterogeneous pricing
    divides by *that* server's speed -- an honest makespan for what the
    executor actually does.
    """
    load = dstats.stats.total_bits
    if machines is not None:
        load /= machines.speed(0)
    return CostEstimate(
        load_bits=load,
        rounds=1,
        servers=p,
        detail="everything to server 0",
    )
