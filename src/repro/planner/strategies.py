"""The strategy registry: every executor behind one interface.

A :class:`Strategy` knows three things about one algorithm family:

* whether it *applies* to a query at all (the star algorithm only runs
  star queries, the triangle algorithm only the paper's ``C3``, ...),
* what the paper predicts it would *cost* (closed forms from
  :mod:`repro.planner.cost`; nothing is executed), and
* how to *run* it on a concrete database, normalizing every executor's
  result into a :class:`StrategyOutcome`.

:func:`default_strategies` lists the built-in registry in priority
order (ties in predicted cost resolve to the earlier entry);
:func:`register` appends project-specific strategies.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.config import ExecutionSettings, resolve_backend, resolve_machines
from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.hypercube.algorithm import run_hypercube
from repro.hypercube.baselines import (
    run_broadcast_join,
    run_parallel_hash_join,
    run_single_server,
)
from repro.mpc.report import LoadReport
from repro.multiround.executor import run_plan
from repro.multiround.plans import Plan, candidate_plans
from repro.planner.cost import (
    CostEstimate,
    broadcast_cost,
    hash_join_cost,
    hypercube_cost,
    multiround_plan_cost,
    single_server_cost,
    star_cost,
    triangle_cost,
)
from repro.planner.statistics import DataStatistics
from repro.skew.oblivious import run_skew_oblivious_hypercube
from repro.skew.star import run_star_skew, star_center
from repro.skew.triangle import is_triangle_query, run_triangle_skew

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.storage.manager import StorageManager

#: Per-run override keys :meth:`Strategy.run` understands; each
#: strategy declares the subset it threads into its executor and
#: rejects the rest loudly (a silently dropped ``shares=`` or ``plan=``
#: would masquerade as a planner decision).
OVERRIDE_KEYS = ("shares", "exponents", "hitters", "plan")


# One plan() pass prices the bare "hypercube"/"multiround" strategies
# and their pinned -tuples/-numpy twins; the twins share one cost model
# (the backends are bit-identical), so the expensive estimation work --
# plan enumeration + per-round costing, share-LP solves -- is shared
# through a per-DataStatistics memo instead of repeated per twin.  The
# cache evicts itself when the statistics object is garbage-collected.
_ESTIMATE_CACHE: dict[int, dict] = {}


def _memoized(dstats, key, compute):
    bucket = _ESTIMATE_CACHE.get(id(dstats))
    if bucket is None:
        try:
            weakref.finalize(dstats, _ESTIMATE_CACHE.pop, id(dstats), None)
        except TypeError:
            return compute()
        bucket = _ESTIMATE_CACHE[id(dstats)] = {}
    if key not in bucket:
        bucket[key] = compute()
    return bucket[key]


def _effective_backend(
    pinned: str | None, settings: ExecutionSettings | None
) -> str | None:
    """A strategy's engine: its pinned backend, else the settings' one.

    ``None`` falls through to the system-wide default at resolution
    time, so bare strategies keep following
    :func:`repro.config.set_default_backend` unless a session
    configuration says otherwise.
    """
    if pinned is not None:
        return pinned
    return settings.backend if settings is not None else None


def _settings_kwargs(settings: ExecutionSettings) -> dict:
    """The shared-knob kwargs for executors that accept the full set.

    One place to extend when :class:`ExecutionSettings` grows a knob,
    instead of per-strategy kwarg blocks drifting apart.  (The
    baselines' executors accept only a subset and spell it out.)
    """
    return {
        "capacity_bits": settings.capacity_bits,
        "on_overflow": settings.on_overflow,
        "hash_method": settings.hash_method,
        "chunk_rows": settings.chunk_rows,
        "pool": settings.pool,
        "max_workers": settings.max_workers,
        "machines": settings.machines,
    }


@dataclass
class StrategyOutcome:
    """A finished strategy execution in normalized form.

    ``answers`` accepts either the materialized set or a zero-argument
    supplier: the columnar executors materialize Python answer tuples
    lazily (the conversion dominates a large run), and the outcome
    preserves that laziness until somebody actually reads
    :attr:`answers`.
    """

    strategy: str
    answers_source: "set[tuple[int, ...]] | Callable[[], set[tuple[int, ...]]]"
    report: LoadReport
    servers_used: int
    raw: object

    @property
    def answers(self) -> set[tuple[int, ...]]:
        if callable(self.answers_source):
            self.answers_source = self.answers_source()
        return self.answers_source

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits


class Strategy:
    """One algorithm family the planner can choose.

    Subclasses set ``name`` / ``summary`` / ``supported_overrides`` and
    implement :meth:`applicable`, :meth:`estimate` and :meth:`_run`.
    """

    name: str = ""
    summary: str = ""
    #: The :data:`OVERRIDE_KEYS` this strategy threads into its
    #: executor; anything else passed to :meth:`run` raises.
    supported_overrides: frozenset[str] = frozenset()

    def applicable(
        self, query: ConjunctiveQuery, dstats: DataStatistics, p: int
    ) -> str | None:
        """None when the strategy applies; otherwise the pruning reason."""
        if p < 2:
            return "needs p >= 2"
        return None

    def estimate(
        self,
        query: ConjunctiveQuery,
        dstats: DataStatistics,
        p: int,
        machines=None,
    ) -> CostEstimate:
        """Predicted cost; ``machines`` (a heterogeneous
        :class:`~repro.config.MachineSpec`) switches every estimator to
        the speed-normalized makespan objective."""
        raise NotImplementedError

    def run(
        self,
        query: ConjunctiveQuery,
        database: Database,
        p: int,
        seed: int = 0,
        dstats: DataStatistics | None = None,
        storage: "StorageManager | None" = None,
        settings: ExecutionSettings | None = None,
        **overrides,
    ) -> StrategyOutcome:
        """Execute on ``database``.

        ``dstats`` lets a caller that has already collected
        :class:`DataStatistics` (the engine plans before it runs) pass
        them in, so strategies that can reuse them (multiround plan
        choice, star/triangle hitter statistics) skip a second scan.
        ``storage`` requests out-of-core execution; strategies whose
        executor streams (hypercube, skew star/triangle, multiround on
        a columnar backend) forward it, the in-memory baselines accept
        and ignore it -- :meth:`streams` tells callers which case they
        are in before running.

        ``settings`` carries the shared execution knobs
        (:class:`~repro.config.ExecutionSettings`: backend, capacity
        cap, hash method, chunk granularity); every strategy threads
        them into its executor, so a :class:`repro.session.Session`'s
        cluster configuration applies uniformly no matter which
        strategy wins.  ``overrides`` accepts the per-run knobs of
        :data:`OVERRIDE_KEYS` (``shares``/``exponents`` for share-based
        strategies, ``hitters`` for the skew-aware ones, ``plan`` for
        multi-round); a strategy rejects overrides it cannot honor
        rather than silently ignoring them.
        """
        unknown = sorted(set(overrides) - set(OVERRIDE_KEYS))
        if unknown:
            raise TypeError(
                f"unknown run override(s): {', '.join(unknown)}"
            )
        unsupported = sorted(
            key
            for key, value in overrides.items()
            if value is not None and key not in self.supported_overrides
        )
        if unsupported:
            raise ValueError(
                f"strategy {self.name!r} does not accept "
                f"{', '.join(unsupported)}"
            )
        supported = {
            key: overrides.get(key) for key in self.supported_overrides
        }
        return self._run(
            query,
            database,
            p,
            seed,
            dstats,
            storage,
            settings or ExecutionSettings(),
            **supported,
        )

    def _run(
        self,
        query: ConjunctiveQuery,
        database: Database,
        p: int,
        seed: int,
        dstats: DataStatistics | None,
        storage: "StorageManager | None",
        settings: ExecutionSettings,
        **overrides,
    ) -> StrategyOutcome:
        raise NotImplementedError

    def streams(self, settings: ExecutionSettings | None = None) -> bool:
        """Whether :meth:`run` would honor a storage manager right now.

        Depends on the resolved backend for the backend-switchable
        strategies (the tuple path cannot stream chunks); a pinned
        per-strategy backend wins, then ``settings.backend``, then the
        system-wide default.  The planner engine consults this to avoid
        opening a spill directory no one will use -- and to report
        honestly that a memory budget could not be enforced."""
        return False

    def __repr__(self) -> str:
        return f"<Strategy {self.name}>"


class OneRoundHyperCube(Strategy):
    """Vanilla HyperCube with LP (10) shares (Section 3.1).

    ``backend=None`` (the bare ``"hypercube"`` strategy) follows the
    system-wide default backend; the explicit ``hypercube-tuples`` /
    ``hypercube-numpy`` twins pin one engine for ablations.  All three
    are bit-identical in answers and loads.
    """

    supported_overrides = frozenset({"shares", "exponents"})

    def __init__(self, backend: str | None = None):
        self.backend = backend
        self.name = "hypercube" if backend is None else f"hypercube-{backend}"
        self.summary = (
            "one-round HyperCube, LP(10) shares"
            + (", default backend" if backend is None else f", {backend} backend")
        )

    def estimate(self, query, dstats, p, machines=None):
        return _memoized(
            dstats,
            ("hypercube", query, p, machines),
            lambda: hypercube_cost(query, dstats, p, machines=machines),
        )

    def _run(self, query, database, p, seed, dstats, storage, settings,
             shares=None, exponents=None):
        result = run_hypercube(
            query, database, p, shares=shares, exponents=exponents,
            seed=seed, backend=_effective_backend(self.backend, settings),
            storage=storage if self.streams(settings) else None,
            **_settings_kwargs(settings),
        )
        return StrategyOutcome(
            self.name, lambda: result.answers, result.report, p, result
        )

    def streams(self, settings=None) -> bool:
        return resolve_backend(_effective_backend(self.backend, settings)) == "numpy"


class SkewObliviousHyperCube(Strategy):
    """HyperCube with the LP (18) skew-resistant shares (Section 4.1)."""

    name = "skew-oblivious"
    summary = "HyperCube, LP(18) worst-case-skew shares"

    def estimate(self, query, dstats, p, machines=None):
        return hypercube_cost(
            query, dstats, p, skew_oblivious=True, machines=machines
        )

    def streams(self, settings=None) -> bool:
        return resolve_backend(_effective_backend(None, settings)) == "numpy"

    def _run(self, query, database, p, seed, dstats, storage, settings):
        result = run_skew_oblivious_hypercube(
            query, database, p, seed=seed, backend=settings.backend,
            storage=storage if self.streams(settings) else None,
            **_settings_kwargs(settings),
        )
        return StrategyOutcome(
            self.name, lambda: result.answers, result.report, p, result
        )


class SkewAwareStar(Strategy):
    """The Section 4.2.1 star-query algorithm (per-hitter blocks)."""

    name = "skew-star"
    summary = "skew-aware star algorithm, Eq. (20) load"
    supported_overrides = frozenset({"hitters"})

    def applicable(self, query, dstats, p):
        base = super().applicable(query, dstats, p)
        if base:
            return base
        try:
            star_center(query)
        except ValueError as exc:
            return str(exc)
        return None

    def estimate(self, query, dstats, p, machines=None):
        return star_cost(query, dstats, p, machines=machines)

    def streams(self, settings=None) -> bool:
        return resolve_backend(_effective_backend(None, settings)) == "numpy"

    def _run(self, query, database, p, seed, dstats, storage, settings,
             hitters=None):
        if hitters is None and dstats is not None:
            hitters = dstats.hitters.get(star_center(query))
        result = run_star_skew(
            query, database, p, seed=seed, hitters=hitters,
            backend=settings.backend,
            storage=storage if self.streams(settings) else None,
            **_settings_kwargs(settings),
        )
        return StrategyOutcome(
            self.name, result.answers, result.report, result.servers_used, result
        )


class SkewAwareTriangle(Strategy):
    """The Section 4.2.2 triangle algorithm (light/case-1/case-2)."""

    name = "skew-triangle"
    summary = "skew-aware triangle algorithm (Section 4.2.2)"
    supported_overrides = frozenset({"hitters"})

    def applicable(self, query, dstats, p):
        base = super().applicable(query, dstats, p)
        if base:
            return base
        if not is_triangle_query(query):
            return "only the C3 triangle query"
        return None

    def estimate(self, query, dstats, p, machines=None):
        return triangle_cost(query, dstats, p, machines=machines)

    def streams(self, settings=None) -> bool:
        return resolve_backend(_effective_backend(None, settings)) == "numpy"

    def _run(self, query, database, p, seed, dstats, storage, settings,
             hitters=None):
        if (
            hitters is None
            and dstats is not None
            and dstats.exact
            and all(v in dstats.hitters for v in query.variables)
        ):
            # Exact planner statistics carry every frequency the
            # executor's thresholds compare against; sampled ones are
            # estimates, so the executor re-scans exactly instead.
            hitters = dstats.hitters
        result = run_triangle_skew(
            database, p, seed=seed, hitters=hitters,
            backend=settings.backend,
            storage=storage if self.streams(settings) else None,
            **_settings_kwargs(settings),
        )
        return StrategyOutcome(
            self.name, result.answers, result.report, result.servers_used, result
        )


class MultiRoundPlan(Strategy):
    """The cheapest enumerated query plan, run round by round (Section 5).

    ``backend=None`` (the bare ``"multiround"`` strategy) follows the
    system-wide default backend of
    :func:`~repro.multiround.executor.run_plan`; ``multiround-tuples``
    / ``multiround-numpy`` pin one engine.  Cost estimates are shared:
    the model prices bits, and the backends are bit-identical.
    """

    supported_overrides = frozenset({"plan"})

    def __init__(self, backend: str | None = None):
        self.backend = backend
        self.name = "multiround" if backend is None else f"multiround-{backend}"
        self.summary = (
            "multi-round query plan (Proposition 5.1)"
            + ("" if backend is None else f", {backend} backend")
        )

    def applicable(self, query, dstats, p):
        base = super().applicable(query, dstats, p)
        if base:
            return base
        if not candidate_plans(query):
            return "no candidate plan (disconnected query)"
        return None

    def streams(self, settings=None) -> bool:
        return resolve_backend(_effective_backend(self.backend, settings)) == "numpy"

    def best_plan(
        self,
        query: ConjunctiveQuery,
        dstats: DataStatistics,
        p: int,
        machines=None,
    ) -> tuple[str, Plan, CostEstimate]:
        """The minimum-predicted-cost plan from :func:`candidate_plans`."""
        return _memoized(
            dstats,
            ("multiround", query, p, machines),
            lambda: self._compute_best_plan(query, dstats, p, machines),
        )

    def _compute_best_plan(
        self,
        query: ConjunctiveQuery,
        dstats: DataStatistics,
        p: int,
        machines=None,
    ) -> tuple[str, Plan, CostEstimate]:
        best: tuple[str, Plan, CostEstimate] | None = None
        for label, plan in candidate_plans(query):
            estimate = multiround_plan_cost(plan, dstats, p, machines=machines)
            if best is None or estimate.sort_key() < best[2].sort_key():
                best = (label, plan, estimate)
        if best is None:
            raise ValueError("no candidate plan for this query")
        label, plan, estimate = best
        detail = f"plan {label}, {estimate.detail}"
        return label, plan, CostEstimate(
            estimate.load_bits, estimate.rounds, estimate.servers, detail
        )

    def estimate(self, query, dstats, p, machines=None):
        return self.best_plan(query, dstats, p, machines)[2]

    def _run(self, query, database, p, seed, dstats, storage, settings,
             plan=None):
        if plan is None:
            if dstats is None:
                dstats = DataStatistics.from_database(query, database, p)
            _, plan, _ = self.best_plan(
                query, dstats, p, resolve_machines(settings.machines, p)
            )
        elif plan.query != query:
            # run_plan executes whatever the plan answers; catching the
            # mismatch here keeps a pinned override from silently
            # computing a different query than the one recorded.
            raise ValueError(
                f"plan answers {plan.query.name or plan.query!r}, "
                f"not {query.name or query!r}"
            )
        result = run_plan(
            plan, database, p, seed=seed,
            backend=_effective_backend(self.backend, settings),
            storage=storage if self.streams(settings) else None,
            **_settings_kwargs(settings),
        )
        return StrategyOutcome(
            self.name, lambda: result.answers, result.report, p, result
        )


class ParallelHashJoin(Strategy):
    """The textbook parallel hash join on the common variables."""

    name = "hash-join"
    summary = "parallel hash join on the shared variable(s)"

    @staticmethod
    def _join_variables(query: ConjunctiveQuery) -> tuple[str, ...]:
        return tuple(
            v
            for v in query.variables
            if all(v in a.variable_set for a in query.atoms)
        )

    def applicable(self, query, dstats, p):
        base = super().applicable(query, dstats, p)
        if base:
            return base
        if not self._join_variables(query):
            return "no variable common to all atoms"
        return None

    def estimate(self, query, dstats, p, machines=None):
        return hash_join_cost(
            query, dstats, p, self._join_variables(query), machines=machines
        )

    def _run(self, query, database, p, seed, dstats, storage, settings):
        result = run_parallel_hash_join(
            query, database, p,
            join_variables=self._join_variables(query), seed=seed,
            capacity_bits=settings.capacity_bits,
            on_overflow=settings.on_overflow,
            backend=settings.backend,
            hash_method=settings.hash_method,
        )
        return StrategyOutcome(
            self.name, lambda: result.answers, result.report, p, result
        )


class BroadcastJoin(Strategy):
    """Partition the largest relation, broadcast the rest (Lemma 3.18)."""

    name = "broadcast"
    summary = "partition largest relation, broadcast the rest"

    def estimate(self, query, dstats, p, machines=None):
        return broadcast_cost(query, dstats, p, machines=machines)

    def _run(self, query, database, p, seed, dstats, storage, settings):
        result = run_broadcast_join(
            query, database, p, seed=seed,
            capacity_bits=settings.capacity_bits,
            on_overflow=settings.on_overflow,
        )
        return StrategyOutcome(self.name, result.answers, result.report, p, result)


class SingleServer(Strategy):
    """The degenerate ``L = |I|`` baseline (Section 2.1)."""

    name = "single-server"
    summary = "ship everything to one server"

    def applicable(self, query, dstats, p):
        if p < 1:
            return "needs p >= 1"
        return None

    def estimate(self, query, dstats, p, machines=None):
        return single_server_cost(query, dstats, p, machines=machines)

    def _run(self, query, database, p, seed, dstats, storage, settings):
        result = run_single_server(
            query, database, p,
            capacity_bits=settings.capacity_bits,
            on_overflow=settings.on_overflow,
        )
        return StrategyOutcome(self.name, result.answers, result.report, p, result)


# Registration order doubles as the cost tie-break (see optimizer.plan).
# The bare "hypercube" / "multiround" strategies run whatever backend
# :func:`repro.config.default_backend` selects (numpy as shipped, so
# the planner is fast by default); the explicit "-tuples" / "-numpy"
# twins pin one engine for ablations and ground-truth runs, e.g.
# ``execute(..., strategy="hypercube-tuples")``.  All twins share one
# cost estimate -- the model prices bits, not wall-clock -- so the
# default-backend strategy wins ties by preceding its twins.
_REGISTRY: list[Strategy] = [
    OneRoundHyperCube(),
    OneRoundHyperCube("tuples"),
    OneRoundHyperCube("numpy"),
    SkewObliviousHyperCube(),
    SkewAwareStar(),
    SkewAwareTriangle(),
    MultiRoundPlan(),
    MultiRoundPlan("tuples"),
    MultiRoundPlan("numpy"),
    ParallelHashJoin(),
    BroadcastJoin(),
    SingleServer(),
]


def default_strategies() -> tuple[Strategy, ...]:
    """The built-in registry, in tie-breaking priority order."""
    return tuple(_REGISTRY)


def register(strategy: Strategy) -> Strategy:
    """Append a strategy to the default registry (returns it)."""
    if any(s.name == strategy.name for s in _REGISTRY):
        raise ValueError(f"strategy name {strategy.name!r} already registered")
    _REGISTRY.append(strategy)
    return strategy
