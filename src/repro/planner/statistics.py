"""Everything the planner knows about the data, without touching it.

The paper's algorithm-selection story is driven by exactly two kinds of
information, both of which the MPC model assumes every server holds in
advance:

* cardinality statistics ``m_j`` / ``M_j`` (:class:`Statistics`,
  Section 3), and
* per-variable heavy-hitter frequency vectors ``m_j(h)``
  (:class:`HitterStatistics`, the x-statistics of Section 4.2 -- at
  most ``p`` values per relation, "an O(p) amount of information").

:class:`DataStatistics` bundles the two.  Cost models consume it; no
strategy is executed to produce a cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.skew.heavy_hitters import HitterStatistics


@dataclass(frozen=True)
class DataStatistics:
    """Cardinalities plus per-variable heavy-hitter frequency vectors.

    ``hitters[v]`` holds the frequency vectors ``m_j(h)`` of variable
    ``v`` over the relations containing it, restricted to values at or
    above the detection threshold (``m_j / p`` by default).  An empty
    ``hitters`` map encodes "cardinalities only" -- the planner then
    prices every strategy with its skew-free formula.
    """

    stats: Statistics
    hitters: Mapping[str, HitterStatistics] = field(default_factory=dict)

    @property
    def query(self) -> ConjunctiveQuery:
        return self.stats.query

    @classmethod
    def from_database(
        cls,
        query: ConjunctiveQuery,
        database: Database,
        p: int,
        threshold_fraction: float = 1.0,
    ) -> "DataStatistics":
        """Collect cardinalities and all per-variable hitter vectors.

        Detection is exact with the per-relation threshold
        ``threshold_fraction * m_j / p`` -- the same convention the
        skew-aware executors use, so predictions and executions see the
        same heavy hitters.
        """
        stats = database.statistics(query)
        hitters = {
            v: HitterStatistics.from_database(
                query, database, v, threshold_fraction, p
            )
            for v in query.variables
        }
        return cls(stats, hitters)

    @classmethod
    def coerce(
        cls,
        query: ConjunctiveQuery,
        source: "DataStatistics | Statistics | Database",
        p: int,
    ) -> "DataStatistics":
        """Accept any of the three statistics carriers ``plan()`` takes."""
        if isinstance(source, DataStatistics):
            return source
        if isinstance(source, Database):
            return cls.from_database(query, source, p)
        if isinstance(source, Statistics):
            return cls(source)
        raise TypeError(
            f"expected DataStatistics, Statistics or Database, got "
            f"{type(source).__name__}"
        )

    def frequency(self, variable: str, relation: str, value: int) -> int:
        """``m_relation(value)`` on ``variable`` (0 when unknown/light)."""
        stats_v = self.hitters.get(variable)
        if stats_v is None:
            return 0
        return stats_v.frequency(relation, value)

    def frequency_maps(self) -> dict[str, dict[str, dict[int, int]]]:
        """``variable -> relation -> value -> frequency`` (hitters only)."""
        return {
            v: {rel: dict(freqs) for rel, freqs in stats_v.frequencies.items()}
            for v, stats_v in self.hitters.items()
        }
