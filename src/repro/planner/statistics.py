"""Everything the planner knows about the data, without touching it.

The paper's algorithm-selection story is driven by exactly two kinds of
information, both of which the MPC model assumes every server holds in
advance:

* cardinality statistics ``m_j`` / ``M_j`` (:class:`Statistics`,
  Section 3), and
* per-variable heavy-hitter frequency vectors ``m_j(h)``
  (:class:`HitterStatistics`, the x-statistics of Section 4.2 -- at
  most ``p`` values per relation, "an O(p) amount of information").

:class:`DataStatistics` bundles the two.  Cost models consume it; no
strategy is executed to produce a cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.skew.heavy_hitters import HitterStatistics
from repro.storage.chunked import iter_array_chunks


@dataclass(frozen=True)
class DataStatistics:
    """Cardinalities plus per-variable heavy-hitter frequency vectors.

    ``hitters[v]`` holds the frequency vectors ``m_j(h)`` of variable
    ``v`` over the relations containing it, restricted to values at or
    above the detection threshold (``m_j / p`` by default).  An empty
    ``hitters`` map encodes "cardinalities only" -- the planner then
    prices every strategy with its skew-free formula.
    """

    stats: Statistics
    hitters: Mapping[str, HitterStatistics] = field(default_factory=dict)
    #: Whether the hitter vectors came from exact frequency scans
    #: (:meth:`from_database`) rather than row samples
    #: (:meth:`from_sample`).  Consumers that need exact counts -- the
    #: triangle executor's threshold classification -- only reuse exact
    #: vectors and re-scan otherwise.
    exact: bool = True

    @property
    def query(self) -> ConjunctiveQuery:
        return self.stats.query

    @classmethod
    def from_database(
        cls,
        query: ConjunctiveQuery,
        database: Database,
        p: int,
        threshold_fraction: float = 1.0,
    ) -> "DataStatistics":
        """Collect cardinalities and all per-variable hitter vectors.

        Detection is exact with the per-relation threshold
        ``threshold_fraction * m_j / p`` -- the same convention the
        skew-aware executors use, so predictions and executions see the
        same heavy hitters.
        """
        stats = database.statistics(query)
        hitters = {
            v: HitterStatistics.from_database(
                query, database, v, threshold_fraction, p
            )
            for v in query.variables
        }
        return cls(stats, hitters)

    @classmethod
    def from_sample(
        cls,
        query: ConjunctiveQuery,
        database: Database,
        p: int,
        sample_rows: int = 4096,
        seed: int = 0,
        threshold_fraction: float = 1.0,
        safety: float = 0.5,
    ) -> "DataStatistics":
        """Cardinalities exact, hitter vectors estimated from samples.

        The sampled counterpart of :meth:`from_database` for when a
        full frequency scan is too expensive (the paper notes the
        x-statistics "can be easily obtained from small samples of the
        input").  One uniform row sample of ``sample_rows`` rows per
        relation feeds every variable's estimate.
        """
        stats = database.statistics(query)
        hitters = {
            v: sample_heavy_hitters(
                query, database, v, p,
                sample_rows=sample_rows,
                seed=seed,
                threshold_fraction=threshold_fraction,
                safety=safety,
            )
            for v in query.variables
        }
        return cls(stats, hitters, exact=False)

    @classmethod
    def coerce(
        cls,
        query: ConjunctiveQuery,
        source: "DataStatistics | Statistics | Database",
        p: int,
    ) -> "DataStatistics":
        """Accept any of the three statistics carriers ``plan()`` takes."""
        if isinstance(source, DataStatistics):
            return source
        if isinstance(source, Database):
            return cls.from_database(query, source, p)
        if isinstance(source, Statistics):
            return cls(source)
        raise TypeError(
            "expected DataStatistics, Statistics or Database, got "
            f"{type(source).__name__}"
        )

    def frequency(self, variable: str, relation: str, value: int) -> int:
        """``m_relation(value)`` on ``variable`` (0 when unknown/light)."""
        stats_v = self.hitters.get(variable)
        if stats_v is None:
            return 0
        return stats_v.frequency(relation, value)

    def frequency_maps(self) -> dict[str, dict[str, dict[int, int]]]:
        """``variable -> relation -> value -> frequency`` (hitters only)."""
        return {
            v: {rel: dict(freqs) for rel, freqs in stats_v.frequencies.items()}
            for v, stats_v in self.hitters.items()
        }


def sample_heavy_hitters(
    query: ConjunctiveQuery,
    database: Database,
    variable: str,
    p: int,
    sample_rows: int = 4096,
    seed: int = 0,
    threshold_fraction: float = 1.0,
    safety: float = 0.5,
) -> HitterStatistics:
    """Estimate one variable's :class:`HitterStatistics` from row samples.

    For every relation containing ``variable``, draw ``sample_rows``
    rows uniformly with replacement (chunk-aware, so chunked relations
    are never materialized), scale each sampled value's count by
    ``m / sample_rows``, and keep values whose estimate reaches
    ``safety *`` the exact detector's threshold
    ``threshold_fraction * m / p``.  The ``safety`` slack trades a few
    false positives (light values that cost a constant factor of
    servers downstream) for a low false-negative rate: a value exactly
    at the threshold has expected sample count ``sample_rows / p``,
    and Chernoff puts its chance of estimating below half of that at
    ``exp(-sample_rows / (8 p))``.

    Estimated frequencies are rounded to ints so the result is a
    drop-in for the exact :meth:`HitterStatistics.from_database` --
    the planner's cost models and the skew-aware executors consume
    either interchangeably.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if sample_rows < 1:
        raise ValueError("sample_rows must be >= 1")
    rng = np.random.default_rng(seed)
    frequencies: dict[str, dict[int, int]] = {}
    for atom in query.atoms:
        if variable not in atom.variable_set:
            continue
        relation = database[atom.relation]
        m = len(relation)
        if m == 0:
            frequencies[atom.relation] = {}
            continue
        position = atom.variables.index(variable)
        index = np.sort(rng.integers(0, m, size=sample_rows))
        sampled = _gather_column(relation, position, index)
        values, counts = np.unique(sampled, return_counts=True)
        estimates = counts * (m / sample_rows)
        threshold = max(threshold_fraction * m / p, 1e-12)
        keep = estimates >= safety * threshold
        frequencies[atom.relation] = {
            int(v): int(round(e))
            for v, e in zip(values[keep], estimates[keep])
        }
    return HitterStatistics(query, variable, frequencies)


def _gather_column(relation, position: int, sorted_index: np.ndarray) -> np.ndarray:
    """Values of one column at sorted row indices, one chunk at a time."""
    out = np.empty(len(sorted_index), dtype=np.int64)
    start = 0  # first row id of the current chunk
    taken = 0
    for chunk in iter_array_chunks(relation, None):
        stop = start + len(chunk)
        hi = np.searchsorted(sorted_index, stop, side="left")
        if hi > taken:
            rows = sorted_index[taken:hi] - start
            out[taken:hi] = np.asarray(chunk[:, position])[rows]
            taken = hi
        start = stop
    return out
