"""``execute(query, db, p)``: plan, run the winner, check the model.

The execution engine closes the loop the paper leaves open: collect the
statistics every server is assumed to know, rank the strategies with
the closed-form cost model, run the predicted-cheapest one on the MPC
simulator, and attach the prediction to the measured
:class:`~repro.mpc.report.LoadReport` so every run reports how close
the model came (``report.prediction_ratio()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.mpc.report import LoadReport
from repro.planner.cost import CostEstimate
from repro.planner.optimizer import ExplainedPlan, plan
from repro.planner.statistics import DataStatistics
from repro.planner.strategies import Strategy, StrategyOutcome


@dataclass
class PlannedExecution:
    """A planner-chosen execution: the explanation plus the outcome."""

    plan: ExplainedPlan
    outcome: StrategyOutcome
    estimate: CostEstimate

    @property
    def strategy(self) -> str:
        return self.outcome.strategy

    @property
    def answers(self) -> set[tuple[int, ...]]:
        return self.outcome.answers

    @property
    def report(self) -> LoadReport:
        return self.outcome.report

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def predicted_load_bits(self) -> float:
        return self.estimate.load_bits

    def summary(self) -> str:
        """The EXPLAIN table plus the measured outcome."""
        ratio = self.report.prediction_ratio()
        lines = [
            self.plan.table(),
            f"  executed {self.strategy}: measured L = "
            f"{self.max_load_bits:.4g} bits"
            + (f" (measured/predicted = {ratio:.2f})" if ratio else ""),
        ]
        return "\n".join(lines)


def execute(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    strategy: str | None = None,
    strategies: Sequence[Strategy] | None = None,
    stats: DataStatistics | None = None,
) -> PlannedExecution:
    """Plan ``query`` against ``database`` and run the chosen strategy.

    ``strategy`` forces a specific (applicable) strategy by name instead
    of the ranked winner -- useful for ablations and for comparing the
    planner's pick against an alternative on the same input.

    ``stats`` accepts already-collected :class:`DataStatistics` (e.g.
    ``plan(...).statistics`` from a prior call), so the common
    plan-then-execute pattern scans the database for heavy-hitter
    frequencies once, not twice.
    """
    dstats = (
        stats
        if stats is not None
        else DataStatistics.from_database(query, database, p)
    )
    explained = plan(query, dstats, p, strategies=strategies)
    if strategy is None:
        candidate = explained.winner
    else:
        candidate = explained.candidate(strategy)
        if not candidate.applicable:
            raise ValueError(
                f"strategy {strategy!r} is not applicable here: "
                f"{candidate.reason}"
            )
    outcome = candidate.strategy.run(query, database, p, seed=seed, dstats=dstats)
    outcome.report.attach_prediction(
        candidate.name,
        candidate.estimate.load_bits,
        candidate.estimate.rounds,
    )
    return PlannedExecution(explained, outcome, candidate.estimate)
