"""``execute(query, db, p)``: plan, run the winner, check the model.

The execution engine closes the loop the paper leaves open: collect the
statistics every server is assumed to know, rank the strategies with
the closed-form cost model, run the predicted-cheapest one on the MPC
simulator, and attach the prediction to the measured
:class:`~repro.mpc.report.LoadReport` so every run reports how close
the model came (``report.prediction_ratio()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.config import ExecutionSettings, resolve_machines
from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.mpc.report import LoadReport
from repro.planner.cost import CostEstimate
from repro.planner.optimizer import ExplainedPlan
from repro.planner.optimizer import plan as rank_strategies
from repro.planner.statistics import DataStatistics
from repro.planner.strategies import Strategy, StrategyOutcome
from repro.storage.manager import StorageManager

#: How many times the input's bytes an in-memory columnar execution is
#: assumed to touch at peak (input + routed replicas + fragments +
#: join intermediates).  A memory budget below this footprint selects
#: chunked execution.
IN_MEMORY_FOOTPRINT_FACTOR = 4


@dataclass
class PlannedExecution:
    """A planner-chosen execution: the explanation plus the outcome."""

    plan: ExplainedPlan
    outcome: StrategyOutcome
    estimate: CostEstimate
    #: The storage manager the engine opened for an over-budget run
    #: (None for in-memory executions).  Owned by this object: spill
    #: files live until it is closed or garbage-collected, so lazily
    #: materialized answers stay readable.
    storage: StorageManager | None = None
    #: Why the memory budget was or was not enforced -- ``None`` (no
    #: budget given), ``"chunked"`` (over budget, ran out-of-core),
    #: ``"fits"`` (footprint within budget), or ``"not-enforced"``
    #: (over budget but the winner cannot stream).  The CLI prints
    #: this instead of re-deriving the engine's decision.
    budget_outcome: str | None = None

    @property
    def strategy(self) -> str:
        return self.outcome.strategy

    @property
    def answers(self) -> set[tuple[int, ...]]:
        return self.outcome.answers

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, k)`` int64 array."""
        raw = self.outcome.raw
        if hasattr(raw, "answers_array"):
            return raw.answers_array()
        answers = sorted(self.answers)
        if not answers:
            return np.empty((0, 0), dtype=np.int64)
        return np.array(answers, dtype=np.int64)

    @property
    def report(self) -> LoadReport:
        return self.outcome.report

    @property
    def load_report(self) -> LoadReport:
        return self.outcome.report

    @property
    def rounds(self) -> int:
        return self.report.num_rounds

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def predicted_load_bits(self) -> float:
        return self.estimate.load_bits

    @property
    def predicted_bits(self) -> float:
        """The :class:`repro.session.RunResult` name for the prediction."""
        return self.estimate.load_bits

    def summary(self) -> str:
        """The EXPLAIN table plus the measured outcome."""
        ratio = self.report.prediction_ratio()
        lines = [
            self.plan.table(),
            f"  executed {self.strategy}: measured L = "
            f"{self.max_load_bits:.4g} bits"
            + (f" (measured/predicted = {ratio:.2f})" if ratio else ""),
            f"  {self.report.percentile_line()}",
        ]
        if self.storage is not None:
            lines.append(
                "  out-of-core: spilled "
                f"{self.storage.bytes_spilled / 2**20:.1f} MiB in "
                f"{self.storage.chunks_spilled} chunks "
                f"(chunk_rows={self.storage.chunk_rows})"
            )
        return "\n".join(lines)


def execute(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    strategy: str | None = None,
    strategies: Sequence[Strategy] | None = None,
    stats: DataStatistics | None = None,
    storage: StorageManager | None = None,
    memory_budget_bytes: int | None = None,
    settings: ExecutionSettings | None = None,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
    hitters: object | None = None,
    plan: object | None = None,
    storage_optional: bool = False,
) -> PlannedExecution:
    """Plan ``query`` against ``database`` and run the chosen strategy.

    ``strategy`` forces a specific (applicable) strategy by name instead
    of the ranked winner -- useful for ablations and for comparing the
    planner's pick against an alternative on the same input.

    ``stats`` accepts already-collected :class:`DataStatistics` (e.g.
    ``plan(...).statistics`` from a prior call), so the common
    plan-then-execute pattern scans the database for heavy-hitter
    frequencies once, not twice.

    ``memory_budget_bytes`` makes the engine memory-aware: when the
    assumed in-memory footprint (input bytes times
    :data:`IN_MEMORY_FOOTPRINT_FACTOR`) exceeds the budget, it opens a
    :class:`StorageManager` sized by
    :meth:`StorageManager.from_budget` and runs the winner chunked.
    Under an active manager the statistics default to the *sampled*
    estimator (:meth:`DataStatistics.from_sample`) rather than the
    exact frequency scan, whose per-value counters would themselves
    blow the budget at out-of-core scales (pass ``stats`` explicitly
    to override).  A winner that cannot stream (its
    :meth:`~repro.planner.strategies.Strategy.streams` is false, e.g.
    a pinned ``-tuples`` twin or an in-memory baseline) runs without
    the manager, which is closed and *not* attached -- callers can
    tell from ``.storage is None`` that the budget was not enforced.
    The attached manager cleans up on garbage collection or an
    explicit ``close()``.

    Passing an explicit ``storage`` *demands* chunked execution: if the
    chosen strategy cannot stream (``streams()`` is false), the engine
    raises ``ValueError`` rather than silently ignoring the caller's
    memory constraint -- unless ``storage_optional=True``, which runs
    the winner in memory instead and reports ``budget_outcome =
    "not-enforced"`` (the contract a :class:`repro.session.Session`'s
    shared manager wants).  (``.storage`` on the result stays reserved
    for the engine-owned manager; an explicit manager remains owned by
    the caller.)

    ``settings`` threads a :class:`~repro.config.ExecutionSettings`
    (backend, capacity cap, hash method, chunk granularity) into
    whichever strategy runs; ``shares``/``exponents``/``hitters``/
    ``plan`` are per-run overrides forwarded to strategies that accept
    them (pinning e.g. ``strategy="hypercube", shares={...}``) and
    rejected loudly by the rest.
    """
    owned: StorageManager | None = None
    budget_outcome: str | None = None
    if storage is None and memory_budget_bytes is not None:
        footprint = database.total_bytes() * IN_MEMORY_FOOTPRINT_FACTOR
        if footprint > memory_budget_bytes:
            owned = storage = StorageManager.from_budget(memory_budget_bytes)
            budget_outcome = "chunked"
        else:
            budget_outcome = "fits"
    try:
        if stats is not None:
            dstats = stats
        elif storage is not None:
            dstats = DataStatistics.from_sample(query, database, p)
        else:
            dstats = DataStatistics.from_database(query, database, p)
        # Rank under the cluster's machine spec (config/default), so a
        # heterogeneous session's winner minimizes predicted makespan.
        machines = resolve_machines(
            settings.machines if settings is not None else None, p
        )
        explained = rank_strategies(
            query, dstats, p, strategies=strategies, machines=machines
        )
        if strategy is None:
            candidate = explained.winner
        else:
            candidate = explained.candidate(strategy)
            if not candidate.applicable:
                raise ValueError(
                    f"strategy {strategy!r} is not applicable here: "
                    f"{candidate.reason}"
                )
        if storage is not None and not candidate.strategy.streams(settings):
            if owned is None and not storage_optional:
                # The caller demanded chunked execution; refusing is
                # better than silently dropping a memory constraint.
                raise ValueError(
                    f"strategy {candidate.name!r} cannot stream through "
                    "a storage manager (tuple backend or in-memory "
                    "baseline); pick a streaming strategy or use "
                    "memory_budget_bytes"
                )
            # The budget-opened manager would be ignored: run
            # in-memory and report that honestly via .storage = None.
            if owned is not None:
                owned.close()
                owned = None
            storage = None
            budget_outcome = "not-enforced"
        outcome = candidate.strategy.run(
            query, database, p, seed=seed, dstats=dstats, storage=storage,
            settings=settings, shares=shares, exponents=exponents,
            hitters=hitters, plan=plan,
        )
    except Exception:
        if owned is not None:
            owned.close()
        raise
    outcome.report.attach_prediction(
        candidate.name,
        candidate.estimate.load_bits,
        candidate.estimate.rounds,
    )
    return PlannedExecution(
        explained,
        outcome,
        candidate.estimate,
        storage=owned,
        budget_outcome=budget_outcome,
    )
