"""``plan(query, stats, p)``: rank every strategy, explain the choice.

The optimizer prices each registered strategy with its paper formula
(pruning the inapplicable ones with a reason), ranks the applicable
candidates by predicted load / rounds / servers, and returns an
:class:`ExplainedPlan` whose :meth:`~ExplainedPlan.table` renders the
EXPLAIN cost table -- the per-candidate comparison the paper carries
out by hand in Sections 3-5, automated.

The Theorem 3.15 one-round floor ``L_lower`` is computed alongside as
the reference line: no one-round strategy can beat it, so a predicted
cost close to the floor means the winner is essentially optimal.
"""

from __future__ import annotations

import inspect
import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.bounds.one_round import lower_bound
from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.planner.cost import CostEstimate
from repro.planner.statistics import DataStatistics
from repro.planner.strategies import Strategy, default_strategies

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.config import MachineSpec

logger = logging.getLogger("repro.planner.optimizer")

#: Strategy classes already warned about a pre-heterogeneity
#: ``estimate()`` signature (one warning per class per process).
_LEGACY_ESTIMATE_WARNED: set[type] = set()


def _estimate_with_machines(
    strategy: Strategy,
    query: ConjunctiveQuery,
    dstats: DataStatistics,
    p: int,
    machines: "MachineSpec",
) -> CostEstimate:
    """Price one strategy against a machine spec, tolerating old APIs.

    Custom strategies written before the heterogeneity work have a
    three-parameter ``estimate()``; they used to raise ``TypeError``
    the moment a cluster had a machine spec.  Now they are priced
    against the homogeneous model instead, with one warning per
    strategy class -- the signature is checked first so a genuine
    ``TypeError`` raised *inside* a four-parameter estimate still
    propagates.
    """
    try:
        return strategy.estimate(query, dstats, p, machines)
    except TypeError:
        parameters = inspect.signature(strategy.estimate).parameters
        takes_machines = len(parameters) >= 4 or any(
            param.kind is inspect.Parameter.VAR_POSITIONAL
            for param in parameters.values()
        )
        if takes_machines:
            raise
    cls = type(strategy)
    if cls not in _LEGACY_ESTIMATE_WARNED:
        _LEGACY_ESTIMATE_WARNED.add(cls)
        logger.warning(
            "strategy %r has a pre-heterogeneity estimate() without the "
            "machines parameter; pricing it against the homogeneous model",
            strategy.name,
        )
    return strategy.estimate(query, dstats, p)


@dataclass(frozen=True)
class Candidate:
    """One strategy's row in the cost table (or its pruning reason)."""

    strategy: Strategy
    estimate: CostEstimate | None
    reason: str | None = None

    @property
    def name(self) -> str:
        return self.strategy.name

    @property
    def applicable(self) -> bool:
        return self.estimate is not None


@dataclass(frozen=True)
class ExplainedPlan:
    """The ranked cost table plus everything needed to execute/justify it.

    ``candidates`` lists applicable strategies in rank order (cheapest
    predicted load first; ties break to earlier registration), followed
    by the pruned ones with their reasons.
    """

    query: ConjunctiveQuery
    p: int
    statistics: DataStatistics
    candidates: tuple[Candidate, ...]
    lower_bound_bits: float
    #: The machine spec the estimates were priced against; None for the
    #: homogeneous model.  Non-uniform specs switch every estimate to
    #: the speed-normalized makespan objective (bits per unit speed).
    machines: "MachineSpec | None" = None

    @property
    def ranked(self) -> tuple[Candidate, ...]:
        return tuple(c for c in self.candidates if c.applicable)

    @property
    def pruned(self) -> tuple[Candidate, ...]:
        return tuple(c for c in self.candidates if not c.applicable)

    @property
    def winner(self) -> Candidate:
        ranked = self.ranked
        if not ranked:
            raise ValueError(f"no applicable strategy for {self.query}")
        return ranked[0]

    def candidate(self, name: str) -> Candidate:
        for c in self.candidates:
            if c.name == name:
                return c
        raise KeyError(f"no strategy named {name!r} in this plan")

    def table(self) -> str:
        """The EXPLAIN cost table, ready to print."""
        stats = self.statistics.stats
        lines = [
            f"EXPLAIN {self.query} at p={self.p} "
            f"(|I| = {stats.total_bits:.3g} bits, one-round floor "
            f"L_lower = {self.lower_bound_bits:.3g} bits)"
        ]
        heterogeneous = (
            self.machines is not None and not self.machines.is_uniform
        )
        if heterogeneous:
            lines.append(
                f"  machines: {self.machines.describe()} "
                f"(total speed {self.machines.total_speed:g}; estimates "
                "are makespan, bits per unit speed)"
            )
        cost_label = "predicted span" if heterogeneous else "predicted L"
        header = (
            f"  {'rank':>4}  {'strategy':<16} {cost_label:>14} "
            f"{'rounds':>6} {'servers':>8}  detail"
        )
        lines.append(header)
        for rank, c in enumerate(self.ranked, 1):
            est = c.estimate
            lines.append(
                f"  {rank:>4}  {c.name:<16} {est.load_bits:>9.4g} bits "
                f"{est.rounds:>6} {est.servers:>8}  {est.detail}"
            )
        for c in self.pruned:
            lines.append(f"     -  {c.name:<16} pruned: {c.reason}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


def plan(
    query: ConjunctiveQuery,
    stats: DataStatistics | Statistics | Database,
    p: int,
    strategies: Sequence[Strategy] | None = None,
    machines: "MachineSpec | None" = None,
) -> ExplainedPlan:
    """Rank every strategy for ``query`` at ``p`` servers.

    ``stats`` may be a full :class:`DataStatistics`, a bare
    :class:`Statistics` (no skew information -- every strategy is priced
    skew-free), or a :class:`Database` (statistics are collected from
    it).  Nothing is executed.

    ``machines`` (a heterogeneous :class:`~repro.config.MachineSpec`)
    reprices every strategy under the makespan objective
    ``max_s load_s / v_s``, so the ranking favors strategies whose
    routing can exploit fast servers; with ``None`` (or a uniform
    spec) the classic homogeneous ``L`` is used.
    """
    dstats = DataStatistics.coerce(query, stats, p)
    if dstats.query.relation_names != query.relation_names:
        raise ValueError(
            "statistics describe a different query "
            f"({dstats.query.relation_names} vs {query.relation_names})"
        )
    pool = tuple(strategies) if strategies is not None else default_strategies()

    applicable: list[tuple[int, Candidate]] = []
    pruned: list[Candidate] = []
    for order, strategy in enumerate(pool):
        reason = strategy.applicable(query, dstats, p)
        if reason is not None:
            pruned.append(Candidate(strategy, None, reason))
            continue
        if machines is None:
            estimate = strategy.estimate(query, dstats, p)
        else:
            estimate = _estimate_with_machines(
                strategy, query, dstats, p, machines
            )
        applicable.append((order, Candidate(strategy, estimate)))

    applicable.sort(key=lambda item: (item[1].estimate.sort_key(), item[0]))
    candidates = tuple(c for _, c in applicable) + tuple(pruned)
    floor = lower_bound(query, dstats.stats, p) if p >= 1 else 0.0
    return ExplainedPlan(
        query=query,
        p=p,
        statistics=dstats,
        candidates=candidates,
        lower_bound_bits=floor,
        machines=machines,
    )
