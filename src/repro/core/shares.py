"""Share-exponent optimization for the HyperCube algorithm.

Section 3.1 computes HyperCube shares ``p_i = p^{e_i}`` by solving the
linear program (10) over *share exponents*:

.. math::
    \\min \\lambda \\ \\text{s.t.}\\  \\sum_i e_i \\le 1, \\quad
    \\forall j: \\sum_{i \\in S_j} e_i + \\lambda \\ge \\mu_j, \\quad
    e_i, \\lambda \\ge 0

where ``mu_j = log_p M_j``.  The optimal ``lambda*`` gives the load
``L_upper = p^{lambda*}``; with equal sizes the closed form is
``e_i = v*_i / tau*`` for an optimal fractional vertex cover ``v*``.

Section 4.1 replaces the per-relation product ``prod_{i in S_j} p_i``
with ``min_{i in S_j} p_i`` (the worst case under skew), giving LP (18);
:func:`skew_oblivious_share_exponents` solves it.

Real clusters have integer share counts; :func:`integerize_shares`
rounds ``p^{e_i}`` to integers with product at most ``p``, the way
HyperCube implementations (e.g. Myria) do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.lp import snap, solve_lp
from repro.core.packing import minimum_vertex_cover
from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics


@dataclass(frozen=True)
class ShareSolution:
    """Optimal share exponents for a query at ``p`` servers.

    ``exponents`` maps each variable to ``e_i`` with ``sum e_i <= 1``;
    ``lam`` is the optimal objective ``lambda*`` of LP (10)/(18), so the
    predicted load is ``p^lam`` bits.
    """

    query: ConjunctiveQuery
    p: int
    exponents: dict[str, float]
    lam: float

    @property
    def load_bits(self) -> float:
        """``L_upper = p^{lambda*}`` in bits (Theorem 3.4)."""
        return self.p ** self.lam

    def share(self, variable: str) -> float:
        """The fractional share ``p^{e_i}`` of a variable."""
        return self.p ** self.exponents.get(variable, 0.0)

    def fractional_shares(self) -> dict[str, float]:
        return {v: self.share(v) for v in self.query.variables}

    def integer_shares(self) -> dict[str, int]:
        """Integer shares with product at most ``p``."""
        return integerize_shares(self.exponents, self.p)

    def integer_load_bits(self, stats: Statistics) -> float:
        """Corollary 3.3 load of the *integerized* shares, in bits.

        ``max_j M_j / prod_{i in S_j} p_i`` for the rounded shares of
        :meth:`integer_shares`.  Rounding can only lose parallelism, so
        this is at least the fractional ``p^{lambda*}`` and is the
        honest prediction for a real grid of ``p`` servers (what the
        planner's cost model ranks by).
        """
        shares = self.integer_shares()
        load = 0.0
        for atom in self.query.atoms:
            product = 1
            for v in atom.variable_set:
                product *= shares.get(v, 1)
            load = max(load, stats.bits(atom.relation) / product)
        return load


def _mu(stats: Statistics, p: int) -> dict[str, float]:
    """``mu_j = log_p M_j`` for every relation."""
    out: dict[str, float] = {}
    for rel in stats.query.relation_names:
        bits = stats.bits(rel)
        out[rel] = math.log(bits, p) if bits > 0 else 0.0
    return out


def share_exponents(
    query: ConjunctiveQuery, stats: Statistics, p: int
) -> ShareSolution:
    """Solve LP (10): optimal share exponents without skew.

    Works for arbitrary (unequal) statistics ``M``; Theorem 3.15 shows
    the resulting ``p^{lambda*}`` equals the lower bound
    ``max_u L(u, M, p)`` over fractional edge packings.
    """
    if p < 2:
        raise ValueError("share optimization needs p >= 2")
    if stats.query is not query:
        stats = Statistics(query, stats.cardinalities, stats.domain_size)
    variables = query.variables
    relations = query.relation_names
    mu = _mu(stats, p)
    k = len(variables)
    var_index = {v: i for i, v in enumerate(variables)}

    # Decision vector: (e_1 .. e_k, lambda).
    num = k + 1
    cost = [0.0] * k + [1.0]
    a_ub: list[list[float]] = []
    b_ub: list[float] = []
    # sum_i e_i <= 1
    a_ub.append([1.0] * k + [0.0])
    b_ub.append(1.0)
    # For each atom: -(sum_{i in S_j} e_i) - lambda <= -mu_j.
    for atom in query.atoms:
        row = [0.0] * num
        for v in atom.variable_set:
            row[var_index[v]] = -1.0
        row[k] = -1.0
        a_ub.append(row)
        b_ub.append(-mu[atom.relation])
    sol = solve_lp(cost, a_ub=a_ub, b_ub=b_ub)
    exponents = {v: snap(sol.x[var_index[v]]) for v in variables}
    return ShareSolution(query, p, exponents, snap(sol.value))


def skew_oblivious_share_exponents(
    query: ConjunctiveQuery, stats: Statistics, p: int
) -> ShareSolution:
    """Solve LP (18): shares minimizing the worst-case load under skew.

    For each relation the effective parallelism is the *minimum* share
    of its variables (Corollary 4.3), since an adversary may put all of
    a relation's tuples on a single value of every other variable.
    """
    if p < 2:
        raise ValueError("share optimization needs p >= 2")
    variables = query.variables
    relations = query.relation_names
    mu = _mu(stats, p)
    k, ell = len(variables), len(relations)
    var_index = {v: i for i, v in enumerate(variables)}
    rel_index = {r: i for i, r in enumerate(relations)}

    # Decision vector: (e_1..e_k, h_1..h_l, lambda).
    num = k + ell + 1
    cost = [0.0] * (k + ell) + [1.0]
    a_ub: list[list[float]] = []
    b_ub: list[float] = []
    # sum_i e_i <= 1
    a_ub.append([1.0] * k + [0.0] * ell + [0.0])
    b_ub.append(1.0)
    for atom in query.atoms:
        j = rel_index[atom.relation]
        # -h_j - lambda <= -mu_j
        row = [0.0] * num
        row[k + j] = -1.0
        row[k + ell] = -1.0
        a_ub.append(row)
        b_ub.append(-mu[atom.relation])
        # h_j - e_i <= 0 for every variable of the atom.
        for v in atom.variable_set:
            row = [0.0] * num
            row[k + j] = 1.0
            row[var_index[v]] = -1.0
            a_ub.append(row)
            b_ub.append(0.0)
    sol = solve_lp(cost, a_ub=a_ub, b_ub=b_ub)
    exponents = {v: snap(sol.x[var_index[v]]) for v in variables}
    return ShareSolution(query, p, exponents, snap(sol.value))


def afrati_ullman_share_exponents(
    query: ConjunctiveQuery, stats: Statistics, p: int
) -> ShareSolution:
    """Shares minimizing the *total* load, Afrati-Ullman style.

    Section 3.1 contrasts the paper's max-load objective with Afrati and
    Ullman's: minimize ``sum_j M_j / prod_{i in S_j} p_i`` subject to
    ``prod_i p_i = p`` (a convex program in exponent space, solved here
    with SLSQP instead of their Lagrange multipliers).  The returned
    ``lam`` is ``log_p`` of the *maximum* per-relation load of the
    solution, so ``load_bits`` compares directly with LP (10)'s -- the
    ablation benches show the total-load objective can be worse on the
    max-load metric the MPC model cares about.
    """
    if p < 2:
        raise ValueError("share optimization needs p >= 2")
    from scipy.optimize import minimize

    variables = query.variables
    k = len(variables)
    var_index = {v: i for i, v in enumerate(variables)}
    log_p = math.log(p)
    log_m = {
        rel: math.log(max(stats.bits(rel), 1e-300))
        for rel in query.relation_names
    }
    rows = []
    for atom in query.atoms:
        row = [0.0] * k
        for v in atom.variable_set:
            row[var_index[v]] = 1.0
        rows.append((atom.relation, row))

    def total_load(e):
        return sum(
            math.exp(log_m[rel] - log_p * sum(r * x for r, x in zip(row, e)))
            for rel, row in rows
        )

    start = [1.0 / k] * k
    result = minimize(
        total_load,
        start,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * k,
        constraints=[{"type": "eq", "fun": lambda e: sum(e) - 1.0}],
    )
    if not result.success:
        raise RuntimeError(f"Afrati-Ullman optimization failed: {result.message}")
    exponents = {v: snap(max(0.0, result.x[var_index[v]])) for v in variables}
    max_load = max(
        math.exp(log_m[rel] - log_p * sum(r * exponents[v] for r, v in zip(row, variables)))
        for rel, row in rows
    )
    return ShareSolution(query, p, exponents, math.log(max_load, p))


def equal_size_share_exponents(query: ConjunctiveQuery) -> dict[str, float]:
    """Closed-form exponents when all relations have equal size.

    Section 3.1: with ``M_1 = ... = M_l``, an optimal solution of LP
    (10) is ``e_i = v*_i / tau*`` for an optimal fractional vertex cover
    ``v*``, and the load is ``M / p^{1/tau*}``.
    """
    cover = minimum_vertex_cover(query)
    tau = cover.total
    if tau <= 0:
        raise ValueError("query has no atoms")
    return {v: snap(w / tau) for v, w in cover.weights.items()}


def speedup_exponent(query: ConjunctiveQuery) -> float:
    """``1/tau*``: the equal-cardinality speedup exponent (Section 3.4)."""
    tau = minimum_vertex_cover(query).total
    return 1.0 / tau


def space_exponent_bound(query: ConjunctiveQuery) -> float:
    """``1 - 1/tau*``: the one-round space-exponent lower bound (Table 2)."""
    return 1.0 - speedup_exponent(query)


def integerize_shares(
    exponents: Mapping[str, float], p: int, tolerance: float = 1e-9
) -> dict[str, int]:
    """Round fractional shares ``p^{e_i}`` to integers with product <= p.

    Greedy water-filling: start from ``round(p^{e_i})`` clipped to the
    budget, then repeatedly increment the share with the largest
    remaining deficit ``p^{e_i} / share_i`` while the product stays
    within ``p``.  Variables with ``e_i = 0`` keep share 1.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    variables = list(exponents)
    target = {v: p ** max(0.0, exponents[v]) for v in variables}
    shares = {v: max(1, round(target[v])) for v in variables}

    def product() -> int:
        return math.prod(shares.values())

    # Shrink if rounding overshot the budget.
    while product() > p:
        over = [v for v in variables if shares[v] > 1]
        if not over:
            break
        worst = max(over, key=lambda v: shares[v] / target[v])
        shares[worst] -= 1

    # Grow shares that still have deficit, largest deficit first.
    grew = True
    while grew:
        grew = False
        candidates = sorted(
            (v for v in variables if target[v] / shares[v] > 1.0 + tolerance),
            key=lambda v: target[v] / shares[v],
            reverse=True,
        )
        for v in candidates:
            current = product()
            if current // shares[v] * (shares[v] + 1) <= p:
                shares[v] += 1
                grew = True
                break
    return shares
