"""The named query families used throughout the paper.

Table 2 of the paper analyses four families; Sections 3-5 add the
triangle query, the simple join, the star-of-paths query ``SP_k`` and
the complete-graph query ``K4``:

* ``C_k`` -- the length-``k`` cycle query (``C_3`` is the triangle),
* ``T_k`` -- the star query ``S_1(z, x_1), ..., S_k(z, x_k)``,
* ``L_k`` -- the length-``k`` chain (linear) query,
* ``B_{k,m}`` -- one relation for each ``m``-subset of ``k`` variables,
* ``SP_k`` -- Example 5.3: ``R_i(z, x_i), S_i(x_i, y_i)`` for ``i in [k]``,
* ``K4`` -- Section 2.2's complete graph on four variables.

All constructors produce :class:`~repro.core.query.ConjunctiveQuery`
instances with the paper's variable naming, so worked examples can be
compared literally against the text.
"""

from __future__ import annotations

import itertools

from repro.core.query import Atom, ConjunctiveQuery


def chain_query(k: int) -> ConjunctiveQuery:
    """``L_k(x_0, ..., x_k) = S_1(x_0, x_1), ..., S_k(x_{k-1}, x_k)``."""
    if k < 1:
        raise ValueError("chain query needs k >= 1")
    atoms = tuple(
        Atom(f"S{j}", (f"x{j - 1}", f"x{j}")) for j in range(1, k + 1)
    )
    return ConjunctiveQuery(atoms, name=f"L{k}")


def cycle_query(k: int) -> ConjunctiveQuery:
    """``C_k(x_1, ..., x_k) = /\\_j S_j(x_j, x_{(j mod k)+1})`` (k >= 3)."""
    if k < 3:
        raise ValueError("cycle query needs k >= 3")
    atoms = tuple(
        Atom(f"S{j}", (f"x{j}", f"x{(j % k) + 1}")) for j in range(1, k + 1)
    )
    return ConjunctiveQuery(atoms, name=f"C{k}")


def triangle_query() -> ConjunctiveQuery:
    """The triangle query ``C_3 = S1(x1,x2), S2(x2,x3), S3(x3,x1)``."""
    return cycle_query(3)


def star_query(k: int) -> ConjunctiveQuery:
    """``T_k(z, x_1, ..., x_k) = /\\_j S_j(z, x_j)`` (k >= 1).

    ``T_2`` is the simple join of Example 4.1 up to variable naming.
    """
    if k < 1:
        raise ValueError("star query needs k >= 1")
    atoms = tuple(Atom(f"S{j}", ("z", f"x{j}")) for j in range(1, k + 1))
    return ConjunctiveQuery(atoms, name=f"T{k}")


def simple_join_query() -> ConjunctiveQuery:
    """Example 4.1: ``q(x, y, z) = S1(x, z), S2(y, z)``."""
    atoms = (Atom("S1", ("x", "z")), Atom("S2", ("y", "z")))
    return ConjunctiveQuery(atoms, name="join")


def binom_query(k: int, m: int) -> ConjunctiveQuery:
    """``B_{k,m}``: one relation per ``m``-subset of ``k`` variables.

    Table 2's last row: the query has ``binom(k, m)`` atoms ``S_I(x_I)``,
    share exponents ``1/k`` each, ``tau* = k/m`` and one-round space
    exponent lower bound ``1 - m/k``.
    """
    if not 1 <= m <= k:
        raise ValueError("binom query needs 1 <= m <= k")
    atoms = []
    for index, subset in enumerate(itertools.combinations(range(1, k + 1), m), 1):
        variables = tuple(f"x{i}" for i in subset)
        label = "_".join(str(i) for i in subset)
        atoms.append(Atom(f"S{label}", variables))
        del index
    return ConjunctiveQuery(tuple(atoms), name=f"B{k}_{m}")


def spk_query(k: int) -> ConjunctiveQuery:
    """Example 5.3: ``SP_k = /\\_i R_i(z, x_i), S_i(x_i, y_i)``.

    ``tau*(SP_k) = k`` so one round needs load ``O(M/p^{1/k})``, yet a
    2-round plan achieves ``O(M/p)``.
    """
    if k < 1:
        raise ValueError("SP query needs k >= 1")
    atoms = []
    for i in range(1, k + 1):
        atoms.append(Atom(f"R{i}", ("z", f"x{i}")))
        atoms.append(Atom(f"S{i}", (f"x{i}", f"y{i}")))
    return ConjunctiveQuery(tuple(atoms), name=f"SP{k}")


def k4_query() -> ConjunctiveQuery:
    """Section 2.2's ``K4``: the complete graph on ``x1..x4``.

    ``chi(K4) = 12 - 4 - 6 + 1 = 3``.
    """
    atoms = (
        Atom("S1", ("x1", "x2")),
        Atom("S2", ("x1", "x3")),
        Atom("S3", ("x2", "x3")),
        Atom("S4", ("x1", "x4")),
        Atom("S5", ("x2", "x4")),
        Atom("S6", ("x3", "x4")),
    )
    return ConjunctiveQuery(atoms, name="K4")


def cartesian_product_query(k: int, arity: int = 1) -> ConjunctiveQuery:
    """``S_1(bar x_1) x ... x S_k(bar x_k)`` on disjoint variables.

    The residual query of a star query at a heavy hitter (Section 4.2.1)
    is exactly the ``arity=1`` case.
    """
    if k < 1:
        raise ValueError("cartesian product needs k >= 1")
    atoms = tuple(
        Atom(f"S{j}", tuple(f"x{j}_{i}" for i in range(arity)))
        for j in range(1, k + 1)
    )
    return ConjunctiveQuery(atoms, name=f"CP{k}")
