"""Core query representation and fractional-combinatorics machinery.

This subpackage implements Section 2 of Beame, Koutris, Suciu,
"Communication Cost in Parallel Query Processing": full conjunctive
queries without self-joins, their hypergraphs, the characteristic
:math:`\\chi(q)`, contraction :math:`q/M`, fractional edge packings and
covers, the share-exponent linear programs of Sections 3.1 and 4.1, and
the Friedgut/AGM output-size machinery of Sections 2.4 and 3.2.
"""

from repro.core.query import Atom, ConjunctiveQuery
from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    k4_query,
    simple_join_query,
    spk_query,
    star_query,
    triangle_query,
)
from repro.core.stats import Statistics
from repro.core.packing import (
    PackingSolution,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    maximum_edge_packing,
    minimum_edge_cover,
    minimum_vertex_cover,
    packing_polytope_vertices,
    is_edge_packing,
    is_edge_cover,
    is_tight,
    saturates,
)
from repro.core.shares import (
    ShareSolution,
    equal_size_share_exponents,
    integerize_shares,
    share_exponents,
    skew_oblivious_share_exponents,
)
from repro.core.friedgut import (
    agm_bound,
    expected_output_size,
    friedgut_lhs,
    friedgut_rhs,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Statistics",
    "binom_query",
    "chain_query",
    "cycle_query",
    "k4_query",
    "simple_join_query",
    "spk_query",
    "star_query",
    "triangle_query",
    "PackingSolution",
    "fractional_edge_cover_number",
    "fractional_vertex_cover_number",
    "maximum_edge_packing",
    "minimum_edge_cover",
    "minimum_vertex_cover",
    "packing_polytope_vertices",
    "is_edge_packing",
    "is_edge_cover",
    "is_tight",
    "saturates",
    "ShareSolution",
    "equal_size_share_exponents",
    "integerize_shares",
    "share_exponents",
    "skew_oblivious_share_exponents",
    "agm_bound",
    "expected_output_size",
    "friedgut_lhs",
    "friedgut_rhs",
]
