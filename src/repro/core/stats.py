"""Cardinality statistics ``m`` / bit-size statistics ``M`` (Section 3).

The paper measures relations both in tuples (``m_j = |S_j|``) and in
bits (``M_j = a_j * m_j * log n``, where ``n`` is the domain size).
:class:`Statistics` bundles the two together with the query they
describe, so bound calculators and share LPs can ask for either view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.query import ConjunctiveQuery


def bits_per_value(domain_size: int) -> int:
    """Bits needed to encode one value of the domain ``[n]``.

    The paper writes ``log n``; we use ``ceil(log2 n)`` (min 1 bit) so
    the simulator's accounting is in whole bits.
    """
    if domain_size < 1:
        raise ValueError("domain size must be >= 1")
    return max(1, math.ceil(math.log2(domain_size))) if domain_size > 1 else 1


@dataclass(frozen=True)
class Statistics:
    """Per-relation cardinalities and the shared domain size.

    Parameters
    ----------
    query:
        The query whose relations the statistics describe.
    cardinalities:
        ``m_j`` for every relation of the query (tuples, not bits).
    domain_size:
        The domain ``[n]`` from which attribute values are drawn.
    """

    query: ConjunctiveQuery
    cardinalities: Mapping[str, int]
    domain_size: int

    _bits_value: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        missing = set(self.query.relation_names) - set(self.cardinalities)
        if missing:
            raise ValueError(f"missing cardinalities for {sorted(missing)}")
        for rel, m in self.cardinalities.items():
            if m < 0:
                raise ValueError(f"negative cardinality for {rel}")
        if self.domain_size < 1:
            raise ValueError("domain size must be >= 1")
        object.__setattr__(self, "_bits_value", bits_per_value(self.domain_size))

    @classmethod
    def uniform(
        cls, query: ConjunctiveQuery, m: int, domain_size: int | None = None
    ) -> "Statistics":
        """Equal cardinality ``m`` for every relation.

        Defaults the domain to ``m`` (the paper's equal-size lower
        bounds choose ``n = m`` for arity >= 2).
        """
        n = m if domain_size is None else domain_size
        return cls(query, {r: m for r in query.relation_names}, n)

    def tuples(self, relation: str) -> int:
        """``m_j``: number of tuples of ``relation``."""
        return int(self.cardinalities[relation])

    def bits(self, relation: str) -> float:
        """``M_j = a_j m_j log n``: size of ``relation`` in bits."""
        arity = self.query.arity(relation)
        return arity * self.tuples(relation) * self._bits_value

    def bits_per_tuple(self, relation: str) -> int:
        return self.query.arity(relation) * self._bits_value

    @property
    def value_bits(self) -> int:
        """Bits per single attribute value (``log n``)."""
        return self._bits_value

    @property
    def total_bits(self) -> float:
        """``|I| = sum_j M_j``: the input size in bits."""
        return sum(self.bits(r) for r in self.query.relation_names)

    @property
    def total_tuples(self) -> int:
        return sum(self.tuples(r) for r in self.query.relation_names)

    def bits_vector(self) -> dict[str, float]:
        return {r: self.bits(r) for r in self.query.relation_names}

    def tuples_vector(self) -> dict[str, int]:
        return {r: self.tuples(r) for r in self.query.relation_names}

    def scale(self, factor: float) -> "Statistics":
        """Statistics with every cardinality scaled by ``factor``."""
        return Statistics(
            self.query,
            {r: int(round(m * factor)) for r, m in self.cardinalities.items()},
            self.domain_size,
        )
