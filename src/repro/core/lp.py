"""A small typed wrapper around ``scipy.optimize.linprog``.

All linear programs in the paper (edge packings, vertex covers, the
share-exponent programs (10) and (18)) are tiny -- tens of variables --
so we always use the exact-ish HiGHS solver and post-process solutions
into plain Python floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

#: Tolerance used when checking feasibility / tightness of LP constraints.
TOLERANCE = 1e-9


class InfeasibleError(RuntimeError):
    """Raised when an LP that should always be feasible is not."""


@dataclass(frozen=True)
class LPSolution:
    """An optimal LP solution: variable values and objective value."""

    x: tuple[float, ...]
    value: float

    def __iter__(self):
        return iter(self.x)


def solve_lp(
    cost: Sequence[float],
    a_ub: Sequence[Sequence[float]] | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: Sequence[Sequence[float]] | None = None,
    b_eq: Sequence[float] | None = None,
    bounds: Sequence[tuple[float | None, float | None]] | None = None,
    maximize: bool = False,
) -> LPSolution:
    """Solve ``min/max cost . x`` subject to ``A_ub x <= b_ub, A_eq x = b_eq``.

    ``bounds`` defaults to ``x >= 0``.  Raises
    :class:`InfeasibleError` if the program is infeasible or unbounded.
    """
    c = np.asarray(cost, dtype=float)
    if maximize:
        c = -c
    result = linprog(
        c,
        A_ub=None if a_ub is None else np.asarray(a_ub, dtype=float),
        b_ub=None if b_ub is None else np.asarray(b_ub, dtype=float),
        A_eq=None if a_eq is None else np.asarray(a_eq, dtype=float),
        b_eq=None if b_eq is None else np.asarray(b_eq, dtype=float),
        bounds=bounds if bounds is not None else [(0, None)] * len(c),
        method="highs",
    )
    if not result.success:
        raise InfeasibleError(f"LP failed: {result.message}")
    value = float(result.fun)
    if maximize:
        value = -value
    return LPSolution(tuple(float(v) for v in result.x), value)


def snap(value: float, max_denominator: int = 64) -> float:
    """Snap a float to a nearby small rational if one is very close.

    LP vertices of the paper's packing polytopes have small rational
    coordinates (``0, 1/3, 1/2, 2/3, 1`` and the like); snapping removes
    solver noise so worked examples print exactly as in the paper.
    """
    frac = Fraction(value).limit_denominator(max_denominator)
    if abs(float(frac) - value) <= 1e-7:
        return float(frac)
    return value


def snap_vector(values: Sequence[float], max_denominator: int = 64) -> tuple[float, ...]:
    """Snap every entry of a vector (see :func:`snap`)."""
    return tuple(snap(v, max_denominator) for v in values)


def balanced_makespan(load: float, speeds: Sequence[float]) -> float:
    """Minimal makespan of splitting a divisible ``load`` across machines.

    The LP ``min max_s x_s / v_s  s.t.  sum x_s = load, x >= 0`` has the
    closed-form optimum ``load / sum(v_s)``, achieved by the
    speed-proportional split ``x_s = load * v_s / sum(v)`` (every
    machine finishes simultaneously).  This is the heterogeneous-cluster
    replacement for the homogeneous ``load / p``: with unit speeds the
    two coincide, and with mixed speeds it is strictly smaller than the
    uniform split's makespan ``load / (p * min v)``.
    """
    total = sum(speeds)
    if total <= 0:
        raise ValueError("need positive total speed")
    return load / total
