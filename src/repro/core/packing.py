"""Fractional edge packings, covers, and the packing polytope (Section 2.2).

A *fractional edge packing* of a query ``q`` assigns each atom ``S_j`` a
weight ``u_j >= 0`` with ``sum_{j : x_i in S_j} u_j <= 1`` for every
variable ``x_i`` (Eq. 2).  Its dual is the *fractional vertex cover*; at
optimality both equal the fractional vertex covering number ``tau*``.
Replacing ``<=`` with ``>=`` gives the *fractional edge cover*, whose
optimum is ``rho*`` (used by the AGM output bound).

Section 3.3 works with the extreme points ``pk(q)`` of the packing
polytope: the one-round load lower bound ``L_lower`` is a maximum of
``L(u, M, p)`` over these vertices, and Theorem 3.15 shows it coincides
with the HyperCube upper bound.  :func:`packing_polytope_vertices`
enumerates them exactly by solving the active-constraint linear systems.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.lp import TOLERANCE, snap_vector, solve_lp
from repro.core.query import ConjunctiveQuery


@dataclass(frozen=True)
class PackingSolution:
    """An (optimal) weighting of atoms or variables with its total."""

    weights: dict[str, float]
    total: float

    def weight_vector(self, order: tuple[str, ...]) -> tuple[float, ...]:
        return tuple(self.weights[name] for name in order)


def _incidence(query: ConjunctiveQuery) -> tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]:
    """0/1 matrix A with ``A[i, j] = 1`` iff variable ``i`` occurs in atom ``j``."""
    variables = query.variables
    relations = query.relation_names
    a = np.zeros((len(variables), len(relations)), dtype=float)
    var_index = {v: i for i, v in enumerate(variables)}
    for j, atom in enumerate(query.atoms):
        for v in atom.variable_set:
            a[var_index[v], j] = 1.0
    return a, variables, relations


def maximum_edge_packing(query: ConjunctiveQuery) -> PackingSolution:
    """An optimal fractional edge packing; its total is ``tau*(q)``."""
    a, _variables, relations = _incidence(query)
    if not relations:
        return PackingSolution({}, 0.0)
    sol = solve_lp(
        cost=[1.0] * len(relations),
        a_ub=a,
        b_ub=[1.0] * a.shape[0],
        maximize=True,
    )
    weights = dict(zip(relations, snap_vector(sol.x)))
    return PackingSolution(weights, sum(weights.values()))


def minimum_vertex_cover(
    query: ConjunctiveQuery, balanced: bool = True
) -> PackingSolution:
    """An optimal fractional vertex cover; its total is ``tau*(q)``.

    With ``balanced=True`` (the default) a secondary LP breaks ties
    among the optimal covers by minimizing the largest weight.  This
    picks the symmetric solution for symmetric queries -- e.g. all
    ``v_i = 1/2`` for even cycles -- which is the solution Table 2
    tabulates (share exponents ``e_i = v_i / tau*``).
    """
    a, variables, _relations = _incidence(query)
    if not variables:
        return PackingSolution({}, 0.0)
    k, ell = a.shape
    # Constraints: for each atom j, sum_{i in S_j} v_i >= 1  <=>  -A^T v <= -1.
    sol = solve_lp(
        cost=[1.0] * k,
        a_ub=-a.T,
        b_ub=[-1.0] * ell,
    )
    tau = sol.value
    if balanced:
        # Decision vector (v_1..v_k, t): minimize t subject to optimality
        # (sum v_i <= tau*), the cover constraints, and v_i <= t.
        a_ub = [[0.0] * k + [0.0]]
        a_ub[0][:k] = [1.0] * k
        b_ub = [tau + 1e-9]
        for j in range(ell):
            a_ub.append(list(-a.T[j]) + [0.0])
            b_ub.append(-1.0)
        for i in range(k):
            row = [0.0] * (k + 1)
            row[i] = 1.0
            row[k] = -1.0
            a_ub.append(row)
            b_ub.append(0.0)
        sol2 = solve_lp([0.0] * k + [1.0], a_ub=a_ub, b_ub=b_ub)
        weights = dict(zip(variables, snap_vector(sol2.x[:k])))
    else:
        weights = dict(zip(variables, snap_vector(sol.x)))
    return PackingSolution(weights, sum(weights.values()))


def minimum_edge_cover(query: ConjunctiveQuery) -> PackingSolution:
    """An optimal fractional edge cover; its total is ``rho*(q)``.

    Requires every variable to occur in some atom (always true for
    queries without isolated variables).
    """
    if query.isolated_variables:
        raise ValueError("edge cover undefined with isolated variables")
    a, _variables, relations = _incidence(query)
    sol = solve_lp(
        cost=[1.0] * len(relations),
        a_ub=-a,
        b_ub=[-1.0] * a.shape[0],
    )
    weights = dict(zip(relations, snap_vector(sol.x)))
    return PackingSolution(weights, sum(weights.values()))


def fractional_vertex_cover_number(query: ConjunctiveQuery) -> float:
    """``tau*(q)``: the optimal packing/vertex-cover value."""
    return maximum_edge_packing(query).total


def fractional_edge_cover_number(query: ConjunctiveQuery) -> float:
    """``rho*(q)``: the optimal fractional edge cover value."""
    return minimum_edge_cover(query).total


def is_edge_packing(
    query: ConjunctiveQuery, weights: dict[str, float], tolerance: float = TOLERANCE
) -> bool:
    """Check feasibility of ``u`` for the packing constraints (Eq. 2)."""
    if any(weights.get(r, 0.0) < -tolerance for r in query.relation_names):
        return False
    for variable in query.variables:
        load = sum(
            weights.get(a.relation, 0.0) for a in query.atoms_of(variable)
        )
        if load > 1.0 + tolerance:
            return False
    return True


def is_edge_cover(
    query: ConjunctiveQuery, weights: dict[str, float], tolerance: float = TOLERANCE
) -> bool:
    """Check feasibility of ``u`` for the edge-cover constraints."""
    if any(weights.get(r, 0.0) < -tolerance for r in query.relation_names):
        return False
    for variable in query.variables:
        if variable in query.isolated_variables:
            continue
        load = sum(
            weights.get(a.relation, 0.0) for a in query.atoms_of(variable)
        )
        if load < 1.0 - tolerance:
            return False
    return True


def is_tight(
    query: ConjunctiveQuery, weights: dict[str, float], tolerance: float = TOLERANCE
) -> bool:
    """A solution is *tight* when every variable constraint holds with equality.

    Tight fractional edge packings coincide with tight fractional edge
    covers (Section 2.2).
    """
    for variable in query.variables:
        load = sum(
            weights.get(a.relation, 0.0) for a in query.atoms_of(variable)
        )
        if abs(load - 1.0) > tolerance:
            return False
    return True


def saturates(
    query: ConjunctiveQuery,
    weights: dict[str, float],
    variables: set[str] | frozenset[str],
    tolerance: float = TOLERANCE,
) -> bool:
    """Does the packing saturate every variable in ``variables``?

    Section 4.2.3: ``u`` saturates ``x_i`` when
    ``sum_{j : x_i in vars(S_j)} u_j >= 1``.
    """
    for variable in variables:
        load = sum(
            weights.get(a.relation, 0.0) for a in query.atoms_of(variable)
        )
        if load < 1.0 - tolerance:
            return False
    return True


def slack(query: ConjunctiveQuery, weights: dict[str, float]) -> dict[str, float]:
    """Per-variable slack ``1 - sum_{j: x_i in S_j} u_j`` of a packing.

    The slacks are the weights ``u'_i`` given to the fresh unary atoms
    ``T_i(x_i)`` in the extended query of Lemma 3.13.
    """
    out: dict[str, float] = {}
    for variable in query.variables:
        load = sum(
            weights.get(a.relation, 0.0) for a in query.atoms_of(variable)
        )
        out[variable] = 1.0 - load
    return out


def extended_query(
    query: ConjunctiveQuery, packing: dict[str, float], prefix: str = "T_"
) -> tuple[ConjunctiveQuery, dict[str, float]]:
    """Lemma 3.13's extended query and weights.

    Adds a fresh unary atom ``T_i(x_i)`` per variable with weight
    ``u'_i = 1 - sum_{j: x_i in S_j} u_j`` (the packing's slack).  The
    combined assignment ``(u, u')`` is simultaneously a *tight*
    fractional edge packing and a tight fractional edge cover of the
    extended query, and ``sum_j a_j u_j + sum_i u'_i = k`` -- the
    identities the one-round lower-bound proof rests on.
    """
    if not is_edge_packing(query, packing):
        raise ValueError("weights must form a fractional edge packing")
    from repro.core.query import Atom  # local import to avoid cycle noise

    slacks = slack(query, packing)
    atoms = list(query.atoms)
    weights = dict(packing)
    for variable in query.variables:
        name = f"{prefix}{variable}"
        if name in set(query.relation_names):
            raise ValueError(f"relation name collision on {name!r}")
        atoms.append(Atom(name, (variable,)))
        weights[name] = slacks[variable]
    extended = ConjunctiveQuery(tuple(atoms), name=f"{query.name or 'q'}+")
    return extended, weights


def packing_polytope_vertices(
    query: ConjunctiveQuery, max_atoms: int = 16
) -> tuple[dict[str, float], ...]:
    """All extreme points ``pk(q)`` of the edge-packing polytope.

    Enumerates every choice of ``l`` active constraints among the ``k``
    variable constraints and ``l`` non-negativity constraints, solves
    the resulting square system and keeps feasible, distinct solutions
    (Section 3.3: each vertex arises this way).  The all-zero vertex is
    always included.  Exponential in ``l``; guarded by ``max_atoms``.
    """
    relations = query.relation_names
    num_atoms = len(relations)
    if num_atoms > max_atoms:
        raise ValueError(
            f"refusing vertex enumeration for {num_atoms} atoms (> {max_atoms})"
        )
    a, _variables, _ = _incidence(query)
    num_vars = a.shape[0]

    rows: list[np.ndarray] = [a[i] for i in range(num_vars)]
    rows += [np.eye(num_atoms)[j] for j in range(num_atoms)]
    rhs = np.array([1.0] * num_vars + [0.0] * num_atoms)

    seen: set[tuple[float, ...]] = set()
    vertices: list[dict[str, float]] = []
    for active in itertools.combinations(range(num_vars + num_atoms), num_atoms):
        system = np.array([rows[i] for i in active])
        target = np.array([rhs[i] for i in active])
        if abs(np.linalg.det(system)) < 1e-12:
            continue
        u = np.linalg.solve(system, target)
        if (u < -1e-9).any():
            continue
        if (a @ u > 1.0 + 1e-9).any():
            continue
        u = np.asarray(snap_vector(u))
        key = tuple(round(float(x), 9) for x in u)
        if key in seen:
            continue
        seen.add(key)
        vertices.append(dict(zip(relations, (float(x) for x in u))))
    vertices.sort(key=lambda w: tuple(-w[r] for r in relations))
    return tuple(vertices)
