"""Full conjunctive queries and their hypergraph structure (paper Section 2.2).

The paper studies *full conjunctive queries without self-joins*

.. math::  q(x_1, \\ldots, x_k) = S_1(\\bar x_1), \\ldots, S_\\ell(\\bar x_\\ell)

A query is *full* when every body variable appears in the head, and
*self-join free* when every relation symbol occurs in exactly one atom.
Both restrictions are enforced by :class:`ConjunctiveQuery` (fullness is
automatic because we define the head to be all variables).

The module implements the structural notions the paper's bounds are
phrased in:

* the query hypergraph (one node per variable, one hyperedge per atom),
* connected components and connectivity,
* the *characteristic* :math:`\\chi(q) = a - k - \\ell + c` (Section 2.2)
  together with the contraction operation :math:`q/M` of Lemma 2.1,
* tree-likeness (Definition 2.2: connected and :math:`\\chi(q) = 0`),
* radius and diameter of the hypergraph (Section 5.1 / 5.3).

Contraction can merge an entire connected component into a single
vertex that is no longer covered by any remaining atom.  Such merged
vertices are retained as *isolated variables* so that the identity
:math:`\\chi(q/M) = \\chi(q) - \\chi(M)` (Lemma 2.1(b)) holds exactly; they
count as variables and as singleton connected components.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class Atom:
    """A relational atom ``S(x, y, ...)``.

    ``relation`` is the relation symbol (unique per query, since queries
    are self-join free) and ``variables`` the argument list.  Repeated
    variables inside one atom are permitted; they arise naturally from
    contraction (e.g. contracting ``x2`` into ``x1`` in ``S(x1, x2)``
    yields ``S(x1, x1)``).  The *arity* counts positions, the *variable
    set* counts distinct variables.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("atom needs a non-empty relation name")
        if not self.variables:
            raise ValueError(f"atom {self.relation} needs at least one variable")
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def arity(self) -> int:
        """Number of argument positions ``a_j``."""
        return len(self.variables)

    @property
    def variable_set(self) -> frozenset[str]:
        """``vars(S_j)``: the distinct variables of the atom."""
        return frozenset(self.variables)

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Return a copy with variables substituted through ``mapping``."""
        return Atom(self.relation, tuple(mapping.get(v, v) for v in self.variables))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A full conjunctive query without self-joins.

    Parameters
    ----------
    atoms:
        The body atoms.  Relation names must be pairwise distinct
        (self-join freeness); violating this raises ``ValueError``.
    name:
        Optional display name (``"C3"``, ``"L5"``, ...).
    isolated_variables:
        Variables not covered by any atom.  Ordinary queries never have
        these; they appear only as the residue of contracting a whole
        connected component (see module docstring).
    """

    atoms: tuple[Atom, ...]
    name: str = ""
    isolated_variables: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.isolated_variables, frozenset):
            object.__setattr__(
                self, "isolated_variables", frozenset(self.isolated_variables)
            )
        names = [a.relation for a in self.atoms]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"self-joins are not supported (duplicate relations: {dupes}); "
                "rename repeated occurrences apart (paper Section 2.2, fn. 2)"
            )
        covered = {v for a in self.atoms for v in a.variables}
        overlap = covered & self.isolated_variables
        if overlap:
            raise ValueError(
                f"isolated variables {sorted(overlap)} also occur in atoms"
            )

    # ----------------------------------------------------------------- basics

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables in first-occurrence order (isolated ones last)."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            for v in atom.variables:
                seen.setdefault(v, None)
        for v in sorted(self.isolated_variables):
            seen.setdefault(v, None)
        return tuple(seen)

    @property
    def num_variables(self) -> int:
        """``k``: number of distinct variables."""
        return len(self.variables)

    @property
    def num_atoms(self) -> int:
        """``l``: number of atoms."""
        return len(self.atoms)

    @property
    def total_arity(self) -> int:
        """``a = sum_j a_j``: total arity over all atoms."""
        return sum(a.arity for a in self.atoms)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(a.relation for a in self.atoms)

    def atom(self, relation: str) -> Atom:
        """Look up the unique atom with the given relation name."""
        for a in self.atoms:
            if a.relation == relation:
                return a
        raise KeyError(f"no atom with relation {relation!r} in {self}")

    def atoms_of(self, variable: str) -> tuple[Atom, ...]:
        """``atoms(x_i)``: the atoms in which ``variable`` occurs."""
        return tuple(a for a in self.atoms if variable in a.variable_set)

    def arity(self, relation: str) -> int:
        return self.atom(relation).arity

    # ----------------------------------------------------- hypergraph structure

    def adjacency(self) -> dict[str, set[str]]:
        """Primal-graph adjacency: variables co-occurring in some atom."""
        adj: dict[str, set[str]] = {v: set() for v in self.variables}
        for atom in self.atoms:
            vs = list(atom.variable_set)
            for u, w in itertools.combinations(vs, 2):
                adj[u].add(w)
                adj[w].add(u)
        return adj

    def connected_components(self) -> tuple["ConjunctiveQuery", ...]:
        """The maximal connected subqueries, plus singleton isolated vars.

        Components are ordered by first occurrence of their variables.
        """
        adj = self.adjacency()
        seen: set[str] = set()
        var_groups: list[set[str]] = []
        for v in self.variables:
            if v in seen:
                continue
            group = _bfs_component(v, adj)
            seen |= group
            var_groups.append(group)
        components = []
        for group in var_groups:
            atoms = tuple(a for a in self.atoms if a.variable_set <= group)
            isolated = frozenset(group & self.isolated_variables)
            components.append(
                ConjunctiveQuery(atoms, isolated_variables=isolated)
            )
        return tuple(components)

    @property
    def num_components(self) -> int:
        """``c``: number of connected components (isolated vars count)."""
        return len(self.connected_components())

    @property
    def is_connected(self) -> bool:
        return self.num_components == 1

    # ----------------------------------------------------------- characteristic

    @property
    def characteristic(self) -> int:
        """``chi(q) = a - k - l + c`` (paper Section 2.2).

        Lemma 2.1 shows ``chi(q) >= 0``, additivity over connected
        components, and ``chi(q/M) = chi(q) - chi(M)``.
        """
        return (
            self.total_arity
            - self.num_variables
            - self.num_atoms
            + self.num_components
        )

    @property
    def is_tree_like(self) -> bool:
        """Definition 2.2: connected and ``chi(q) == 0``."""
        return self.is_connected and self.characteristic == 0

    # -------------------------------------------------------------- operations

    def subquery(self, relations: Iterable[str], name: str = "") -> "ConjunctiveQuery":
        """The subquery induced by the given atom (relation) names."""
        wanted = set(relations)
        unknown = wanted - set(self.relation_names)
        if unknown:
            raise KeyError(f"unknown relations {sorted(unknown)} in {self}")
        atoms = tuple(a for a in self.atoms if a.relation in wanted)
        return ConjunctiveQuery(atoms, name=name)

    def contract(self, relations: Iterable[str], name: str = "") -> "ConjunctiveQuery":
        """``q/M``: contract the hyperedges in ``M`` (paper Section 2.2).

        Each atom in ``M`` has all its variables merged into a single
        vertex; atoms in ``M`` disappear, the remaining atoms have their
        variables rewritten to class representatives.  A merged class
        covered by no remaining atom survives as an isolated variable.
        """
        m_set = set(relations)
        unknown = m_set - set(self.relation_names)
        if unknown:
            raise KeyError(f"unknown relations {sorted(unknown)} in {self}")

        order = {v: i for i, v in enumerate(self.variables)}
        parent: dict[str, str] = {v: v for v in self.variables}

        def find(v: str) -> str:
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, parent[v]
            return root

        def union(u: str, w: str) -> None:
            ru, rw = find(u), find(w)
            if ru == rw:
                return
            # Keep the earliest-occurring variable as the representative.
            if order[ru] <= order[rw]:
                parent[rw] = ru
            else:
                parent[ru] = rw

        for atom in self.atoms:
            if atom.relation in m_set:
                vs = list(atom.variable_set)
                for other in vs[1:]:
                    union(vs[0], other)

        mapping = {v: find(v) for v in self.variables}
        remaining = tuple(
            a.rename(mapping) for a in self.atoms if a.relation not in m_set
        )
        covered = {v for a in remaining for v in a.variables}
        all_classes = {find(v) for v in self.variables}
        isolated = frozenset(all_classes - covered)
        return ConjunctiveQuery(remaining, name=name, isolated_variables=isolated)

    def rename_relations(self, mapping: Mapping[str, str]) -> "ConjunctiveQuery":
        """Rename relation symbols (used when instantiating view plans)."""
        atoms = tuple(
            Atom(mapping.get(a.relation, a.relation), a.variables) for a in self.atoms
        )
        return ConjunctiveQuery(atoms, name=self.name,
                                isolated_variables=self.isolated_variables)

    def rename_variables(self, mapping: Mapping[str, str]) -> "ConjunctiveQuery":
        atoms = tuple(a.rename(mapping) for a in self.atoms)
        isolated = frozenset(mapping.get(v, v) for v in self.isolated_variables)
        return ConjunctiveQuery(atoms, name=self.name, isolated_variables=isolated)

    # ------------------------------------------------------- metric structure

    def eccentricities(self) -> dict[str, int]:
        """Hypergraph eccentricity of every variable (connected queries)."""
        if not self.is_connected:
            raise ValueError("eccentricities are defined for connected queries")
        adj = self.adjacency()
        return {v: _max_bfs_distance(v, adj) for v in self.variables}

    @property
    def radius(self) -> int:
        """``rad(q) = min_u max_v d(u, v)`` (paper Section 5.1)."""
        return min(self.eccentricities().values())

    @property
    def diameter(self) -> int:
        """``diam(q) = max_{u,v} d(u, v)`` (paper Section 5.3)."""
        return max(self.eccentricities().values())

    def center(self) -> str:
        """A variable of minimum eccentricity (deterministic tie-break)."""
        ecc = self.eccentricities()
        radius = min(ecc.values())
        for v in self.variables:  # first-occurrence order
            if ecc[v] == radius:
                return v
        raise AssertionError("unreachable: connected query has a center")

    def distances_from(self, source: str) -> dict[str, int]:
        """BFS distances in the primal graph from ``source``."""
        if source not in set(self.variables):
            raise KeyError(f"unknown variable {source!r}")
        return _bfs_distances(source, self.adjacency())

    # ----------------------------------------------------- subquery enumeration

    def connected_subqueries(
        self, min_atoms: int = 1, max_atoms: int | None = None
    ) -> Iterator["ConjunctiveQuery"]:
        """Enumerate connected subqueries (sets of atoms) of ``q``.

        Connectivity is with respect to the subquery's own hypergraph.
        Used by the multi-round machinery (Section 5.2: the classes
        ``C(q)``, ``C_eps(q)`` and ``S_eps(q)``).  Exponential in the
        number of atoms, which is fine for the paper's query families.
        """
        if max_atoms is None:
            max_atoms = self.num_atoms
        names = list(self.relation_names)
        atom_vars = {a.relation: a.variable_set for a in self.atoms}
        # Grow connected sets via BFS over the "atom adjacency" graph.
        atom_adj: dict[str, set[str]] = {n: set() for n in names}
        for a, b in itertools.combinations(self.atoms, 2):
            if a.variable_set & b.variable_set:
                atom_adj[a.relation].add(b.relation)
                atom_adj[b.relation].add(a.relation)
        emitted: set[frozenset[str]] = set()
        frontier: deque[frozenset[str]] = deque(frozenset([n]) for n in names)
        while frontier:
            group = frontier.popleft()
            if group in emitted:
                continue
            emitted.add(group)
            if len(group) < max_atoms:
                neighbours = set().union(*(atom_adj[n] for n in group)) - group
                for n in neighbours:
                    candidate = group | {n}
                    if candidate not in emitted:
                        frontier.append(candidate)
            if len(group) >= min_atoms:
                yield self.subquery(sorted(group))
        # A single isolated variable forms no subquery: subqueries are atom sets.
        del atom_vars

    # ------------------------------------------------------------------ dunder

    def __str__(self) -> str:
        label = self.name or "q"
        body = ", ".join(str(a) for a in self.atoms)
        head = ", ".join(self.variables)
        return f"{label}({head}) :- {body}"

    def __len__(self) -> int:
        return self.num_atoms


def _bfs_component(start: str, adj: Mapping[str, set[str]]) -> set[str]:
    seen = {start}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


def _bfs_distances(start: str, adj: Mapping[str, set[str]]) -> dict[str, int]:
    dist = {start: 0}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for w in adj[v]:
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def _max_bfs_distance(start: str, adj: Mapping[str, set[str]]) -> int:
    dist = _bfs_distances(start, adj)
    if len(dist) != len(adj):
        raise ValueError("graph is not connected")
    return max(dist.values())


def variables_in_order(atoms: Sequence[Atom]) -> tuple[str, ...]:
    """First-occurrence variable order over a sequence of atoms."""
    seen: dict[str, None] = {}
    for atom in atoms:
        for v in atom.variables:
            seen.setdefault(v, None)
    return tuple(seen)
