"""Friedgut's inequality, the AGM bound, and expected output sizes.

Section 2.4 states Friedgut's inequality (Eq. 7): for any fractional
edge *cover* ``u`` of the query hypergraph and non-negative weights
``w_j`` on potential tuples,

.. math::
    \\sum_{a \\in [n]^k} \\prod_j w_j(a_j)
    \\le \\prod_j \\Big( \\sum_{a_j} w_j(a_j)^{1/u_j} \\Big)^{u_j}

with the convention ``lim_{u -> 0} (sum w^{1/u})^u = max w``.  Taking
0/1 weights yields the AGM output-size bound
``|q(I)| <= prod_j |S_j|^{u_j}``; the tightest choice of ``u`` is the
minimum-weight fractional edge cover (:func:`agm_bound`).

Lemma 3.6 gives the expected output size over the matching probability
space: ``E[|q(I)|] = n^{k-a} * prod_j m_j``.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.lp import solve_lp
from repro.core.packing import _incidence, is_edge_cover
from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics

#: Weight maps are sparse: absent tuples have weight zero.
WeightMap = Mapping[tuple[int, ...], float]


def friedgut_lhs(
    query: ConjunctiveQuery, weights: Mapping[str, WeightMap], n: int
) -> float:
    """Left-hand side of Eq. (7): ``sum_{a in [n]^k} prod_j w_j(a_j)``.

    Enumerates variable assignments by backtracking, pruning any branch
    where a fully-bound atom already has weight zero.  Intended for the
    small domains used in tests and benches.
    """
    variables = list(query.variables)
    var_pos = {v: i for i, v in enumerate(variables)}
    # For each atom, the index of the variable at which it becomes fully bound.
    ready_at: dict[str, int] = {}
    for atom in query.atoms:
        ready_at[atom.relation] = max(var_pos[v] for v in atom.variable_set)

    assignment: dict[str, int] = {}

    def project(atom_vars: tuple[str, ...]) -> tuple[int, ...]:
        return tuple(assignment[v] for v in atom_vars)

    def recurse(index: int, partial: float) -> float:
        if index == len(variables):
            return partial
        total = 0.0
        v = variables[index]
        for value in range(n):
            assignment[v] = value
            factor = partial
            dead = False
            for atom in query.atoms:
                if ready_at[atom.relation] != index:
                    continue
                w = weights.get(atom.relation, {}).get(project(atom.variables), 0.0)
                if w == 0.0:
                    dead = True
                    break
                factor *= w
            if not dead:
                total += recurse(index + 1, factor)
        del assignment[v]
        return total

    return recurse(0, 1.0)


def friedgut_rhs(
    query: ConjunctiveQuery,
    cover: Mapping[str, float],
    weights: Mapping[str, WeightMap],
    tolerance: float = 1e-9,
) -> float:
    """Right-hand side of Eq. (7) for a fractional edge cover ``u``.

    ``u_j = 0`` contributes ``max_a w_j(a)`` (the limit of the power
    mean); raises ``ValueError`` when ``u`` is not an edge cover.
    """
    if not is_edge_cover(query, dict(cover), tolerance=tolerance):
        raise ValueError("weights must form a fractional edge cover")
    product = 1.0
    for atom in query.atoms:
        u = cover.get(atom.relation, 0.0)
        w = weights.get(atom.relation, {})
        values = [x for x in w.values() if x > 0.0]
        if not values:
            return 0.0
        if u <= tolerance:
            product *= max(values)
        else:
            product *= sum(x ** (1.0 / u) for x in values) ** u
    return product


def agm_bound(
    query: ConjunctiveQuery, cardinalities: Mapping[str, int]
) -> float:
    """The AGM output bound ``min_u prod_j m_j^{u_j}`` over edge covers.

    Solved as an LP in log space: minimize ``sum_j u_j ln m_j`` subject
    to the cover constraints.  Relations with ``m_j = 0`` force an empty
    output, so the bound is 0.
    """
    relations = query.relation_names
    if any(cardinalities[r] == 0 for r in relations):
        return 0.0
    a, _variables, _ = _incidence(query)
    log_m = [math.log(max(1, cardinalities[r])) for r in relations]
    sol = solve_lp(cost=log_m, a_ub=-a, b_ub=[-1.0] * a.shape[0])
    return math.exp(sol.value)


def expected_output_size(stats: Statistics) -> float:
    """Lemma 3.6: ``E[|q(I)|] = n^{k-a} * prod_j m_j`` over matchings."""
    query = stats.query
    n = stats.domain_size
    exponent = query.num_variables - query.total_arity
    product = 1.0
    for rel in query.relation_names:
        product *= stats.tuples(rel)
    return (float(n) ** exponent) * product


def expected_output_equal_sizes(query: ConjunctiveQuery, n: int) -> float:
    """Lemma 3.6 corollary: with ``n = m_1 = ... = m_l``,
    ``E[|q(I)|] = n^{c - chi(q)}``."""
    c = query.num_components
    return float(n) ** (c - query.characteristic)
