"""Skew-oblivious HyperCube (Section 4.1).

When nothing is known about the data beyond cardinalities, the best the
HyperCube algorithm can do against adversarial skew is choose shares by
LP (18), which optimizes the Corollary 4.3 worst case
``max_j M_j / min_{i in S_j} p_i``.  This module is a thin driver
wiring those shares into the standard HyperCube execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Literal

from repro.core.query import ConjunctiveQuery
from repro.core.shares import skew_oblivious_share_exponents
from repro.data.database import Database
from repro.hypercube.algorithm import HyperCubeResult, run_hypercube

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.config import MachineSpec, PoolKind
    from repro.storage.manager import StorageManager


def run_skew_oblivious_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    backend: Literal["tuples", "numpy"] | None = None,
    hash_method: str = "splitmix64",
    storage: "StorageManager | None" = None,
    chunk_rows: int | None = None,
    pool: "PoolKind | None" = None,
    max_workers: int | None = None,
    machines: "MachineSpec | None" = None,
) -> HyperCubeResult:
    """HyperCube with the LP (18) skew-resistant shares.

    For the simple join this balances all three variables at share
    ``p^{1/3}`` (worst-case load ``M/p^{1/3}`` instead of the vanilla
    hash join's ``Theta(M)`` under a single heavy hitter).  All
    execution knobs (``backend``, ``capacity_bits``, ``storage``, ...)
    forward unchanged to :func:`run_hypercube`.
    """
    stats = database.statistics(query)
    solution = skew_oblivious_share_exponents(query, stats, p)
    result = run_hypercube(
        query,
        database,
        p,
        exponents=solution.exponents,
        seed=seed,
        capacity_bits=capacity_bits,
        on_overflow=on_overflow,
        backend=backend,
        hash_method=hash_method,
        storage=storage,
        chunk_rows=chunk_rows,
        pool=pool,
        max_workers=max_workers,
        machines=machines,
    )
    result.strategy = "skew-oblivious"
    return result
