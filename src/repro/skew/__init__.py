"""Skew handling: detection, skew-aware algorithms, and skew lower bounds.

Section 4 of the paper studies one-round computation when the data has
*heavy hitters* -- values whose frequency exceeds a threshold such as
``m_j / p``.  This subpackage implements:

* heavy-hitter detection, exact and sample-based (the paper assumes the
  identities and approximate frequencies of heavy hitters are known to
  all servers; there can be at most ``p`` per relation);
* the *skew-oblivious* HyperCube with LP (18) shares (Section 4.1);
* the star-query algorithm of Section 4.2.1 (per-hitter server
  allocation proportional to the residual-query work);
* the triangle algorithm of Section 4.2.2 (light / two-heavy /
  one-heavy case split);
* the Theorem 4.4 lower bound ``L_x(u, M, p)`` for databases with known
  degree sequences.
"""

from repro.skew.heavy_hitters import (
    HitterStatistics,
    detect_heavy_hitters,
    sample_heavy_hitters,
    variable_frequencies,
)
from repro.skew.oblivious import run_skew_oblivious_hypercube
from repro.skew.star import StarSkewResult, run_star_skew, star_skew_load_bound
from repro.skew.triangle import (
    TriangleSkewResult,
    run_triangle_skew,
    triangle_skew_load_bound,
)
from repro.skew.bounds import (
    skewed_lower_bound,
    star_skew_lower_bound,
)

__all__ = [
    "HitterStatistics",
    "detect_heavy_hitters",
    "sample_heavy_hitters",
    "variable_frequencies",
    "run_skew_oblivious_hypercube",
    "StarSkewResult",
    "run_star_skew",
    "star_skew_load_bound",
    "TriangleSkewResult",
    "run_triangle_skew",
    "triangle_skew_load_bound",
    "skewed_lower_bound",
    "star_skew_lower_bound",
]
