"""Heavy-hitter detection (paper Section 4 preliminaries).

A value ``h`` is a heavy hitter of variable ``z`` in relation ``S_j``
when its frequency ``m_j(h) = |sigma_{z=h}(S_j)|`` reaches a threshold
(typically ``m_j / p``).  At most ``p`` values can be heavy per
relation, so "an O(p) amount of information can easily be stored" on
every server; the paper assumes it is known in advance and notes it
"can be easily obtained from small samples of the input", which
:func:`sample_heavy_hitters` demonstrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.data.relation import Relation


def detect_heavy_hitters(
    relation: Relation, position: int, threshold: float
) -> dict[int, int]:
    """Exact heavy hitters of one attribute: ``value -> frequency``."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return relation.heavy_hitters(position, threshold)


def sample_heavy_hitters(
    relation: Relation,
    position: int,
    threshold: float,
    sample_size: int,
    seed: int = 0,
    safety: float = 0.5,
) -> dict[int, float]:
    """Approximate heavy hitters from a uniform tuple sample.

    Frequencies are estimated as ``count_in_sample * m / sample_size``;
    values whose estimate reaches ``safety * threshold`` are reported
    (the slack keeps the false-negative rate low, at the cost of a few
    light values sneaking in -- which only wastes a constant factor of
    servers downstream).  Returns ``value -> estimated frequency``.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if sample_size < 1:
        raise ValueError("sample size must be >= 1")
    m = len(relation)
    if m == 0:
        return {}
    rng = random.Random(seed)
    universe = relation.sorted_tuples()
    sample = [universe[rng.randrange(m)] for _ in range(sample_size)]
    counts: dict[int, int] = {}
    for t in sample:
        counts[t[position]] = counts.get(t[position], 0) + 1
    scale = m / sample_size
    return {
        value: count * scale
        for value, count in counts.items()
        if count * scale >= safety * threshold
    }


def variable_frequencies(
    query: ConjunctiveQuery, database: Database, variable: str
) -> dict[int, int]:
    """Max frequency of each value of ``variable`` over the atoms using it.

    The triangle algorithm calls a value of ``x`` heavy when it is heavy
    "in at least one of the two relations they belong to"; this helper
    computes that max-frequency view for any variable.
    """
    out: dict[int, int] = {}
    for atom in query.atoms:
        if variable not in atom.variable_set:
            continue
        position = atom.variables.index(variable)
        for key, count in database[atom.relation].degrees((position,)).items():
            value = key[0]
            if count > out.get(value, 0):
                out[value] = count
    return out


@dataclass
class HitterStatistics:
    """Per-relation frequency vectors ``m_j(h)`` for one variable.

    This is the paper's *x-statistics* specialized to a single variable
    (the star query's ``z``): ``frequencies[rel][h] = m_rel(h)``.
    """

    query: ConjunctiveQuery
    variable: str
    frequencies: dict[str, dict[int, int]] = field(default_factory=dict)

    @classmethod
    def from_database(
        cls,
        query: ConjunctiveQuery,
        database: Database,
        variable: str,
        threshold_fraction: float,
        p: int,
    ) -> "HitterStatistics":
        """Collect hitters with ``m_j(h) >= threshold_fraction * m_j / p``."""
        if p < 1:
            raise ValueError("p must be >= 1")
        frequencies: dict[str, dict[int, int]] = {}
        for atom in query.atoms:
            if variable not in atom.variable_set:
                continue
            relation = database[atom.relation]
            threshold = threshold_fraction * len(relation) / p
            position = atom.variables.index(variable)
            frequencies[atom.relation] = detect_heavy_hitters(
                relation, position, max(threshold, 1e-12)
            )
        return cls(query, variable, frequencies)

    @property
    def hitters(self) -> tuple[int, ...]:
        """All values heavy in at least one relation (sorted)."""
        out: set[int] = set()
        for freq in self.frequencies.values():
            out |= set(freq)
        return tuple(sorted(out))

    def frequency(self, relation: str, value: int) -> int:
        return self.frequencies.get(relation, {}).get(value, 0)
