"""The skew-aware star-query algorithm (paper Section 4.2.1).

For ``q = S_1(z, x_1), ..., S_l(z, x_l)`` with known z-statistics:

* *light* tuples (no heavy-hitter ``z``) run the vanilla HyperCube with
  all shares on ``z`` (load ``O(max_j M_j / p)`` w.h.p.);
* each heavy hitter ``h`` spawns a *residual query* -- the Cartesian
  product ``S'_1(x_1) x ... x S'_l(x_l)`` of ``h``'s tuples -- computed
  on its own block of ``p_h`` servers, where ``p_h`` aggregates the
  paper's per-packing allocations
  ``p_{h,u} = ceil(p * prod_j M_j(h)^{u_j} / sum_{h'} prod_j M_j(h')^{u_j})``
  over the vertices ``u in pk(q_z) = {0,1}^l \\ 0``.

Total servers used: ``Theta(p)`` (the paper's ``(l+1) |pk(q_z)| p``
ceiling); the whole computation is a single communication round.  The
achieved load matches Eq. (20):

.. math::
    O\\Big(\\max_{I \\subseteq [l]}
    \\Big(\\sum_{h} \\prod_{j \\in I} M_j(h) / p\\Big)^{1/|I|}\\Big)
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.config import ExecutionSettings, MachineSpec
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import integerize_shares, share_exponents
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    grid_dimension_weights,
)
from repro.hypercube.algorithm import route_relation
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation
from repro.mpc.timing import PhaseTimer
from repro.parallel.pool import PoolKind, get_pool
from repro.parallel.tasks import (
    RouteTask,
    iter_array_sources,
    join_over_pool,
    route_over_pool,
)
from repro.skew.heavy_hitters import HitterStatistics
from repro.storage.manager import StorageManager


@dataclass
class StarSkewResult:
    """Output of one skew-aware star-query run.

    Satisfies the :class:`repro.session.RunResult` protocol, so star
    runs interchange with every other executor's result.
    """

    query: ConjunctiveQuery
    answers: set[tuple[int, ...]]
    report: LoadReport
    simulation: MPCSimulation
    servers_used: int
    heavy_hitters: tuple[int, ...]
    predicted_load_bits: float
    strategy: str = "skew-star"

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, k)`` int64 array."""
        return self.simulation.outputs_array(self.query.num_variables)

    @property
    def load_report(self) -> LoadReport:
        return self.report

    @property
    def rounds(self) -> int:
        return self.report.num_rounds

    @property
    def predicted_bits(self) -> float | None:
        return self.predicted_load_bits


def _star_center(query: ConjunctiveQuery) -> str:
    """The variable shared by all atoms of a binary star query."""
    if query.num_atoms < 1:
        raise ValueError("star query needs at least one atom")
    shared = set(query.atoms[0].variable_set)
    for atom in query.atoms:
        if atom.arity != 2:
            raise ValueError("star algorithm expects binary atoms S_j(z, x_j)")
        shared &= atom.variable_set
    if len(shared) == 2 and query.num_atoms == 1:
        # A single binary atom: any variable may serve as the center;
        # use the first by the paper's S_j(z, x_j) convention.
        center = query.atoms[0].variables[0]
    elif len(shared) == 1:
        center = next(iter(shared))
    else:
        raise ValueError(
            "star algorithm expects exactly one variable shared by all atoms"
        )
    others = [v for a in query.atoms for v in a.variable_set if v != center]
    if len(set(others)) != len(others):
        raise ValueError("star legs must use distinct variables")
    return center


def star_center(query: ConjunctiveQuery) -> str:
    """The center variable of a binary star query.

    Raises ``ValueError`` when the query is not a star (used by the
    planner to decide whether the Section 4.2.1 algorithm applies).
    """
    return _star_center(query)


def _heavy_allocation(
    relations: tuple[str, ...],
    bits_per_hitter: dict[int, dict[str, float]],
    p: int,
) -> dict[int, int]:
    """Servers per heavy hitter, summed over the packing vertices.

    ``bits_per_hitter[h][rel]`` is ``M_rel(h)``; only hitters with all
    residual relations non-empty appear (others produce no output).
    """
    allocation = {h: 0 for h in bits_per_hitter}
    ell = len(relations)
    for size in range(1, ell + 1):
        for subset in itertools.combinations(relations, size):
            denominator = sum(
                math.prod(bits_per_hitter[h][r] for r in subset)
                for h in bits_per_hitter
            )
            if denominator <= 0:
                continue
            for h in bits_per_hitter:
                numerator = math.prod(bits_per_hitter[h][r] for r in subset)
                allocation[h] += math.ceil(p * numerator / denominator)
    return allocation


def run_star_skew(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    backend: Literal["tuples", "numpy"] | None = None,
    hitters: HitterStatistics | None = None,
    *,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    hash_method: str = "splitmix64",
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
    pool: PoolKind | None = None,
    max_workers: int | None = None,
    machines: MachineSpec | None = None,
) -> StarSkewResult:
    """Run the Section 4.2.1 algorithm in one MPC round.

    Heavy hitters are detected exactly with the per-relation threshold
    ``m_j / p`` (the model assumes this information is available to
    every server).  Correctness is unconditional; the load bound is
    Eq. (20) plus the light-part ``O(max_j M_j / p)``.

    ``hitters`` accepts center-variable statistics a caller has already
    collected with the same ``m_j / p`` threshold (the planner's engine
    does), skipping the detection scan here; the result is identical to
    detecting in-place.

    ``backend="numpy"`` routes the *light* part columnar (whole
    relations as arrays through
    :func:`~repro.hypercube.algorithm.route_relation_arrays`, vectorized
    local joins on the light servers) -- bit-identical loads and
    answers; the per-hitter residual blocks are small by construction
    and stay on the tuple path.  ``backend=None`` follows the
    system-wide default (:func:`repro.config.set_default_backend`).

    ``capacity_bits`` imposes the same hard per-server per-round cap
    ``L`` that :func:`~repro.hypercube.algorithm.run_hypercube`
    supports, across the light grid *and* every per-hitter block.
    Because both backends route every part in canonical (sorted) order,
    a binding cap with ``on_overflow="drop"`` truncates the identical
    per-server prefix on either engine.

    ``storage`` (numpy backend only) streams the light part
    chunk-by-chunk and spills the light servers' fragments and outputs
    to the manager's chunked spools -- bit-identical loads and answers;
    the per-hitter heavy blocks are ``O(p)``-sized by construction and
    stay in memory.  ``chunk_rows`` sets the routing granularity alone.

    ``pool``/``max_workers`` fan the light part's columnar routing and
    per-server joins out over a worker pool (the heavy blocks are small
    by construction and stay serial); results merge deterministically,
    so answers and loads are bit-identical at any worker count.

    ``machines`` (a heterogeneous :class:`~repro.config.MachineSpec`)
    weights the light grid's center axis speed-proportionally -- the
    light part is one-dimensional on ``z``, so the weighting is exact --
    and applies per-server capacities across light and heavy servers
    (block servers take the spec's modular extension).  A uniform spec
    is bit-identical to ``machines=None``.

    A thin delegating wrapper over the shared run path of
    :mod:`repro.session`.
    """
    from repro.session import dispatch_run

    return dispatch_run(
        "skew-star",
        query,
        database,
        p,
        seed=seed,
        storage=storage,
        settings=ExecutionSettings(
            backend=backend,
            capacity_bits=capacity_bits,
            on_overflow=on_overflow,
            hash_method=hash_method,
            chunk_rows=chunk_rows,
            pool=pool,
            max_workers=max_workers,
            machines=machines,
        ),
        hitters=hitters,
    )


def _star_impl(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    *,
    seed: int,
    settings: ExecutionSettings,
    storage: StorageManager | None,
    hitters: HitterStatistics | None = None,
) -> StarSkewResult:
    """The star-algorithm core; ``settings`` arrives already resolved."""
    backend = settings.backend
    chunk_rows = settings.chunk_rows
    timer = PhaseTimer()
    pool = get_pool(settings.pool, settings.max_workers)
    if p < 2:
        raise ValueError("star algorithm needs p >= 2")
    with timer.phase("generate"):
        database.validate_for(query)
        center = _star_center(query)
        stats = database.statistics(query)
        if hitters is None:
            hitters = HitterStatistics.from_database(
                query, database, center, 1.0, p
            )
        elif hitters.variable != center:
            raise ValueError(
                f"hitter statistics describe {hitters.variable!r}, "
                f"not the star center {center!r}"
            )
        heavy_values = set(hitters.hitters)

        leg_of = {
            atom.relation: next(v for v in atom.variables if v != center)
            for atom in query.atoms
        }
        center_pos = {
            atom.relation: atom.variables.index(center)
            for atom in query.atoms
        }

        # Residual bit sizes M_j(h) (arity-1 projections of h's tuples).
        bits_per_hitter: dict[int, dict[str, float]] = {}
        for h in heavy_values:
            per_rel = {}
            for atom in query.atoms:
                freq = database[atom.relation].degree(
                    (center_pos[atom.relation],), (h,)
                )
                per_rel[atom.relation] = freq * stats.value_bits
            if all(v > 0 for v in per_rel.values()):
                bits_per_hitter[h] = per_rel
        allocation = _heavy_allocation(
            query.relation_names, bits_per_hitter, p
        )

    total_servers = p + sum(allocation.values())
    sim = MPCSimulation(
        total_servers,
        value_bits=stats.value_bits,
        capacity_bits=settings.capacity_bits,
        on_overflow=settings.on_overflow,
        storage=storage,
        timer=timer,
        machines=settings.machines,
    )
    family = HashFamily(seed, method=settings.hash_method)
    sim.begin_round()

    # ---- Light part: vanilla HyperCube with all shares on z. ----------
    dims = query.variables  # (z, x_1, ..., x_l) in head order
    light_shares = [p if v == center else 1 for v in dims]
    # The light grid is 1-D on the center axis, so speed-proportional
    # weighting is exact there.  The per-hitter heavy blocks below stay
    # unweighted: their servers are the modular extension past p, with
    # no per-block speed structure to exploit.
    light_weights = grid_dimension_weights(light_shares, settings.machines)
    light_grid = GridPartitioner(light_shares, family, weights=light_weights)
    heavy_sorted = tuple(int(h) for h in sorted(heavy_values))
    if backend == "numpy":
        # Filter-then-route per chunk (one task per chunk, fanned out
        # over the pool): filtering commutes with chunking, and results
        # merge in task order, so the light rows reach every server in
        # the same order as the monolithic serial route.
        def light_tasks():
            for atom in query.atoms:
                zpos = center_pos[atom.relation]
                for source in iter_array_sources(
                    database[atom.relation], chunk_rows
                ):
                    yield RouteTask(
                        tag=atom.relation,
                        source=source,
                        dimension_variables=tuple(dims),
                        atom_variables=tuple(atom.variables),
                        shares=tuple(light_shares),
                        family_seed=seed,
                        hash_method=settings.hash_method,
                        exclude=((zpos, heavy_sorted),),
                        weights=light_weights,
                    )

        with timer.phase("route"):
            route_over_pool(pool, sim, light_tasks(), timer)
    else:
        with timer.phase("route"):
            for atom in query.atoms:
                relation = database[atom.relation]
                zpos = center_pos[atom.relation]
                # Sorted order, matching the columnar (sorted-array)
                # route, so a binding capacity cap truncates the same
                # per-server prefix on both backends.
                light = [
                    t
                    for t in relation.sorted_tuples()
                    if t[zpos] not in heavy_values
                ]
                batches: dict[int, list[tuple[int, ...]]] = {}
                for server, t in route_relation(
                    light_grid, dims, atom.variables, light
                ):
                    batches.setdefault(server, []).append(t)
                for server, batch in batches.items():
                    sim.send(server, atom.relation, batch)

    # ---- Heavy part: one block and one residual query per hitter. -----
    residual_atoms = tuple(
        Atom(atom.relation, (leg_of[atom.relation],)) for atom in query.atoms
    )
    residual_query = ConjunctiveQuery(residual_atoms, name="residual")
    blocks: list[tuple[int, int, GridPartitioner]] = []  # (hitter, base, grid)
    base = p
    with timer.phase("route"):
        for h in sorted(bits_per_hitter):
            p_h = allocation[h]
            residual_fragments = {}
            residual_sizes = {}
            for atom in query.atoms:
                zpos = center_pos[atom.relation]
                values = {
                    (t[1 - zpos],)
                    for t in database[atom.relation]
                    if t[zpos] == h
                }
                residual_fragments[atom.relation] = values
                residual_sizes[atom.relation] = len(values)
            if p_h >= 2:
                residual_stats = Statistics(
                    residual_query, residual_sizes, database.domain_size
                )
                exponents = share_exponents(
                    residual_query, residual_stats, p_h
                ).exponents
                shares = integerize_shares(exponents, p_h)
            else:
                shares = {v: 1 for v in residual_query.variables}
            grid = GridPartitioner(
                [shares[v] for v in residual_query.variables],
                HashFamily(seed * 7919 + h + 1, method=settings.hash_method),
            )
            for atom in residual_atoms:
                batches = {}
                # Sorted for deterministic capacity truncation (set
                # iteration order must not decide which tuples drop).
                for server, t in route_relation(
                    grid,
                    residual_query.variables,
                    atom.variables,
                    sorted(residual_fragments[atom.relation]),
                ):
                    batches.setdefault(server, []).append(t)
                for server, batch in batches.items():
                    sim.send(base + server, atom.relation, batch)
            blocks.append((h, base, grid))
            base += p_h

    sim.end_round()

    # ---- Computation phase. -------------------------------------------
    head = query.variables
    leg_order = [leg_of[a.relation] for a in query.atoms]
    if backend == "numpy":
        # Light servers fan out over the pool; outputs merge in server
        # order, matching the serial loop.
        with timer.phase("join"):
            join_over_pool(
                pool,
                sim,
                query,
                range(p),
                timer=timer,
                clear=storage is not None,
            )
    else:
        with timer.phase("join"):
            for server in range(p):
                local = evaluate_on_fragments(query, sim.state(server))
                if local:
                    sim.output(server, local)
    with timer.phase("join"):
        for h, block_base, grid in blocks:
            for offset in range(grid.num_bins):
                local = evaluate_on_fragments(
                    residual_query, sim.state(block_base + offset)
                )
                if not local:
                    continue
                # Residual head order is (x_1, ..., x_l); rebuild the
                # star head.
                value_of = dict(zip(leg_order, [None] * len(leg_order)))
                outputs = []
                for t in local:
                    value_of = dict(zip(residual_query.variables, t))
                    value_of[center] = h
                    outputs.append(tuple(value_of[v] for v in head))
                sim.output(block_base + offset, outputs)

    timer.attach(sim.report)
    predicted = star_skew_load_bound(query, database, p)
    return StarSkewResult(
        query=query,
        answers=sim.outputs(),
        report=sim.report,
        simulation=sim,
        servers_used=total_servers,
        heavy_hitters=tuple(sorted(heavy_values)),
        predicted_load_bits=predicted,
    )


def star_skew_load_bound(
    query: ConjunctiveQuery, database: Database, p: int
) -> float:
    """Eq. (20) plus the light term, in bits.

    ``max(max_j M_j/p, max_I (sum_h prod_{j in I} M_j(h) / p)^{1/|I|})``
    where ``h`` ranges over the detected heavy hitters.
    """
    center = _star_center(query)
    stats = database.statistics(query)
    hitters = HitterStatistics.from_database(query, database, center, 1.0, p)
    return star_skew_load_bound_from_stats(query, stats, hitters, p)


def star_skew_load_bound_from_stats(
    query: ConjunctiveQuery,
    stats: Statistics,
    hitters: HitterStatistics,
    p: int,
) -> float:
    """Eq. (20) evaluated from statistics alone (no database access).

    Needs only the cardinalities ``M_j`` and the center-variable
    frequency vectors ``M_j(h)`` of :class:`HitterStatistics` --
    exactly the information the paper assumes every server knows in
    advance.  The planner's estimator
    (:func:`repro.planner.cost.star_cost`) prices the same terms under
    its sum-form server convention, so the two deliberately differ in
    per-term constants; this max-form bound matches the paper's
    statement verbatim.
    """
    bound = max(stats.bits(r) / p for r in query.relation_names)
    relations = query.relation_names
    heavy = hitters.hitters
    for size in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, size):
            total = 0.0
            for h in heavy:
                product = 1.0
                for r in subset:
                    product *= hitters.frequency(r, h) * 2 * stats.value_bits
                total += product
            if total > 0:
                bound = max(bound, (total / p) ** (1.0 / size))
    return bound
