"""The skew-aware triangle algorithm (paper Section 4.2.2).

Computes ``C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1)`` in one round under
arbitrary skew, by partitioning the *output* triangles according to how
many heavy values they contain:

* **Light** (every value has frequency below ``m/p^{1/3}``): vanilla
  HyperCube with shares ``p^{1/3}`` per variable -- load
  ``O~(M/p^{2/3})``.
* **Case 1** (at least two values with frequency >= ``m/p``): for each
  variable pair, broadcast the (at most ``p^2``) doubly-heavy tuples of
  their shared relation and hash-join the other two relations on the
  third variable -- load ``O(M/p)`` plus the broadcast.
* **Case 2** (exactly one value with frequency >= ``m/p^{1/3}``, the
  others below ``m/p``): each such hitter ``h`` of variable ``x`` gets
  its own grid of ``p_h >= p^{2/3}`` servers for the residual query
  ``R'(y), S(y,z), T'(z)``, with ``p_h`` boosted proportionally to
  ``M_R(h) M_T(h)`` (there are at most ``O(p^{1/3})`` such hitters, so
  the total stays ``Theta(p)``).

The combined load is the paper's

.. math::
    O\\Big(\\max\\Big(\\frac{M}{p^{2/3}},
    \\sqrt{\\frac{\\sum_h M_R(h) M_T(h)}{p}}, \\ldots \\Big)\\Big)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from repro.config import ExecutionSettings, MachineSpec
from repro.core.families import triangle_query
from repro.core.query import ConjunctiveQuery
from repro.core.shares import integerize_shares
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    grid_dimension_weights,
)
from repro.hypercube.algorithm import route_relation
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation
from repro.mpc.timing import PhaseTimer
from repro.parallel.pool import PoolKind, get_pool
from repro.parallel.tasks import (
    RouteTask,
    iter_array_sources,
    join_over_pool,
    route_over_pool,
)
from repro.skew.heavy_hitters import HitterStatistics, variable_frequencies
from repro.storage.manager import StorageManager


@dataclass
class TriangleSkewResult:
    """Output of one skew-aware triangle run.

    Satisfies the :class:`repro.session.RunResult` protocol, so
    triangle runs interchange with every other executor's result.
    """

    answers: set[tuple[int, ...]]
    report: LoadReport
    simulation: MPCSimulation
    servers_used: int
    heavy1: dict[str, set[int]]
    heavy2: dict[str, set[int]]
    predicted_load_bits: float
    strategy: str = "skew-triangle"

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, 3)`` int64 array."""
        return self.simulation.outputs_array(3)

    @property
    def load_report(self) -> LoadReport:
        return self.report

    @property
    def rounds(self) -> int:
        return self.report.num_rounds

    @property
    def predicted_bits(self) -> float | None:
        return self.predicted_load_bits


#: The triangle's structure: variable -> (successor relation providing
#: (x_i, x_{i+1}), predecessor relation providing (x_{i-1}, x_i),
#: middle relation joining the two neighbours).
_STRUCTURE = {
    "x1": ("S1", "S3", "S2"),
    "x2": ("S2", "S1", "S3"),
    "x3": ("S3", "S2", "S1"),
}
_PAIRS = (
    ("x1", "x2", "S1", "S2", "S3"),
    ("x2", "x3", "S2", "S3", "S1"),
    ("x3", "x1", "S3", "S1", "S2"),
)


def run_triangle_skew(
    database: Database,
    p: int,
    seed: int = 0,
    backend: Literal["tuples", "numpy"] | None = None,
    *,
    hitters: Mapping[str, HitterStatistics] | None = None,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    hash_method: str = "splitmix64",
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
    pool: PoolKind | None = None,
    max_workers: int | None = None,
    machines: MachineSpec | None = None,
) -> TriangleSkewResult:
    """Run the Section 4.2.2 algorithm in one MPC round.

    ``backend="numpy"`` routes the *light* block columnar (array
    routing through
    :func:`~repro.hypercube.algorithm.route_relation_arrays`, vectorized
    local joins on the light servers) -- bit-identical loads and
    answers.  The case-1/case-2 blocks handle the few heavy values and
    stay on the tuple path.  ``backend=None`` follows the system-wide
    default (:func:`repro.config.set_default_backend`).

    ``hitters`` accepts per-variable :class:`HitterStatistics` a caller
    has already collected at the exact ``m_j / p`` threshold (the
    planner's :class:`~repro.planner.statistics.DataStatistics` holds
    exactly this map), skipping the three full frequency scans here.
    With exact statistics the run is identical to scanning in-place:
    every value the scans would classify heavy sits above some
    relation's ``m_j / p`` threshold and therefore appears in the
    statistics with its exact max-frequency, and every absent value is
    light under every comparison the algorithm makes.

    ``capacity_bits``/``on_overflow`` impose the same hard per-server
    per-round cap ``L`` that
    :func:`~repro.hypercube.algorithm.run_hypercube` supports, across
    the light grid and the case-1/case-2 blocks; every part routes in
    canonical (sorted) order, so a binding ``"drop"`` cap truncates the
    identical per-server prefix on both backends.

    ``storage`` (numpy backend only) streams the light block
    chunk-by-chunk and spills the light servers' fragments and outputs
    to the manager's chunked spools; the case-1/case-2 blocks are
    bounded by the heavy-hitter structure and stay in memory.
    ``chunk_rows`` sets the routing granularity alone.

    ``pool``/``max_workers`` fan the light block's columnar routing and
    per-server joins out over a worker pool (the case-1/case-2 blocks
    stay serial); results merge deterministically, so answers and loads
    are bit-identical at any worker count.

    ``machines`` (a heterogeneous :class:`~repro.config.MachineSpec`)
    weights the light grid's axes speed-proportionally (a rank-1
    marginal approximation over the share cube) and applies per-server
    capacities across all blocks (case-1/case-2 servers take the spec's
    modular extension).  A uniform spec is bit-identical to
    ``machines=None``.

    A thin delegating wrapper over the shared run path of
    :mod:`repro.session`.
    """
    from repro.session import dispatch_run

    return dispatch_run(
        "skew-triangle",
        triangle_query(),
        database,
        p,
        seed=seed,
        storage=storage,
        settings=ExecutionSettings(
            backend=backend,
            capacity_bits=capacity_bits,
            on_overflow=on_overflow,
            hash_method=hash_method,
            chunk_rows=chunk_rows,
            pool=pool,
            max_workers=max_workers,
            machines=machines,
        ),
        hitters=hitters,
    )


def _frequencies_from_hitters(
    query: ConjunctiveQuery,
    hitters: Mapping[str, HitterStatistics],
) -> dict[str, dict[int, float]]:
    """Max-frequency views reconstructed from per-variable statistics.

    The executor's classification thresholds all sit at or above the
    detection threshold ``m_j / p``, so the thresholded vectors carry
    every comparison the algorithm makes (absent values are light).
    """
    freq: dict[str, dict[int, float]] = {}
    for variable in query.variables:
        stats_v = hitters.get(variable)
        if stats_v is None:
            raise ValueError(
                f"hitter statistics missing triangle variable {variable!r}"
            )
        if stats_v.variable != variable:
            raise ValueError(
                f"hitter statistics describe {stats_v.variable!r}, "
                f"not {variable!r}"
            )
        view: dict[int, float] = {}
        for counts in stats_v.frequencies.values():
            for value, count in counts.items():
                if count > view.get(value, 0):
                    view[value] = count
        freq[variable] = view
    return freq


def _triangle_impl(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    *,
    seed: int,
    settings: ExecutionSettings,
    storage: StorageManager | None,
    hitters: Mapping[str, HitterStatistics] | None = None,
) -> TriangleSkewResult:
    """The triangle core; ``settings`` arrives already resolved."""
    backend = settings.backend
    chunk_rows = settings.chunk_rows
    timer = PhaseTimer()
    pool = get_pool(settings.pool, settings.max_workers)
    if p < 2:
        raise ValueError("triangle algorithm needs p >= 2")
    if not is_triangle_query(query):
        raise ValueError("the Section 4.2.2 algorithm runs only C3")
    with timer.phase("generate"):
        database.validate_for(query)
        stats = database.statistics(query)
        m = max(stats.tuples(r) for r in query.relation_names)
        threshold1 = max(1.0, m / p)  # Case-1 heaviness
        threshold2 = max(1.0, m / p ** (1.0 / 3.0))  # Case-2 / light edge

        if hitters is None:
            freq = {
                v: variable_frequencies(query, database, v)
                for v in query.variables
            }
        else:
            freq = _frequencies_from_hitters(query, hitters)

        def f(variable: str, value: int) -> float:
            return freq[variable].get(value, 0)

        heavy1 = {
            v: {val for val, c in freq[v].items() if c >= threshold1}
            for v in query.variables
        }
        heavy2 = {
            v: {val for val, c in freq[v].items() if c >= threshold2}
            for v in query.variables
        }

        # ------------- Case-2 block planning. --------------------------
        case2_plan: list[tuple[str, int, list[int], list[int], int]] = []
        weights: dict[tuple[str, int], float] = {}
        for variable in query.variables:
            succ_rel, pred_rel, _mid = _STRUCTURE[variable]
            for h in sorted(heavy2[variable]):
                succ_var = _other_variable(query, succ_rel, variable)
                pred_var = _other_variable(query, pred_rel, variable)
                r_side = sorted(
                    {
                        t[1]
                        for t in database[succ_rel]
                        if t[0] == h and f(succ_var, t[1]) < threshold1
                    }
                )
                t_side = sorted(
                    {
                        t[0]
                        for t in database[pred_rel]
                        if t[1] == h and f(pred_var, t[0]) < threshold1
                    }
                )
                if not r_side or not t_side:
                    continue
                weights[(variable, h)] = len(r_side) * len(t_side)
                case2_plan.append((variable, h, r_side, t_side, 0))
        total_weight = sum(weights.values())
        base_block = math.ceil(p ** (2.0 / 3.0))
        planned = []
        for variable, h, r_side, t_side, _ in case2_plan:
            boost = 0
            if total_weight > 0:
                boost = math.ceil(p * weights[(variable, h)] / total_weight)
            planned.append(
                (variable, h, r_side, t_side, max(base_block, boost))
            )
        case2_plan = planned

    total_servers = p + 3 * p + sum(size for *_, size in case2_plan)
    sim = MPCSimulation(
        total_servers,
        value_bits=stats.value_bits,
        capacity_bits=settings.capacity_bits,
        on_overflow=settings.on_overflow,
        storage=storage,
        timer=timer,
        machines=settings.machines,
    )
    family = HashFamily(seed, method=settings.hash_method)
    sim.begin_round()

    # ---------------- Light block: vanilla HC on [0, p). ----------------
    dims = query.variables
    light_shares = integerize_shares({v: 1.0 / 3.0 for v in dims}, p)
    # Speed-proportional marginals over the share cube; the
    # case-1/case-2 blocks below stay unweighted (their servers are the
    # modular extension past p, chosen by heavy-hitter structure).
    light_weights = grid_dimension_weights(
        [light_shares[v] for v in dims], settings.machines
    )
    light_grid = GridPartitioner(
        [light_shares[v] for v in dims], family, weights=light_weights
    )
    if backend == "numpy":
        # Filter-then-route per chunk (one task per chunk, fanned out
        # over the pool): filtering commutes with chunking, and results
        # merge in task order, so light rows reach every server in the
        # same order as the monolithic serial route.
        def light_tasks():
            for atom in query.atoms:
                a, b = atom.variables
                exclude = tuple(
                    (position, tuple(int(v) for v in sorted(heavy2[var])))
                    for position, var in ((0, a), (1, b))
                )
                for source in iter_array_sources(
                    database[atom.relation], chunk_rows
                ):
                    yield RouteTask(
                        tag=atom.relation,
                        source=source,
                        dimension_variables=tuple(dims),
                        atom_variables=tuple(atom.variables),
                        shares=tuple(light_shares[v] for v in dims),
                        family_seed=seed,
                        hash_method=settings.hash_method,
                        exclude=exclude,
                        weights=light_weights,
                    )

        with timer.phase("route"):
            route_over_pool(pool, sim, light_tasks(), timer)
    else:
        with timer.phase("route"):
            for atom in query.atoms:
                a, b = atom.variables
                # Sorted order, matching the columnar (sorted-array)
                # route, so a binding capacity cap truncates the same
                # per-server prefix on both backends.
                light = [
                    t
                    for t in database[atom.relation].sorted_tuples()
                    if f(a, t[0]) < threshold2 and f(b, t[1]) < threshold2
                ]
                _route_block(sim, 0, light_grid, dims, atom, light)

    # ---------------- Case-1 blocks: one per variable pair. -------------
    case1_bases = {}
    with timer.phase("route"):
        for index, (va, vb, rel_ab, rel_bc, rel_ca) in enumerate(_PAIRS):
            block_base = p * (1 + index)
            case1_bases[(va, vb)] = block_base
            vc = next(v for v in dims if v not in (va, vb))
            grid = GridPartitioner(
                [p if v == vc else 1 for v in dims],
                HashFamily(seed * 31 + index + 1, method=settings.hash_method),
            )
            # Doubly-heavy tuples of the direct relation: broadcast.
            # (Sorted, like every block, for deterministic truncation.)
            doubly = [
                t
                for t in database[rel_ab].sorted_tuples()
                if f(va, t[0]) >= threshold1 and f(vb, t[1]) >= threshold1
            ]
            for offset in range(p):
                sim.send(block_base + offset, rel_ab, doubly)
            # The other two relations, heavy-restricted, hashed on vc.
            bc_atom = query.atom(rel_bc)
            bc_heavy = [
                t
                for t in database[rel_bc].sorted_tuples()
                if f(vb, t[bc_atom.variables.index(vb)]) >= threshold1
            ]
            _route_block(sim, block_base, grid, dims, bc_atom, bc_heavy)
            ca_atom = query.atom(rel_ca)
            ca_heavy = [
                t
                for t in database[rel_ca].sorted_tuples()
                if f(va, t[ca_atom.variables.index(va)]) >= threshold1
            ]
            _route_block(sim, block_base, grid, dims, ca_atom, ca_heavy)

    # ---------------- Case-2 blocks: one grid per hitter. ---------------
    case2_blocks = []
    base = 4 * p
    with timer.phase("route"):
        for block_index, (variable, h, r_side, t_side, size) in enumerate(
            case2_plan
        ):
            succ_rel, pred_rel, mid_rel = _STRUCTURE[variable]
            gy = int(
                round(math.sqrt(size * len(r_side) / max(1, len(t_side))))
            )
            gy = min(max(1, gy), size)
            gz = max(1, size // gy)
            grid = GridPartitioner(
                [gy, gz],
                HashFamily(seed * 101 + block_index + 1,
                           method=settings.hash_method),
            )
            # Rows hold R'(y), columns hold T'(z), cells hold light
            # S(y, z).
            for y in r_side:
                row = grid.functions[0](y)
                for col in range(gz):
                    sim.send(
                        base + grid.linear_index((row, col)), succ_rel, [(y,)]
                    )
            for z in t_side:
                col = grid.functions[1](z)
                for row in range(gy):
                    sim.send(
                        base + grid.linear_index((row, col)), pred_rel, [(z,)]
                    )
            mid_atom = query.atom(mid_rel)
            va, vb = mid_atom.variables
            light_mid = [
                t
                for t in database[mid_rel].sorted_tuples()
                if f(va, t[0]) < threshold1 and f(vb, t[1]) < threshold1
            ]
            for t in light_mid:
                cell = (grid.functions[0](t[0]), grid.functions[1](t[1]))
                sim.send(base + grid.linear_index(cell), mid_rel, [t])
            case2_blocks.append(
                (variable, h, base, grid, succ_rel, pred_rel, mid_rel)
            )
            base += size

    sim.end_round()

    # ---------------- Computation phase. --------------------------------
    if backend == "numpy":
        # Light-block servers hold array fragments in this mode; their
        # joins fan out over the pool, outputs merging in server order.
        with timer.phase("join"):
            join_over_pool(
                pool,
                sim,
                query,
                range(p),
                timer=timer,
                clear=storage is not None,
            )
        remaining = range(p, 4 * p)
    else:
        remaining = range(4 * p)
    with timer.phase("join"):
        for server in remaining:
            local = evaluate_on_fragments(query, sim.state(server))
            if local:
                sim.output(server, local)
        for (
            variable, h, block_base, grid, succ_rel, pred_rel, mid_rel
        ) in case2_blocks:
            succ_var = _other_variable(query, succ_rel, variable)
            pred_var = _other_variable(query, pred_rel, variable)
            mid_atom = query.atom(mid_rel)
            for offset in range(grid.num_bins):
                state = sim.state(block_base + offset)
                r_local = {t[0] for t in state.get(succ_rel, ())}
                t_local = {t[0] for t in state.get(pred_rel, ())}
                outputs = []
                for tup in state.get(mid_rel, ()):
                    values = dict(zip(mid_atom.variables, tup))
                    y = values[succ_var]
                    z = values[pred_var]
                    if y in r_local and z in t_local:
                        triangle = {variable: h, succ_var: y, pred_var: z}
                        outputs.append(tuple(triangle[v] for v in dims))
                if outputs:
                    sim.output(block_base + offset, outputs)

    timer.attach(sim.report)
    predicted = triangle_skew_load_bound(database, p)
    return TriangleSkewResult(
        answers=sim.outputs(),
        report=sim.report,
        simulation=sim,
        servers_used=total_servers,
        heavy1=heavy1,
        heavy2=heavy2,
        predicted_load_bits=predicted,
    )


def triangle_skew_load_bound(database: Database, p: int) -> float:
    """The Section 4.2.2 load formula, in bits.

    ``O~(max(M/p^{2/3}, sqrt(sum_h M_R(h) M_T(h) / p)))`` where the sum
    ranges over the heavy hitters (threshold ``m/p^{1/3}``) of each
    variable and ``R``/``T`` are its two adjacent relations.
    """
    query = triangle_query()
    database.validate_for(query)
    stats = database.statistics(query)
    m = max(stats.tuples(r) for r in query.relation_names)
    threshold2 = max(1.0, m / p ** (1.0 / 3.0))
    bound = max(stats.bits(r) for r in query.relation_names) / p ** (2.0 / 3.0)
    tuple_bits = 2 * stats.value_bits
    for variable in query.variables:
        freqs = variable_frequencies(query, database, variable)
        succ_rel, pred_rel, _mid = _STRUCTURE[variable]
        succ_atom = triangle_query().atom(succ_rel)
        pred_atom = triangle_query().atom(pred_rel)
        succ_pos = succ_atom.variables.index(variable)
        pred_pos = pred_atom.variables.index(variable)
        total = 0.0
        for value, count in freqs.items():
            if count < threshold2:
                continue
            mr = database[succ_rel].degree((succ_pos,), (value,)) * tuple_bits
            mt = database[pred_rel].degree((pred_pos,), (value,)) * tuple_bits
            total += mr * mt
        if total > 0:
            bound = max(bound, math.sqrt(total / p))
    return bound


def triangle_skew_load_bound_from_stats(
    stats: Statistics,
    hitters: Mapping[str, "HitterStatistics"],
    p: int,
) -> float:
    """The Section 4.2.2 load formula from statistics alone, in bits.

    ``hitters`` maps each triangle variable to its
    :class:`~repro.skew.heavy_hitters.HitterStatistics` (frequency
    vectors at the ``m_j / p`` threshold).  Frequencies below a
    relation's own threshold are unknown to the statistics and count as
    0, so this prediction can sit slightly below the exact
    :func:`triangle_skew_load_bound`; the dominant term -- values heavy
    in both adjacent relations -- is identical.
    """
    query = triangle_query()
    m = max(stats.tuples(r) for r in query.relation_names)
    threshold2 = max(1.0, m / p ** (1.0 / 3.0))
    bound = max(stats.bits(r) for r in query.relation_names) / p ** (2.0 / 3.0)
    tuple_bits = 2 * stats.value_bits
    for variable in query.variables:
        stats_v = hitters.get(variable)
        if stats_v is None:
            continue
        succ_rel, pred_rel, _mid = _STRUCTURE[variable]
        total = 0.0
        for value in stats_v.hitters:
            freq = max(
                stats_v.frequency(succ_rel, value),
                stats_v.frequency(pred_rel, value),
            )
            if freq < threshold2:
                continue
            mr = stats_v.frequency(succ_rel, value) * tuple_bits
            mt = stats_v.frequency(pred_rel, value) * tuple_bits
            total += mr * mt
        if total > 0:
            bound = max(bound, math.sqrt(total / p))
    return bound


def is_triangle_query(query: ConjunctiveQuery) -> bool:
    """True when ``query`` is literally the paper's ``C3`` triangle.

    The Section 4.2.2 executor is hard-wired to the relation/variable
    naming of :func:`~repro.core.families.triangle_query`; the planner
    offers it exactly for that query.
    """
    return set(query.atoms) == set(triangle_query().atoms)


def _other_variable(
    query: ConjunctiveQuery, relation: str, variable: str
) -> str:
    atom = query.atom(relation)
    return next(v for v in atom.variables if v != variable)


def _route_block(sim, base, grid, dims, atom, tuples) -> None:
    batches: dict[int, list[tuple[int, ...]]] = {}
    for server, t in route_relation(grid, dims, atom.variables, tuples):
        batches.setdefault(server, []).append(t)
    for server, batch in batches.items():
        sim.send(base + server, atom.relation, batch)
