"""Skew-aware lower bounds (Theorem 4.4 and its star-query corollary).

Theorem 4.4: fix x-statistics ``M`` (per-value frequency vectors for a
set of variables ``x``).  For any fractional edge packing ``u`` of
``q`` that *saturates* ``x`` (every variable of ``x`` has packing
weight at least 1), any one-round algorithm needs load

.. math::
    L \\ge \\min_j \\frac{a_j - d_j}{4 a_j} \\cdot
    \\Big( \\frac{\\sum_h \\prod_j M_j(h_j)^{u_j}}{p} \\Big)^{1/\\sum_j u_j}

For the star query with z-statistics, the saturating packings that
matter are exactly the 0/1 vectors, giving

.. math::
    L \\ge \\frac{1}{8} \\max_{I \\subseteq [l], I \\ne \\emptyset}
    \\Big( \\frac{\\sum_h \\prod_{j \\in I} M_j(h)}{p} \\Big)^{1/|I|}
"""

from __future__ import annotations

import itertools
import math
from typing import Mapping

from repro.core.packing import packing_polytope_vertices, saturates
from repro.core.query import Atom, ConjunctiveQuery


def skewed_lower_bound(
    query: ConjunctiveQuery,
    variable: str,
    frequencies: Mapping[str, Mapping[int, int]],
    value_bits: int,
    p: int,
    with_constant: bool = True,
) -> float:
    """Theorem 4.4 for single-variable statistics ``x = {variable}``.

    ``frequencies[rel][h] = m_rel(h)`` for relations containing the
    variable; relations *not* containing it contribute their full size,
    which must be supplied as ``frequencies[rel][-1]`` keyed by ``-1``
    (a sentinel meaning "any h").

    Following the theorem's proof, the packings range over the
    *residual* query ``q_x`` (the variable removed from every atom) --
    a strictly larger polytope than ``pk(q)`` -- restricted to those
    saturating the variable in ``q``.  For the star query these are
    exactly the non-zero 0/1 vectors.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    containing = [
        a.relation for a in query.atoms if variable in a.variable_set
    ]
    if not containing:
        raise ValueError(f"variable {variable!r} occurs in no atom")
    for rel in query.relation_names:
        if rel not in frequencies:
            raise ValueError(f"missing frequencies for relation {rel!r}")

    hitters: set[int] = set()
    for rel in containing:
        hitters |= {h for h in frequencies[rel] if h != -1}

    def bits(rel: str, h: int) -> float:
        atom = query.atom(rel)
        if variable in atom.variable_set:
            m = frequencies[rel].get(h, 0)
        else:
            m = frequencies[rel].get(-1, 0)
        return atom.arity * m * value_bits

    best = 0.0
    for u in residual_saturating_packings(query, {variable}):
        total = sum(u.values())
        if total <= 0:
            continue
        series = 0.0
        for h in hitters:
            product = 1.0
            for rel, weight in u.items():
                if weight <= 0:
                    continue
                b = bits(rel, h)
                if b <= 0:
                    product = 0.0
                    break
                product *= b**weight
            series += product
        if series <= 0:
            continue
        value = (series / p) ** (1.0 / total)
        if with_constant:
            constant = min(
                (a.arity - _dj(a, variable)) / (4.0 * a.arity)
                for a in query.atoms
            )
            value *= constant
        best = max(best, value)
    return best


def star_skew_lower_bound(
    frequencies: Mapping[str, Mapping[int, int]],
    value_bits: int,
    p: int,
    with_constant: bool = True,
) -> float:
    """The star-query corollary of Theorem 4.4.

    ``frequencies[rel][h] = m_rel(h)`` over the (heavy) values ``h`` of
    the center variable; relations are binary.  Returns
    ``(1/8) max_I (sum_h prod_{j in I} M_j(h) / p)^{1/|I|}`` (the 1/8
    dropped when ``with_constant=False``).
    """
    relations = sorted(frequencies)
    if not relations:
        raise ValueError("need at least one relation")
    hitters: set[int] = set()
    for rel in relations:
        hitters |= set(frequencies[rel])
    best = 0.0
    for size in range(1, len(relations) + 1):
        for subset in itertools.combinations(relations, size):
            series = 0.0
            for h in hitters:
                product = 1.0
                for rel in subset:
                    product *= 2 * frequencies[rel].get(h, 0) * value_bits
                series += product
            if series <= 0:
                continue
            best = max(best, (series / p) ** (1.0 / size))
    if with_constant:
        best /= 8.0
    return best


def _dj(atom, variable: str) -> int:
    """``d_j``: how many of the x-variables the atom mentions (0 or 1 here)."""
    return 1 if variable in atom.variable_set else 0


def residual_query(
    query: ConjunctiveQuery, variables: set[str] | frozenset[str]
) -> ConjunctiveQuery:
    """``q_x``: remove the x-variables from every atom (Section 4.2.3).

    Raises when some atom consists solely of x-variables (the theorem
    requires ``a_j > d_j``).
    """
    atoms = []
    for atom in query.atoms:
        rest = tuple(v for v in atom.variables if v not in variables)
        if not rest:
            raise ValueError(
                f"Theorem 4.4 needs a_j > d_j, violated by {atom.relation}"
            )
        atoms.append(Atom(atom.relation, rest))
    return ConjunctiveQuery(tuple(atoms), name="residual")


def residual_saturating_packings(
    query: ConjunctiveQuery, variables: set[str] | frozenset[str]
) -> tuple[dict[str, float], ...]:
    """Vertices of ``pk(q_x)`` that saturate ``variables`` in ``q``.

    Every packing of ``q`` is one of ``q_x`` but not conversely; the
    Theorem 4.4 bound ranges over this larger set.  Saturation is
    checked against the *original* query's incidence.
    """
    residual = residual_query(query, variables)
    return tuple(
        u
        for u in packing_polytope_vertices(residual)
        if saturates(query, u, variables)
    )


def saturating_vertices(
    query: ConjunctiveQuery, variables: set[str]
) -> tuple[dict[str, float], ...]:
    """Alias of :func:`residual_saturating_packings` (bench-facing name)."""
    return residual_saturating_packings(query, variables)


def uniform_frequencies(m: int, num_values: int) -> dict[int, int]:
    """A flat frequency vector: ``num_values`` values of frequency
    ``m // num_values`` (helper for building comparison scenarios)."""
    if num_values < 1:
        raise ValueError("need at least one value")
    share = m // num_values
    return {h: share for h in range(num_values)}


def zipf_frequencies(m: int, num_values: int, skew: float = 1.0) -> dict[int, int]:
    """A Zipf-shaped frequency vector normalized to total ~= m."""
    if num_values < 1:
        raise ValueError("need at least one value")
    raw = [1.0 / (rank**skew) for rank in range(1, num_values + 1)]
    scale = m / sum(raw)
    freqs = {h: max(1, int(round(r * scale))) for h, r in enumerate(raw)}
    return freqs


def bound_is_stronger_than_skew_free(
    skewed: float, skew_free: float, tolerance: float = 1e-9
) -> bool:
    """Skewed statistics can only raise the lower bound."""
    return skewed >= skew_free - tolerance


__all__ = [
    "skewed_lower_bound",
    "star_skew_lower_bound",
    "saturating_vertices",
    "uniform_frequencies",
    "zipf_frequencies",
    "bound_is_stronger_than_skew_free",
]
