"""``python -m repro``: a 30-second tour, plus the planner/session CLI.

Without arguments, the tour prints the paper's headline numbers live
(Table 2 rows, the tight one-round bound for the triangle query, a real
HyperCube run, the cost-based planner's EXPLAIN table, a Session
workload, the multi-round tradeoff for L16) and **exits nonzero if any
check fails**, so CI can smoke-run it.

``python -m repro plan QUERY`` prints the planner's EXPLAIN cost table
for a named query (``triangle``, ``L5``, ``T3``, ``C4``, ``SP2``,
``K4``, ``join``) on a generated database, and with ``--execute`` runs
the winning strategy and reports predicted vs measured load.

``python -m repro run QUERY`` runs a workload on a configured
:class:`repro.Session`: ``--repeat K`` executes K seed-derived jobs
(``--max-workers`` of them concurrently), ``--strategy`` pins an
algorithm instead of the planner's winner, and the accumulated
``session.history`` percentiles print at the end.  Answers are checked
against the sequential join, so the command exits nonzero on any
mismatch.

``python -m repro trace PATH`` summarizes recorded communication-trace
artifacts (one ``.jsonl`` file or a directory of them): top-k heaviest
servers, per-round bytes, hottest tags, per-phase bytes/seconds, spill
I/O, predicted-vs-measured deltas.  Record traces with ``--trace-dir``
(the tour, ``run``) or ``ClusterConfig(trace=...)``.

``python -m repro metrics PATH`` renders a :mod:`repro.metrics`
snapshot artifact as Prometheus-style text (``--json`` for the raw
snapshot, ``--diff OTHER`` for per-series deltas).  Record snapshots
with ``run --metrics --metrics-out FILE`` -- which also self-checks
that the registry's totals reconcile exactly with the runs'
``LoadReport`` counters -- or :func:`repro.metrics.write_snapshot`.

For the full harness run ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile

from repro import (
    ClusterConfig,
    DataStatistics,
    Job,
    MachineSpec,
    Session,
    default_backend,
    default_pool,
    matching_database,
    set_default_backend,
    triangle_query,
    zipf_database,
)
from repro.config import ExecutionSettings
from repro.bounds import lower_bound, upper_bound
from repro.core.families import (
    binom_query,
    chain_query,
    cycle_query,
    k4_query,
    simple_join_query,
    spk_query,
    star_query,
)
from repro.core.packing import fractional_vertex_cover_number
from repro.core.query import ConjunctiveQuery
from repro.core.shares import space_exponent_bound
from repro.hypercube import run_hypercube
from repro.join import evaluate
from repro.metrics import render_text, write_snapshot
from repro.metrics.cli import render_snapshot_path
from repro.multiround.gamma import chain_rounds_upper_bound
from repro.multiround.lowerbounds import chain_round_lower_bound
from repro.planner import execute as planner_execute
from repro.planner import plan as planner_plan
from repro.trace import TraceQuery
from repro.trace.cli import render_path


class TourCheckFailed(SystemExit):
    """A tour invariant failed; carries exit status 1."""

    def __init__(self, message: str):
        super().__init__(1)
        self.message = message


def _check(condition: bool, message: str) -> None:
    """Fail the run (exit status 1) when a tour invariant breaks.

    Explicit instead of ``assert`` so the smoke tour still guards the
    invariants under ``python -O``.
    """
    if not condition:
        print(f"CHECK FAILED: {message}", file=sys.stderr)
        raise TourCheckFailed(message)


def parse_query(name: str) -> ConjunctiveQuery:
    """Resolve a query name: a family shorthand or a named example.

    Accepted: ``triangle``, ``join``, ``K4``, and the parameterized
    families ``L<k>`` (chains), ``C<k>`` (cycles), ``T<k>`` (stars),
    ``SP<k>`` and ``B<k>_<m>``.
    """
    flat = name.strip()
    lowered = flat.lower()
    if lowered in ("triangle", "c3"):
        return triangle_query()
    if lowered == "join":
        return simple_join_query()
    if lowered == "k4":
        return k4_query()
    match = re.fullmatch(r"(?i)(L|C|T|SP)(\d+)", flat)
    if match:
        kind, k = match.group(1).upper(), int(match.group(2))
        builder = {
            "L": chain_query,
            "C": cycle_query,
            "T": star_query,
            "SP": spk_query,
        }[kind]
        return builder(k)
    match = re.fullmatch(r"(?i)B(\d+)_(\d+)", flat)
    if match:
        return binom_query(int(match.group(1)), int(match.group(2)))
    raise argparse.ArgumentTypeError(
        f"unknown query {name!r} (try triangle, join, K4, L5, C4, T3, "
        "SP2, B4_2)"
    )


def run_tour(trace_dir: str | None = None) -> None:
    print("repro: Beame-Koutris-Suciu, Communication Cost in Parallel")
    print("Query Processing (EDBT 2015) -- reproduction smoke tour")
    print(f"execution backend: {default_backend()} "
          "(see --backend / repro.set_default_backend)")
    print(f"worker pool: {default_pool()} "
          "(see `run --pool` / repro.set_default_pool; serial, thread "
          "and process pools are bit-identical)\n")

    print("Table 2 (tau*, one-round space exponent):")
    for query in (cycle_query(3), cycle_query(6), star_query(3),
                  chain_query(5), binom_query(4, 2)):
        tau = fractional_vertex_cover_number(query)
        eps = space_exponent_bound(query)
        print(f"  {query.name:>5}: tau* = {tau:4.2f}, eps = {eps:5.3f}")

    q = triangle_query()
    p, m = 64, 1000
    db = matching_database(q, m=m, n=2**14, seed=0)
    stats = db.statistics(q)
    lo, hi = lower_bound(q, stats, p), upper_bound(q, stats, p)
    print(f"\nTriangle query, p={p}, m={m} (skew-free):")
    print(f"  L_lower = {lo:.0f} bits = L_upper = {hi:.0f} bits (Thm 3.15)")
    _check(abs(lo - hi) <= 1e-6 * max(lo, 1.0),
           "Theorem 3.15 tightness: L_lower == L_upper")
    expected = evaluate(q, db)
    result = run_hypercube(q, db, p, seed=0)
    _check(result.answers == expected,
           "HyperCube answers equal the sequential join")
    print(f"  HyperCube shares {result.shares}: measured "
          f"L = {result.max_load_bits:.0f} bits, "
          f"{len(result.answers)} answers (= sequential join)")
    pct = result.report.load_percentiles()
    print(f"  {result.report.percentile_line()}")
    _check(pct["max"] == result.max_load_bits,
           "percentile summary max equals L")

    print(f"\nCost-based planner, same triangle at p={p}:")
    explained = planner_plan(q, db, p)
    print(explained.table())
    _check(len(explained.ranked) >= 5,
           "planner ranks at least 5 strategies for the triangle")
    planned = planner_execute(q, db, p, seed=0, stats=explained.statistics)
    ratio = planned.report.prediction_ratio()
    print(f"  executed {planned.strategy}: measured "
          f"L = {planned.max_load_bits:.0f} bits "
          f"(predicted {planned.predicted_load_bits:.0f}, "
          f"measured/predicted = {ratio:.2f})")
    _check(planned.answers == expected,
           "planner-chosen execution equals the sequential join")
    _check(planned.predicted_load_bits <= hi * len(q.atoms) + 1e-6,
           "planner winner predicted within the one-round envelope")

    zq = star_query(2)
    zdb = zipf_database(zq, m=2000, n=2000, skew=1.0, seed=2)
    zplanned = planner_execute(zq, zdb, 16, seed=0)
    print("\nZipf-skewed star join T2 (m=2000, skew=1.0, p=16): planner "
          f"picks {zplanned.strategy}, measured "
          f"L = {zplanned.max_load_bits:.0f} bits")
    zexpected = evaluate(zq, zdb)
    _check(zplanned.answers == zexpected,
           "skewed star execution equals the sequential join")

    print("\nHeterogeneous cluster (p=8: 4 machines at 1x + 4 at 4x):")
    het_spec = MachineSpec.parse("4x1+4x4")
    het_plan = planner_plan(q, db, 8, machines=het_spec)
    _check(het_plan.machines is het_spec,
           "EXPLAIN carries the machine spec")
    winner = het_plan.winner
    print(f"  planner winner {winner.name}: predicted makespan "
          f"{winner.estimate.load_bits:.0f} bits/unit speed "
          "(see `python -m repro plan triangle --p 8 "
          "--machines 4x1,4x4`)")
    with Session(p=8, seed=0, machines=het_spec) as het_session:
        het_result = het_session.run(q, db, label="triangle-hetero")
        _check(het_result.answers == expected,
               "heterogeneous run equals the sequential join")
        het_record = het_session.history[-1]
        _check(het_record.makespan_bits is not None,
               "heterogeneous run records its measured makespan")
        print(f"  {het_record.line()}")
        print("  (speed-weighted shares: fast servers take more bits; "
              f"makespan {het_record.makespan_bits:.0f} <= "
              f"L {het_result.max_load_bits:.0f})")
        _check(het_record.makespan_bits <= het_result.max_load_bits + 1e-9,
               "makespan never exceeds the raw max load")

    print("\nSession workload (one configured cluster, many queries,")
    print("traced -- every run records a queryable JSONL artifact):")
    # Always trace the session segment: into --trace-dir when given
    # (the artifact survives for `python -m repro trace` / CI upload),
    # else into a throwaway directory so the checks still run.
    tmp_trace = (
        tempfile.TemporaryDirectory(prefix="repro-trace-")
        if trace_dir is None
        else None
    )
    effective_trace_dir = trace_dir if trace_dir is not None else tmp_trace.name
    try:
        with Session(p=16, seed=0, trace=effective_trace_dir) as session:
            batch = session.run_many(
                [Job(q, db, label="triangle"), Job(zq, zdb, label="T2-zipf")],
                max_workers=2,
            )
            _check(batch[0].answers == expected,
                   "session triangle job equals the sequential join")
            _check(batch[1].answers == zexpected,
                   "session star job equals the sequential join")
            for line in session.workload_summary().splitlines():
                print(f"  {line}")
            records = session.history
            _check(
                all(r.trace_path is not None for r in records),
                "every traced run records a trace artifact",
            )
            query_view = TraceQuery(records[0].trace_path)
            _check(
                query_view.reconcile(batch[0].load_report) == {},
                "trace per-server bits reconcile with the LoadReport",
            )
            top = query_view.top_servers(k=3)
            print("  triangle trace: "
                  + ", ".join(f"#{s} {bits:.0f}b" for s, bits in top)
                  + f" (top 3 of {len(query_view.server_bits())} servers; "
                  "see `python -m repro trace`)")
    finally:
        if tmp_trace is not None:
            tmp_trace.cleanup()

    print("\nMulti-round tradeoff for L16 (Cor 5.15, tight):")
    for eps in (0.0, 0.5):
        lo_r = chain_round_lower_bound(16, eps)
        hi_r = chain_rounds_upper_bound(16, eps)
        _check(lo_r == hi_r, f"L16 round bound tight at eps={eps}")
        print(f"  eps = {eps}: {lo_r} rounds (lower = upper = {hi_r})")
    print("\nAll tour checks passed.  Run `pytest benchmarks/ "
          "--benchmark-only` for all reproduction tables.")


def _machine_spec(text: str) -> MachineSpec:
    """argparse type for ``--machines``: a ``MachineSpec.parse`` spec."""
    try:
        return MachineSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _positive_mb(text: str) -> float:
    """argparse type for ``--memory-budget-mb``: a positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"memory budget must be positive, got {value:g}"
        )
    return value


def run_plan_command(args: argparse.Namespace) -> None:
    query = args.query
    machines = args.machines
    if machines is not None and machines.p != args.p:
        message = (
            f"--machines describes {machines.p} machines but --p is {args.p}"
        )
        print(f"CHECK FAILED: {message}", file=sys.stderr)
        raise TourCheckFailed(message)
    db = _generate_database(args)
    explained = planner_plan(query, db, args.p, machines=machines)
    print(explained.table())
    if args.execute:
        budget_bytes = (
            int(args.memory_budget_mb * 2**20)
            if args.memory_budget_mb is not None
            else None
        )
        planned = planner_execute(
            query, db, args.p, seed=args.seed, stats=explained.statistics,
            memory_budget_bytes=budget_bytes,
            settings=(
                ExecutionSettings(machines=machines)
                if machines is not None
                else None
            ),
        )
        ratio = planned.report.prediction_ratio()
        print(f"\nexecuted {planned.strategy}: measured "
              f"L = {planned.max_load_bits:.0f} bits, "
              f"{len(planned.answers)} answers"
              + (f" (measured/predicted = {ratio:.2f})" if ratio else ""))
        print(f"{planned.report.percentile_line()}")
        if planned.budget_outcome == "chunked":
            print(
                f"out-of-core: budget {args.memory_budget_mb:g} MiB -> "
                "chunked execution, spilled "
                f"{planned.storage.bytes_spilled / 2**20:.1f} MiB in "
                f"{planned.storage.chunks_spilled} chunks "
                f"(chunk_rows={planned.storage.chunk_rows})"
            )
        elif planned.budget_outcome == "fits":
            print(
                "in-memory: input fits the "
                f"{args.memory_budget_mb:g} MiB budget"
            )
        elif planned.budget_outcome == "not-enforced":
            print(
                f"in-memory: {planned.strategy} cannot stream chunks "
                f"(the {args.memory_budget_mb:g} MiB budget was not "
                "enforced)"
            )
        _check(planned.answers == evaluate(query, db),
               "planned execution equals the sequential join")
        if planned.storage is not None:
            planned.storage.close()


def _generate_database(args: argparse.Namespace):
    """The plan/run subcommands' shared database generation."""
    if args.skew > 0:
        db = zipf_database(
            args.query, m=args.m, n=args.n, skew=args.skew, seed=args.seed,
            backend="numpy",
        )
        flavour = f"zipf(skew={args.skew:g})"
    else:
        db = matching_database(
            args.query, m=args.m, n=args.n, seed=args.seed, backend="numpy"
        )
        flavour = "matching"
    print(f"{flavour} database: m={args.m}, n={args.n}, seed={args.seed}\n")
    return db


def run_run_command(args: argparse.Namespace) -> None:
    """``python -m repro run QUERY``: a Session workload, checked."""
    db = _generate_database(args)
    budget_bytes = (
        int(args.memory_budget_mb * 2**20)
        if args.memory_budget_mb is not None
        else None
    )
    if args.machines is not None and args.machines.p != args.p:
        message = (
            f"--machines describes {args.machines.p} machines "
            f"but --p is {args.p}"
        )
        print(f"CHECK FAILED: {message}", file=sys.stderr)
        raise TourCheckFailed(message)
    config = ClusterConfig(
        p=args.p,
        seed=args.seed,
        capacity_bits=args.capacity_bits,
        on_overflow=args.on_overflow,
        memory_budget_bytes=budget_bytes,
        pool=args.pool,
        max_workers=args.max_workers,
        trace=args.trace_dir,
        machines=args.machines,
        metrics=args.metrics or args.metrics_out is not None,
    )
    expected = evaluate(args.query, db)
    # One statistics collection feeds every job: the repeats run over
    # the same database, so re-scanning per job would only add noise.
    stats = DataStatistics.from_database(args.query, db, args.p)
    with Session(config) as session:
        jobs = [
            Job(args.query, db, strategy=args.strategy, stats=stats,
                label=f"job-{i}")
            for i in range(args.repeat)
        ]
        try:
            results = session.run_many(
                jobs,
                max_workers=args.max_workers,
                metrics_every=args.metrics_every,
            )
        except (KeyError, ValueError) as exc:
            # Unknown/inapplicable strategy etc.: a clean nonzero exit.
            print(f"CHECK FAILED: {exc}", file=sys.stderr)
            raise TourCheckFailed(str(exc)) from exc
        for index, result in enumerate(results):
            dropped = result.load_report.dropped_bits
            _check(
                dropped > 0 or result.answers == expected,
                f"job-{index} answers equal the sequential join",
            )
        print(session.workload_summary())
        if args.trace_dir is not None:
            traced = [
                record.trace_path
                for record in session.history
                if record.trace_path
            ]
            print(
                f"traced {len(traced)} run(s) -> {args.trace_dir} "
                f"(summarize with `python -m repro trace {args.trace_dir}`)"
            )
        if session.storage is not None:
            print(
                "out-of-core: spilled "
                f"{session.storage.bytes_spilled / 2**20:.1f} MiB in "
                f"{session.storage.chunks_spilled} chunks "
                f"(chunk_rows={session.storage.chunk_rows})"
            )
        if session.metrics is not None:
            registry = session.metrics
            # Self-check: the live registry's totals must reconcile
            # *exactly* (float ==) with the runs' LoadReport counters
            # -- bit counts are integer-valued doubles, so the sums are
            # order-independent and exact.
            _check(
                registry.total("repro_runs_total") == float(len(results)),
                "metrics run count equals the batch size",
            )
            _check(
                registry.value("repro_sim_bits_total")
                == sum(r.load_report.total_bits for r in results),
                "metrics bits total reconciles with the LoadReports",
            )
            _check(
                registry.value("repro_sim_dropped_bits_total")
                == sum(r.load_report.dropped_bits for r in results),
                "metrics dropped-bits total reconciles with the "
                "LoadReports",
            )
            # The spill totals reconcile against the shared manager's
            # own counters (not summed per-run deltas, which overlap
            # under thread concurrency).  Process-mode batches spill
            # into worker-side managers that die with their process,
            # so there is nothing to reconcile against here.
            if session.storage is not None:
                _check(
                    registry.value("repro_spill_bytes_written_total")
                    == float(session.storage.bytes_spilled),
                    "metrics spill bytes reconcile with the storage "
                    "manager",
                )
            print("\nmetrics (totals reconcile with the LoadReports):")
            print(render_text(registry.snapshot()), end="")
            if args.metrics_out is not None:
                write_snapshot(registry.snapshot(), args.metrics_out)
                print(
                    f"metrics snapshot -> {args.metrics_out} (render with "
                    f"`python -m repro metrics {args.metrics_out}`)"
                )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction smoke tour and cost-based planner CLI.",
    )
    parser.add_argument(
        "--backend", choices=("tuples", "numpy"), default=None,
        help="system-wide execution backend for this run "
             "(default: numpy, the columnar engine; tuples is the "
             "tuple-at-a-time reference path)",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="record communication traces as JSONL artifacts under DIR "
             "(tour: the Session segment; run: every job); summarize "
             "them with `python -m repro trace DIR`",
    )
    sub = parser.add_subparsers(dest="command")
    plan_parser = sub.add_parser(
        "plan", help="print the planner's EXPLAIN cost table for a query"
    )
    plan_parser.add_argument("query", type=parse_query,
                             help="triangle, join, K4, L5, C4, T3, SP2, ...")
    plan_parser.add_argument("--p", type=int, default=64,
                             help="number of servers (default 64)")
    plan_parser.add_argument("--m", type=int, default=2000,
                             help="tuples per relation (default 2000)")
    plan_parser.add_argument("--n", type=int, default=None,
                             help="domain size (default 4*m)")
    plan_parser.add_argument("--skew", type=float, default=0.0,
                             help="zipf skew; 0 generates a matching "
                                  "database (default 0)")
    plan_parser.add_argument("--seed", type=int, default=0)
    plan_parser.add_argument(
        "--machines", type=_machine_spec, default=None, metavar="SPEC",
        help="heterogeneous machine spec, e.g. 4x1,4x2 (4 machines at "
             "speed 1 + 4 at speed 2; must match --p); estimates switch "
             "to the speed-normalized makespan objective",
    )
    plan_parser.add_argument("--execute", action="store_true",
                             help="also run the winning strategy")
    plan_parser.add_argument(
        "--memory-budget-mb", type=_positive_mb, default=None, metavar="MB",
        help="resident-set budget for --execute; when the in-memory "
             "footprint would exceed it, the winner runs out-of-core "
             "(chunked relations spilled to disk, identical results)",
    )
    # Accept the global flag after the subcommand too; SUPPRESS keeps a
    # pre-subcommand value from being clobbered by a subparser default.
    plan_parser.add_argument(
        "--backend", choices=("tuples", "numpy"), default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    run_parser = sub.add_parser(
        "run", help="run a Session workload for a query (checked answers)"
    )
    run_parser.add_argument("query", type=parse_query,
                            help="triangle, join, K4, L5, C4, T3, SP2, ...")
    run_parser.add_argument("--p", type=int, default=64,
                            help="number of servers (default 64)")
    run_parser.add_argument("--m", type=int, default=2000,
                            help="tuples per relation (default 2000)")
    run_parser.add_argument("--n", type=int, default=None,
                            help="domain size (default 4*m)")
    run_parser.add_argument("--skew", type=float, default=0.0,
                            help="zipf skew; 0 generates a matching "
                                 "database (default 0)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--strategy", default=None,
                            help="pin a strategy by name instead of the "
                                 "planner's winner (e.g. hypercube, "
                                 "skew-star, multiround-tuples)")
    run_parser.add_argument("--repeat", type=int, default=1,
                            help="number of seed-derived jobs (default 1)")
    run_parser.add_argument("--max-workers", type=int, default=None,
                            help="concurrent jobs for run_many "
                                 "(default: min(cpus, 8, jobs))")
    run_parser.add_argument(
        "--pool", choices=("serial", "thread", "process"), default=None,
        help="worker pool for each run's per-server routing/join fan-out "
             "and for the batch itself (default: REPRO_DEFAULT_POOL or "
             "serial engines with a threaded batch; results are "
             "bit-identical across pools)",
    )
    run_parser.add_argument(
        "--machines", type=_machine_spec, default=None, metavar="SPEC",
        help="heterogeneous machine spec, e.g. 4x1,4x2 (4 machines at "
             "speed 1 + 4 at speed 2; must match --p); shares and "
             "routing become speed-weighted, summaries report makespan",
    )
    run_parser.add_argument("--capacity-bits", type=float, default=None,
                            help="per-server per-round load cap L")
    run_parser.add_argument("--on-overflow", choices=("fail", "drop"),
                            default="fail",
                            help="what a binding capacity cap does "
                                 "(default fail)")
    run_parser.add_argument(
        "--memory-budget-mb", type=_positive_mb, default=None, metavar="MB",
        help="resident-set budget; over-budget runs stream through the "
             "session's shared spill directory (identical results)",
    )
    run_parser.add_argument(
        "--metrics", action="store_true",
        help="collect live telemetry (repro.metrics) for the workload, "
             "print the Prometheus-style exposition, and self-check "
             "that the totals reconcile exactly with the LoadReports",
    )
    run_parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="also write the registry snapshot as JSON to FILE "
             "(render or diff it with `python -m repro metrics`); "
             "implies --metrics",
    )
    run_parser.add_argument(
        "--metrics-every", type=int, default=None, metavar="N",
        help="print a progress line every N completed jobs "
             "(works with or without --metrics)",
    )
    run_parser.add_argument(
        "--backend", choices=("tuples", "numpy"), default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    run_parser.add_argument(
        "--trace-dir", default=argparse.SUPPRESS, metavar="DIR",
        help=argparse.SUPPRESS,
    )
    trace_parser = sub.add_parser(
        "trace",
        help="summarize recorded trace artifacts (a .jsonl file or a "
             "directory of them)",
    )
    trace_parser.add_argument(
        "path",
        help="a trace .jsonl file, or a directory whose *.jsonl traces "
             "are all summarized",
    )
    trace_parser.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="entries in the top-servers / hottest-tags tables "
             "(default 5)",
    )
    metrics_parser = sub.add_parser(
        "metrics",
        help="render or diff a metrics snapshot artifact "
             "(from `run --metrics-out` or repro.metrics.write_snapshot)",
    )
    metrics_parser.add_argument(
        "path", help="a snapshot JSON file (schema repro.metrics/1)"
    )
    metrics_parser.add_argument(
        "--json", action="store_true",
        help="print the raw snapshot JSON instead of the "
             "Prometheus-style text",
    )
    metrics_parser.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="print per-series deltas from PATH to OTHER",
    )
    check_parser = sub.add_parser(
        "check",
        help="statically check source for determinism / parallel-safety "
             "/ hook-hygiene invariants (repro.checks)",
    )
    check_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    check_parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE",
        help="run only this rule id (repeatable; see --list-rules)",
    )
    check_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable repro.checks/1 report",
    )
    check_parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its description and exit",
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_default_backend(args.backend)
    if args.command in ("plan", "run"):
        if args.n is None:
            args.n = 4 * args.m
    if args.command == "plan":
        run_plan_command(args)
    elif args.command == "run":
        run_run_command(args)
    elif args.command == "trace":
        try:
            print(render_path(args.path, top=args.top))
        except FileNotFoundError as exc:
            print(f"CHECK FAILED: {exc}", file=sys.stderr)
            raise TourCheckFailed(str(exc)) from exc
    elif args.command == "check":
        from repro.checks import cli as checks_cli

        check_argv = list(args.paths)
        for rule in args.rules or ():
            check_argv += ["--rule", rule]
        if args.json:
            check_argv.append("--json")
        if args.list_rules:
            check_argv.append("--list-rules")
        code = checks_cli.main(check_argv)
        if code:
            raise SystemExit(code)
    elif args.command == "metrics":
        try:
            print(
                render_snapshot_path(
                    args.path, as_json=args.json, diff=args.diff
                ),
                end="",
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"CHECK FAILED: {exc}", file=sys.stderr)
            raise TourCheckFailed(str(exc)) from exc
    else:
        run_tour(trace_dir=args.trace_dir)


if __name__ == "__main__":
    main()
