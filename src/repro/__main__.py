"""``python -m repro``: a 30-second tour of the reproduction.

Prints the paper's headline numbers live: Table 2 rows, the tight
one-round bound for the triangle query, a real HyperCube run, and the
multi-round tradeoff for L16.  For the full harness run
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from repro import matching_database, triangle_query
from repro.bounds import lower_bound, upper_bound
from repro.core.families import binom_query, chain_query, cycle_query, star_query
from repro.core.packing import fractional_vertex_cover_number
from repro.core.shares import space_exponent_bound
from repro.hypercube import run_hypercube
from repro.join import evaluate
from repro.multiround.gamma import chain_rounds_upper_bound
from repro.multiround.lowerbounds import chain_round_lower_bound


def main() -> None:
    print("repro: Beame-Koutris-Suciu, Communication Cost in Parallel")
    print("Query Processing (EDBT 2015) -- reproduction smoke tour\n")

    print("Table 2 (tau*, one-round space exponent):")
    for query in (cycle_query(3), cycle_query(6), star_query(3),
                  chain_query(5), binom_query(4, 2)):
        tau = fractional_vertex_cover_number(query)
        eps = space_exponent_bound(query)
        print(f"  {query.name:>5}: tau* = {tau:4.2f}, eps = {eps:5.3f}")

    q = triangle_query()
    p, m = 64, 1000
    db = matching_database(q, m=m, n=2**14, seed=0)
    stats = db.statistics(q)
    print(f"\nTriangle query, p={p}, m={m} (skew-free):")
    print(f"  L_lower = {lower_bound(q, stats, p):.0f} bits "
          f"= L_upper = {upper_bound(q, stats, p):.0f} bits (Thm 3.15)")
    result = run_hypercube(q, db, p, seed=0)
    assert result.answers == evaluate(q, db)
    print(f"  HyperCube shares {result.shares}: measured "
          f"L = {result.max_load_bits:.0f} bits, "
          f"{len(result.answers)} answers (= sequential join)")

    print("\nMulti-round tradeoff for L16 (Cor 5.15, tight):")
    for eps in (0.0, 0.5):
        lo = chain_round_lower_bound(16, eps)
        hi = chain_rounds_upper_bound(16, eps)
        print(f"  eps = {eps}: {lo} rounds (lower = upper = {hi})")
    print("\nRun `pytest benchmarks/ --benchmark-only` for all 16 "
          "reproduction tables.")


if __name__ == "__main__":
    main()
