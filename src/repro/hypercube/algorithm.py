"""One-round HyperCube execution on the MPC simulator.

The driver: compute optimal share exponents via LP (10) (unless shares
are given), integerize them, route every base tuple to its destination
subcube (Eq. 9), run the local multiway join on each server, and return
the union of local answers together with the full load report.

The correctness argument is the paper's: for every potential answer
tuple ``(a_1, ..., a_k)`` the server ``(h_1(a_1), ..., h_k(a_k))``
receives every base tuple consistent with it, so the union of local
join results is exactly ``q(I)``.

Two execution backends share this driver:

* ``backend="tuples"`` routes and joins one Python tuple at a time --
  the original, obviously-correct reference path.
* ``backend="numpy"`` routes whole relations as ``(n, arity)`` arrays
  (all destination coordinates per column in one vectorized hash,
  replication axes expanded by broadcasting, grouping by server via
  ``argsort``) and runs the vectorized local join.  It produces
  bit-identical answers and loads; the property tests in
  ``tests/hypercube/test_backends.py`` enforce that.

The columnar backend additionally streams: with ``chunk_rows`` (or a
:class:`~repro.storage.manager.StorageManager` via ``storage=``)
relations are routed chunk-by-chunk through the same vectorized router,
per-server fragments accumulate in disk-spilling spools, and each
server's fragment is materialized only for its own local join -- so
``n`` is bounded by disk, not RAM, while answers, per-server loads and
even capacity truncation stay bit-identical
(``tests/storage/test_streaming_execution.py`` enforces that).
"""

from __future__ import annotations

from typing import Iterator, Literal, Mapping, Sequence

import numpy as np

from repro.config import ExecutionSettings, MachineSpec
from repro.core.query import ConjunctiveQuery
from repro.core.shares import integerize_shares, share_exponents
from repro.core.stats import Statistics
from repro.data.arrays import repeated_binding_filter
from repro.data.database import Database
from repro.hashing.family import (
    GridPartitioner,
    HashFamily,
    HashMethod,
    grid_dimension_weights,
)
from repro.join.multiway import evaluate_on_fragments
from repro.join.vectorized import UnsupportedVectorizedQuery, evaluate_arrays
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation
from repro.mpc.timing import PhaseTimer
from repro.parallel.pool import PoolKind, WorkerPool, get_pool
from repro.parallel.tasks import (
    RouteTask,
    iter_array_sources,
    join_over_pool,
    route_over_pool,
)
from repro.storage.manager import StorageManager


class HyperCubeResult:
    """Everything produced by one HyperCube run.

    ``answers`` materializes the Python answer set lazily from the
    simulation's outputs (converting millions of array-backed answers
    into tuples is the single most expensive step of a columnar run, so
    it only happens when somebody asks).  ``answers_array`` exposes the
    columnar form directly.

    Satisfies the :class:`repro.session.RunResult` protocol (as do the
    skew, multi-round and planner results), so callers can treat any
    execution outcome uniformly.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        answers: set[tuple[int, ...]] | None,
        shares: dict[str, int],
        report: LoadReport,
        simulation: MPCSimulation,
        strategy: str = "hypercube",
    ):
        self.query = query
        self.shares = shares
        self.report = report
        self.simulation = simulation
        self.strategy = strategy
        self._answers = answers

    @property
    def answers(self) -> set[tuple[int, ...]]:
        if self._answers is None:
            self._answers = self.simulation.outputs()
        return self._answers

    def answers_array(self) -> np.ndarray:
        """The distinct answers as a canonical ``(n, k)`` int64 array."""
        return self.simulation.outputs_array(self.query.num_variables)

    @property
    def load_report(self) -> LoadReport:
        """The :class:`RunResult` name for :attr:`report`."""
        return self.report

    @property
    def rounds(self) -> int:
        return self.report.num_rounds

    @property
    def predicted_bits(self) -> float | None:
        """The cost model's load prediction (None unless attached)."""
        return self.report.predicted_load_bits

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def max_load_tuples(self) -> int:
        return self.report.max_load_tuples

    def replication_rate(self, stats: Statistics) -> float:
        return self.report.replication_rate(stats.total_bits)

    def __repr__(self) -> str:
        return (
            f"HyperCubeResult(query={self.query.name or 'q'!r}, "
            f"shares={self.shares}, L={self.report.max_load_bits:.0f} bits)"
        )


def resolve_shares(
    query: ConjunctiveQuery,
    stats: Statistics,
    p: int,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
) -> dict[str, int]:
    """Determine integer shares: explicit > exponents > LP (10)."""
    if shares is not None:
        out = {v: int(shares.get(v, 1)) for v in query.variables}
        if any(s < 1 for s in out.values()):
            raise ValueError("shares must be >= 1")
        product = 1
        for s in out.values():
            product *= s
        if product > p:
            raise ValueError(
                f"share product {product} exceeds the number of servers {p}"
            )
        return out
    if exponents is None:
        exponents = share_exponents(query, stats, p).exponents
    full = {v: float(exponents.get(v, 0.0)) for v in query.variables}
    return integerize_shares(full, p)


def route_relation(
    partitioner: GridPartitioner,
    dimension_variables: Sequence[str],
    atom_variables: Sequence[str],
    tuples,
):
    """Yield ``(server, tuple)`` pairs for one relation's tuples.

    ``dimension_variables`` fixes the grid axes (the query variables in
    head order); a tuple binds the axes named by ``atom_variables`` and
    is replicated along all others (Eq. 9's destination subcube).
    Tuples that bind a repeated variable inconsistently (e.g. ``S(x, x)``
    with tuple ``(1, 2)``) can match no answer and are dropped before
    routing, so they contribute zero bits to every server's load.
    """
    axis_of = {v: i for i, v in enumerate(dimension_variables)}
    for t in tuples:
        coordinates: list[int | None] = [None] * len(dimension_variables)
        consistent = True
        for variable, value in zip(atom_variables, t):
            axis = axis_of[variable]
            if coordinates[axis] is None:
                coordinates[axis] = value
            elif coordinates[axis] != value:
                consistent = False
                break
        if not consistent:
            continue
        for cell in partitioner.destinations(coordinates):
            yield partitioner.linear_index(cell), t


def route_relation_arrays(
    partitioner: GridPartitioner,
    dimension_variables: Sequence[str],
    atom_variables: Sequence[str],
    rows: np.ndarray,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(server, row_batch)`` pairs for one relation, vectorized.

    The columnar counterpart of :func:`route_relation`: destination
    coordinates are computed per *column* with one vectorized hash per
    bound axis, replication along unbound axes is expanded by
    broadcasting the subcube's linear-offset vector, and rows are
    grouped by destination server with one ``argsort``.  Row batches
    preserve the (deterministic) input row order within each server.
    """
    axis_of = {v: i for i, v in enumerate(dimension_variables)}
    strides = partitioner.strides
    shares = partitioner.shares

    first_position, mask = repeated_binding_filter(atom_variables, rows)
    if mask is not None:
        rows = rows[mask]
    if len(rows) == 0:
        return
    first_of_axis = {axis_of[v]: pos for v, pos in first_position.items()}

    base = np.zeros(len(rows), dtype=np.int64)
    offsets = np.zeros(1, dtype=np.int64)
    for axis in range(len(dimension_variables)):
        if axis in first_of_axis:
            coords = partitioner.functions[axis].hash_array(
                rows[:, first_of_axis[axis]]
            )
            base += coords * strides[axis]
        else:
            axis_offsets = np.arange(shares[axis], dtype=np.int64) * strides[axis]
            offsets = (offsets[:, None] + axis_offsets[None, :]).reshape(-1)

    servers = (base[:, None] + offsets[None, :]).reshape(-1)
    row_ids = np.repeat(np.arange(len(rows)), len(offsets))
    order = np.argsort(servers, kind="stable")
    servers = servers[order]
    row_ids = row_ids[order]
    boundaries = np.flatnonzero(np.diff(servers)) + 1
    for group in np.split(np.arange(len(servers)), boundaries):
        yield int(servers[group[0]]), rows[row_ids[group]]


def run_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
    seed: int = 0,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    skip_local_join: bool = False,
    backend: Literal["tuples", "numpy"] | None = None,
    hash_method: HashMethod = "splitmix64",
    storage: StorageManager | None = None,
    chunk_rows: int | None = None,
    pool: PoolKind | None = None,
    max_workers: int | None = None,
    machines: "MachineSpec | None" = None,
) -> HyperCubeResult:
    """Run the one-round HyperCube algorithm on ``p`` servers.

    Parameters mirror the paper's knobs: ``shares``/``exponents``
    override the LP-optimal share allocation; ``capacity_bits`` imposes
    the hard load cap ``L`` (with ``on_overflow="drop"`` implementing
    the load-limited algorithms of the Theorem 3.5 experiments);
    ``skip_local_join`` skips the computation phase when only the
    communication loads are of interest.

    ``backend`` selects the execution engine: ``"tuples"`` (the
    reference tuple-at-a-time path) or ``"numpy"`` (columnar, ~10-100x
    faster on large inputs, identical answers and loads); ``None``
    follows the system-wide default
    (:func:`repro.config.set_default_backend`).  ``hash_method``
    selects the routing PRF for either backend.

    ``storage`` switches the columnar backend to out-of-core mode:
    relations stream through the router chunk-by-chunk, received
    fragments spill to the manager's chunked spools, answers spill to
    output spools, and each server's fragment is freed right after its
    local join -- bit-identical results at a resident set bounded by a
    few chunks plus one server's fragment.  ``chunk_rows`` controls the
    routing granularity alone (defaults to the manager's; chunked
    routing without a manager keeps fragments in memory).  Lazy result
    accessors (``answers``, ``answers_array()``) read the spooled
    outputs, so materialize them *before* closing the manager.

    ``pool`` fans the columnar routing and per-server joins out over a
    worker pool (``"serial"``/``"thread"``/``"process"``; ``None``
    follows :func:`repro.config.default_pool`), with ``max_workers``
    workers.  Results are merged deterministically, so answers and
    per-server per-round loads are bit-identical at any pool kind and
    worker count.

    ``machines`` describes a heterogeneous cluster
    (:class:`repro.config.MachineSpec`): non-uniform speeds weight the
    grid's hash ranges so fast servers receive proportionally more
    tuples, per-machine capacities tighten the cap server-by-server,
    and the report gains speed-normalized (makespan) metrics.  ``None``
    follows :func:`repro.config.default_machines` (the homogeneous
    cluster unless ``REPRO_DEFAULT_MACHINES`` is set).

    This is a thin delegating wrapper: the actual execution flows
    through the shared run path of :mod:`repro.session`, which resolves
    the backend/storage/chunk-size interaction once for every executor.
    """
    from repro.session import dispatch_run

    return dispatch_run(
        "hypercube",
        query,
        database,
        p,
        seed=seed,
        storage=storage,
        settings=ExecutionSettings(
            backend=backend,
            capacity_bits=capacity_bits,
            on_overflow=on_overflow,
            hash_method=hash_method,
            chunk_rows=chunk_rows,
            pool=pool,
            max_workers=max_workers,
            machines=machines,
        ),
        shares=shares,
        exponents=exponents,
        skip_local_join=skip_local_join,
    )


def _hypercube_impl(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    *,
    seed: int,
    settings: ExecutionSettings,
    storage: StorageManager | None,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
    skip_local_join: bool = False,
) -> HyperCubeResult:
    """The HyperCube core; ``settings`` arrives already resolved."""
    backend = settings.backend
    chunk_rows = settings.chunk_rows
    timer = PhaseTimer()
    pool = get_pool(settings.pool, settings.max_workers)
    with timer.phase("generate"):
        database.validate_for(query)
        stats = database.statistics(query)
        resolved = resolve_shares(query, stats, p, shares, exponents)
        dimension_variables = query.variables
        # Heterogeneous clusters weight each dimension's hash ranges by
        # the marginal speed mass of its slices, so fast servers own
        # proportionally larger ranges; None (the uniform cluster)
        # keeps the exact unweighted modulo routing.
        grid_weights = grid_dimension_weights(
            [resolved[v] for v in dimension_variables], settings.machines
        )
        partitioner = GridPartitioner(
            [resolved[v] for v in dimension_variables],
            HashFamily(seed, method=settings.hash_method),
            weights=grid_weights,
        )

    sim = MPCSimulation(
        p,
        value_bits=stats.value_bits,
        capacity_bits=settings.capacity_bits,
        on_overflow=settings.on_overflow,
        storage=storage,
        timer=timer,
        machines=settings.machines,
    )
    if backend == "numpy":
        _communicate_arrays(
            query,
            database,
            dimension_variables,
            tuple(resolved[v] for v in dimension_variables),
            seed,
            settings.hash_method,
            sim,
            chunk_rows,
            pool,
            timer,
            weights=grid_weights,
        )
    else:
        with timer.phase("route"):
            _communicate_tuples(
                query, database, partitioner, dimension_variables, sim
            )

    if not skip_local_join:
        if backend == "numpy":
            _local_joins_arrays(query, partitioner, sim, pool, timer)
        else:
            with timer.phase("join"):
                for server in range(partitioner.num_bins):
                    local = evaluate_on_fragments(query, sim.state(server))
                    if local:
                        sim.output(server, local)
    timer.attach(sim.report)
    return HyperCubeResult(query, None, resolved, sim.report, sim)


def _communicate_tuples(
    query: ConjunctiveQuery,
    database: Database,
    partitioner: GridPartitioner,
    dimension_variables: Sequence[str],
    sim: MPCSimulation,
) -> None:
    """The communication phase, one tuple at a time.

    Tuples are routed in canonical (lexicographic) order -- the same
    order the columnar backend's sorted arrays use -- so that even a
    binding ``capacity_bits`` cap with ``on_overflow="drop"`` truncates
    the identical per-server prefix on both backends.
    """
    sim.begin_round()
    for atom in query.atoms:
        relation = database[atom.relation]
        batches: dict[int, list[tuple[int, ...]]] = {}
        for server, t in route_relation(
            partitioner, dimension_variables, atom.variables,
            relation.sorted_tuples(),
        ):
            batches.setdefault(server, []).append(t)
        for server, batch in batches.items():
            sim.send(server, atom.relation, batch)
    sim.end_round()


def _communicate_arrays(
    query: ConjunctiveQuery,
    database: Database,
    dimension_variables: Sequence[str],
    shares: tuple[int, ...],
    seed: int,
    hash_method: str,
    sim: MPCSimulation,
    chunk_rows: int | None,
    pool: WorkerPool,
    timer: PhaseTimer,
    weights: tuple[tuple[float, ...] | None, ...] | None = None,
) -> None:
    """The communication phase, relations as arrays (chunk-streamed).

    One :class:`RouteTask` per ``(atom, chunk)`` fans out over the
    pool; results come back in task order and are delivered in that
    order, so every server receives the identical row sequence as the
    serial loop (hence identical loads and capacity truncation) at any
    pool kind and worker count.  With ``chunk_rows=None`` and in-memory
    relations this is the one-chunk-per-relation monolith route;
    chunked relations ship spilled chunks to process workers by path.
    ``weights`` carries the heterogeneous grid's per-dimension bucket
    weights into each task, so workers rebuild the identical weighted
    partitioner.
    """

    def tasks():
        for atom in query.atoms:
            for source in iter_array_sources(
                database[atom.relation], chunk_rows
            ):
                yield RouteTask(
                    tag=atom.relation,
                    source=source,
                    dimension_variables=tuple(dimension_variables),
                    atom_variables=tuple(atom.variables),
                    shares=shares,
                    family_seed=seed,
                    hash_method=hash_method,
                    weights=weights,
                )

    sim.begin_round()
    with timer.phase("route"):
        route_over_pool(pool, sim, tasks(), timer)
    sim.end_round()


def local_join_fragments(
    query: ConjunctiveQuery, fragments: Mapping[str, np.ndarray]
) -> np.ndarray:
    """Vectorized multiway join over array fragments, with tuple fallback.

    Returns the distinct local answers as a ``(n, k)`` int64 array in
    the query's head order.  Queries the vectorized evaluator cannot
    handle fall back to the backtracking tuple join and are converted
    back to array form.  Shared by every columnar computation phase
    (HyperCube, the skew-aware algorithms' light parts, and the
    multi-round executor's per-operator joins).
    """
    try:
        return evaluate_arrays(query, fragments)
    except UnsupportedVectorizedQuery:
        tuple_fragments = {
            tag: set(map(tuple, rows.tolist()))
            for tag, rows in fragments.items()
        }
        fallback = evaluate_on_fragments(query, tuple_fragments)
        width = query.num_variables
        if not fallback:
            return np.empty((0, width), dtype=np.int64)
        return np.array(sorted(fallback), dtype=np.int64).reshape(
            len(fallback), width
        )


def local_join_arrays(
    query: ConjunctiveQuery, sim: MPCSimulation, server: int
) -> None:
    """Join one server's array fragments, recording outputs (if any)."""
    fragments = sim.array_state(server)
    if not fragments:
        return
    local = local_join_fragments(query, fragments)
    if len(local):
        sim.output_array(server, local)


def _local_joins_arrays(
    query: ConjunctiveQuery,
    partitioner: GridPartitioner,
    sim: MPCSimulation,
    pool: WorkerPool,
    timer: PhaseTimer,
) -> None:
    """The computation phase on array fragments, with tuple fallback.

    Per-server joins fan out over the pool; outputs are recorded in
    server order regardless of completion order.  In out-of-core mode
    each server's spooled fragments are freed the moment its result is
    merged, so at most one server's data is resident on the parent at a
    time (workers hold at most one fragment each).
    """
    with timer.phase("join"):
        join_over_pool(
            pool,
            sim,
            query,
            range(partitioner.num_bins),
            timer=timer,
            clear=sim.storage is not None,
        )
