"""One-round HyperCube execution on the MPC simulator.

The driver: compute optimal share exponents via LP (10) (unless shares
are given), integerize them, route every base tuple to its destination
subcube (Eq. 9), run the local multiway join on each server, and return
the union of local answers together with the full load report.

The correctness argument is the paper's: for every potential answer
tuple ``(a_1, ..., a_k)`` the server ``(h_1(a_1), ..., h_k(a_k))``
receives every base tuple consistent with it, so the union of local
join results is exactly ``q(I)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping, Sequence

from repro.core.query import ConjunctiveQuery
from repro.core.shares import integerize_shares, share_exponents
from repro.core.stats import Statistics
from repro.data.database import Database
from repro.hashing.family import GridPartitioner, HashFamily
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.report import LoadReport
from repro.mpc.simulator import MPCSimulation


@dataclass
class HyperCubeResult:
    """Everything produced by one HyperCube run."""

    query: ConjunctiveQuery
    answers: set[tuple[int, ...]]
    shares: dict[str, int]
    report: LoadReport
    simulation: MPCSimulation

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def max_load_tuples(self) -> int:
        return self.report.max_load_tuples

    def replication_rate(self, stats: Statistics) -> float:
        return self.report.replication_rate(stats.total_bits)


def resolve_shares(
    query: ConjunctiveQuery,
    stats: Statistics,
    p: int,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
) -> dict[str, int]:
    """Determine integer shares: explicit > exponents > LP (10)."""
    if shares is not None:
        out = {v: int(shares.get(v, 1)) for v in query.variables}
        if any(s < 1 for s in out.values()):
            raise ValueError("shares must be >= 1")
        product = 1
        for s in out.values():
            product *= s
        if product > p:
            raise ValueError(
                f"share product {product} exceeds the number of servers {p}"
            )
        return out
    if exponents is None:
        exponents = share_exponents(query, stats, p).exponents
    full = {v: float(exponents.get(v, 0.0)) for v in query.variables}
    return integerize_shares(full, p)


def route_relation(
    partitioner: GridPartitioner,
    dimension_variables: Sequence[str],
    atom_variables: Sequence[str],
    tuples,
):
    """Yield ``(server, tuple)`` pairs for one relation's tuples.

    ``dimension_variables`` fixes the grid axes (the query variables in
    head order); a tuple binds the axes named by ``atom_variables`` and
    is replicated along all others (Eq. 9's destination subcube).
    Tuples that bind a repeated variable inconsistently match no answer
    and are routed by their first occurrence only.
    """
    axis_of = {v: i for i, v in enumerate(dimension_variables)}
    for t in tuples:
        coordinates: list[int | None] = [None] * len(dimension_variables)
        for variable, value in zip(atom_variables, t):
            axis = axis_of[variable]
            if coordinates[axis] is None:
                coordinates[axis] = value
        for cell in partitioner.destinations(coordinates):
            yield partitioner.linear_index(cell), t


def run_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    shares: Mapping[str, int] | None = None,
    exponents: Mapping[str, float] | None = None,
    seed: int = 0,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    skip_local_join: bool = False,
) -> HyperCubeResult:
    """Run the one-round HyperCube algorithm on ``p`` servers.

    Parameters mirror the paper's knobs: ``shares``/``exponents``
    override the LP-optimal share allocation; ``capacity_bits`` imposes
    the hard load cap ``L`` (with ``on_overflow="drop"`` implementing
    the load-limited algorithms of the Theorem 3.5 experiments);
    ``skip_local_join`` skips the computation phase when only the
    communication loads are of interest.
    """
    database.validate_for(query)
    stats = database.statistics(query)
    resolved = resolve_shares(query, stats, p, shares, exponents)
    dimension_variables = query.variables
    partitioner = GridPartitioner(
        [resolved[v] for v in dimension_variables], HashFamily(seed)
    )

    sim = MPCSimulation(
        p,
        value_bits=stats.value_bits,
        capacity_bits=capacity_bits,
        on_overflow=on_overflow,
    )
    sim.begin_round()
    for atom in query.atoms:
        relation = database[atom.relation]
        batches: dict[int, list[tuple[int, ...]]] = {}
        for server, t in route_relation(
            partitioner, dimension_variables, atom.variables, relation
        ):
            batches.setdefault(server, []).append(t)
        for server, batch in batches.items():
            sim.send(server, atom.relation, batch)
    sim.end_round()

    answers: set[tuple[int, ...]] = set()
    if not skip_local_join:
        for server in range(partitioner.num_bins):
            local = evaluate_on_fragments(query, sim.state(server))
            if local:
                sim.output(server, local)
        answers = sim.outputs()
    return HyperCubeResult(query, answers, resolved, sim.report, sim)
