"""The HyperCube (HC) algorithm (paper Section 3.1) and baselines.

The HC algorithm assigns each query variable ``x_i`` a *share* ``p_i``
with ``prod_i p_i <= p``, identifies servers with points of the grid
``[p_1] x ... x [p_k]``, and routes every tuple of every relation to its
destination subcube (Eq. 9): the set of grid points agreeing with the
tuple's hashed coordinates on the variables the tuple binds.  Each
server then joins its fragments locally.  One round; load
``O(max_j M_j / prod_{i in S_j} p_i)`` w.h.p. for low-skew inputs
(Corollary 3.3), degrading to ``O(max_j M_j / min_{i in S_j} p_i)``
under adversarial skew (Corollary 4.3).

:mod:`repro.hypercube.baselines` adds the classical comparison points:
single-server execution, the standard parallel hash join (all shares on
one variable), and broadcast joins.
"""

from repro.hypercube.algorithm import (
    HyperCubeResult,
    local_join_arrays,
    route_relation,
    route_relation_arrays,
    run_hypercube,
)
from repro.hypercube.analysis import (
    predicted_load_bits,
    predicted_load_bits_skewed,
    predicted_load_bits_with_frequencies,
    predicted_load_tuples,
)
from repro.hypercube.baselines import (
    run_broadcast_join,
    run_parallel_hash_join,
    run_single_server,
)

__all__ = [
    "HyperCubeResult",
    "local_join_arrays",
    "route_relation",
    "route_relation_arrays",
    "run_hypercube",
    "predicted_load_bits",
    "predicted_load_bits_skewed",
    "predicted_load_bits_with_frequencies",
    "predicted_load_tuples",
    "run_broadcast_join",
    "run_parallel_hash_join",
    "run_single_server",
]
