"""Baseline one-round algorithms the paper compares against.

* :func:`run_single_server` -- the degenerate ``L = M`` algorithm
  (Section 2.1: "if we allowed a load L = M, any problem can be solved
  trivially in one round").
* :func:`run_parallel_hash_join` -- the standard parallel hash join of
  Example 4.1: all ``p`` shares on the join variable(s).  Optimal
  without skew, load ``Theta(M)`` when a single heavy hitter carries
  the relation.
* :func:`run_broadcast_join` -- partition one relation, broadcast the
  rest; matches the HC optimum when the broadcast relations are small
  (Lemma 3.18's regime ``M_j < M/p``).
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.hypercube.algorithm import HyperCubeResult, run_hypercube
from repro.join.multiway import evaluate_on_fragments
from repro.mpc.simulator import MPCSimulation


def run_single_server(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
) -> HyperCubeResult:
    """Ship the entire input to server 0 and join there (load = |I|)."""
    database.validate_for(query)
    stats = database.statistics(query)
    sim = MPCSimulation(
        p,
        value_bits=stats.value_bits,
        capacity_bits=capacity_bits,
        on_overflow=on_overflow,
    )
    sim.begin_round()
    for atom in query.atoms:
        # Sorted, so a binding capacity cap truncates a deterministic
        # prefix rather than whatever the set iteration order yields.
        sim.send(0, atom.relation, database[atom.relation].sorted_tuples())
    sim.end_round()
    answers = evaluate_on_fragments(query, sim.state(0))
    sim.output(0, answers)
    shares = {v: 1 for v in query.variables}
    return HyperCubeResult(
        query, sim.outputs(), shares, sim.report, sim,
        strategy="single-server",
    )


def run_parallel_hash_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    join_variables: Sequence[str] | None = None,
    seed: int = 0,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
    backend: Literal["tuples", "numpy"] | None = None,
    hash_method: str = "splitmix64",
) -> HyperCubeResult:
    """Hash-partition every relation on shared join variable(s).

    Defaults to the variables occurring in *all* atoms (the natural
    join key); for the simple join ``S1(x,z), S2(y,z)`` that is ``z``
    and the algorithm is the textbook parallel hash join with
    ``p_z = p``.
    """
    if join_variables is None:
        join_variables = [
            v
            for v in query.variables
            if all(v in a.variable_set for a in query.atoms)
        ]
    join_variables = list(join_variables)
    if not join_variables:
        raise ValueError(
            "query has no variable common to all atoms; "
            "pass join_variables explicitly"
        )
    # Spread p as evenly as possible over the join variables.
    exponents = {v: 1.0 / len(join_variables) for v in join_variables}
    result = run_hypercube(
        query, database, p, exponents=exponents, seed=seed,
        capacity_bits=capacity_bits, on_overflow=on_overflow,
        backend=backend, hash_method=hash_method,
    )
    result.strategy = "hash-join"
    return result


def run_broadcast_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    partition_relation: str | None = None,
    seed: int = 0,
    capacity_bits: float | None = None,
    on_overflow: Literal["fail", "drop"] = "fail",
) -> HyperCubeResult:
    """Partition one relation evenly; broadcast all the others.

    ``partition_relation`` defaults to the largest relation.  Correct
    for any query because each server sees the full content of every
    non-partitioned relation.
    """
    database.validate_for(query)
    stats = database.statistics(query)
    if partition_relation is None:
        partition_relation = max(
            query.relation_names, key=lambda r: stats.bits(r)
        )
    if partition_relation not in set(query.relation_names):
        raise KeyError(f"unknown relation {partition_relation!r}")
    sim = MPCSimulation(
        p,
        value_bits=stats.value_bits,
        capacity_bits=capacity_bits,
        on_overflow=on_overflow,
    )
    sim.begin_round()
    for atom in query.atoms:
        relation = database[atom.relation]
        if atom.relation == partition_relation:
            ordered = relation.sorted_tuples()
            for index, t in enumerate(ordered):
                sim.send((index * 1_000_003 + seed) % p, atom.relation, [t])
        else:
            sim.broadcast(atom.relation, relation.sorted_tuples())
    sim.end_round()
    for server in range(p):
        local = evaluate_on_fragments(query, sim.state(server))
        if local:
            sim.output(server, local)
    shares = {v: 1 for v in query.variables}
    return HyperCubeResult(
        query, sim.outputs(), shares, sim.report, sim, strategy="broadcast"
    )
