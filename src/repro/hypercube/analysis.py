"""Predicted HyperCube loads (Corollaries 3.3 and 4.3).

For integer shares ``p_i`` the paper predicts per-server loads

* without skew (Corollary 3.3, needs the degree promise
  ``d_J(S_j) <= beta^{|U|} m_j / prod_{i in U} p_i``):
  ``O(max_j M_j / prod_{i in S_j} p_i)``;
* with arbitrary skew (Corollary 4.3):
  ``O(max_j M_j / min_{i in S_j} p_i)``.

These are the quantities the load-vs-p benches compare measured maxima
against.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics


def _share_product(atom_variables: frozenset[str], shares: Mapping[str, int]) -> int:
    product = 1
    for v in atom_variables:
        product *= shares.get(v, 1)
    return product


def predicted_load_tuples(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3's per-relation tuple load ``max_j m_j / prod p_i``."""
    return max(
        stats.tuples(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3 in bits: ``max_j M_j / prod_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits_with_frequencies(
    query: ConjunctiveQuery,
    stats: Statistics,
    shares: Mapping[str, int],
    frequencies: Mapping[str, Mapping[str, Mapping[int, int]]],
) -> float:
    """Corollary 3.3 plus the data-dependent hotspot term, in bits.

    ``frequencies[variable][relation][value]`` holds known heavy-hitter
    frequencies ``m_j(h)`` (the paper's x-statistics, Section 4.2).
    Every tuple of ``S_j`` carrying value ``h`` on variable ``x`` hashes
    to the same grid coordinate on the ``x`` axis, so those tuples
    spread over only ``prod_{i in S_j} p_i / p_x`` servers: the
    per-relation load is at least ``m_j(h) * p_x / prod_{i in S_j} p_i``
    tuples.  Interpolating between this and the skew-free Corollary 3.3
    term recovers Corollary 4.3's worst case when a single value carries
    the whole relation.

    Unlike the big-O statements (which quote ``max_j``), the per-atom
    terms are *summed*: a server receives its fragment of every
    relation, so the sum is what a measured
    :class:`~repro.mpc.report.LoadReport` maximum tracks.  The two
    forms differ by at most the factor ``l``.
    """
    load = 0.0
    for atom in query.atoms:
        product = _share_product(atom.variable_set, shares)
        tuple_load = stats.tuples(atom.relation) / product
        for v in atom.variable_set:
            per_relation = frequencies.get(v, {}).get(atom.relation, {})
            if not per_relation:
                continue
            hottest = max(per_relation.values())
            tuple_load = max(tuple_load, hottest * shares.get(v, 1) / product)
        load += tuple_load * stats.bits_per_tuple(atom.relation)
    return load


def predicted_load_bits_skewed(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 4.3 in bits: ``max_j M_j / min_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation)
        / min(shares.get(v, 1) for v in atom.variable_set)
        for atom in query.atoms
    )


def predicted_server_loads_bits(
    query: ConjunctiveQuery,
    stats: Statistics,
    shares: Mapping[str, int],
    machines: object | None = None,
    frequencies: Mapping[str, Mapping[str, Mapping[int, int]]] | None = None,
) -> list[float]:
    """Per-server predicted load for a (possibly weighted) share grid.

    Server ``s`` occupies one cell of the row-major grid over
    ``query.variables``; its expected fraction of relation ``S_j`` is
    the product of its cell's per-dimension routing weights
    (:func:`repro.hashing.family.grid_dimension_weights` for a
    heterogeneous ``machines`` spec; ``1 / p_i`` on a uniform one).
    The data-dependent hotspot term of
    :func:`predicted_load_bits_with_frequencies` is applied per server:
    a heavy value pins its tuples to one coordinate of the skewed
    variable's axis, so the per-server hotspot load drops only the
    skewed dimension's weight factor.  Under unit speeds and uniform
    weights every entry equals the
    :func:`predicted_load_bits_with_frequencies` value exactly.

    Servers past the grid (``p > num_bins``) are not listed -- they
    receive nothing.
    """
    from repro.hashing.family import grid_dimension_weights

    frequencies = frequencies or {}
    variables = list(query.variables)
    share_list = [shares.get(v, 1) for v in variables]
    weights = grid_dimension_weights(share_list, machines)
    # Per-dimension weight vectors, uniform dims filled in explicitly.
    dim_weights: list[list[float]] = []
    for i, share in enumerate(share_list):
        w = None if weights is None else weights[i]
        dim_weights.append(
            [1.0 / share] * share if w is None else list(w)
        )
    strides = [1] * len(share_list)
    for i in range(len(share_list) - 2, -1, -1):
        strides[i] = strides[i + 1] * share_list[i + 1]
    num_bins = 1
    for share in share_list:
        num_bins *= share
    var_index = {v: i for i, v in enumerate(variables)}

    loads = []
    for server in range(num_bins):
        cell = [
            (server // strides[i]) % share_list[i]
            for i in range(len(share_list))
        ]
        load = 0.0
        for atom in query.atoms:
            fraction = 1.0
            for v in atom.variable_set:
                i = var_index[v]
                fraction *= dim_weights[i][cell[i]]
            tuple_load = stats.tuples(atom.relation) * fraction
            for v in atom.variable_set:
                per_relation = frequencies.get(v, {}).get(atom.relation, {})
                if not per_relation:
                    continue
                hottest = max(per_relation.values())
                i = var_index[v]
                off_axis = fraction / dim_weights[i][cell[i]]
                tuple_load = max(tuple_load, hottest * off_axis)
            load += tuple_load * stats.bits_per_tuple(atom.relation)
        loads.append(load)
    return loads


def predicted_makespan_bits(
    query: ConjunctiveQuery,
    stats: Statistics,
    shares: Mapping[str, int],
    machines: object | None = None,
    frequencies: Mapping[str, Mapping[str, Mapping[int, int]]] | None = None,
) -> float:
    """``max_s load_s / v_s``: the heterogeneous-cluster objective.

    The quantity the planner minimizes on a cluster with per-server
    speeds (arXiv 2501.08896): predicted per-server load
    (:func:`predicted_server_loads_bits`, with speed-weighted routing
    when ``machines`` is non-uniform) normalized by each server's
    speed.  With ``machines=None`` (or a uniform unit-speed spec) this
    equals :func:`predicted_load_bits_with_frequencies` exactly.
    """
    loads = predicted_server_loads_bits(
        query, stats, shares, machines, frequencies
    )
    if machines is None:
        return max(loads, default=0.0)
    return max(
        (load / machines.speed(s) for s, load in enumerate(loads)),
        default=0.0,
    )


def total_replication(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Expected total communicated bits: each ``S_j`` tuple is sent to
    ``prod_{i not in S_j} p_i`` servers."""
    all_product = 1
    for v in query.variables:
        all_product *= shares.get(v, 1)
    total = 0.0
    for atom in query.atoms:
        replication = all_product / _share_product(atom.variable_set, shares)
        total += stats.bits(atom.relation) * replication
    return total
