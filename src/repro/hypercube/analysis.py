"""Predicted HyperCube loads (Corollaries 3.3 and 4.3).

For integer shares ``p_i`` the paper predicts per-server loads

* without skew (Corollary 3.3, needs the degree promise
  ``d_J(S_j) <= beta^{|U|} m_j / prod_{i in U} p_i``):
  ``O(max_j M_j / prod_{i in S_j} p_i)``;
* with arbitrary skew (Corollary 4.3):
  ``O(max_j M_j / min_{i in S_j} p_i)``.

These are the quantities the load-vs-p benches compare measured maxima
against.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics


def _share_product(atom_variables: frozenset[str], shares: Mapping[str, int]) -> int:
    product = 1
    for v in atom_variables:
        product *= shares.get(v, 1)
    return product


def predicted_load_tuples(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3's per-relation tuple load ``max_j m_j / prod p_i``."""
    return max(
        stats.tuples(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3 in bits: ``max_j M_j / prod_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits_skewed(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 4.3 in bits: ``max_j M_j / min_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation)
        / min(shares.get(v, 1) for v in atom.variable_set)
        for atom in query.atoms
    )


def total_replication(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Expected total communicated bits: each ``S_j`` tuple is sent to
    ``prod_{i not in S_j} p_i`` servers."""
    all_product = 1
    for v in query.variables:
        all_product *= shares.get(v, 1)
    total = 0.0
    for atom in query.atoms:
        replication = all_product / _share_product(atom.variable_set, shares)
        total += stats.bits(atom.relation) * replication
    return total
