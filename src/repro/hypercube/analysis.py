"""Predicted HyperCube loads (Corollaries 3.3 and 4.3).

For integer shares ``p_i`` the paper predicts per-server loads

* without skew (Corollary 3.3, needs the degree promise
  ``d_J(S_j) <= beta^{|U|} m_j / prod_{i in U} p_i``):
  ``O(max_j M_j / prod_{i in S_j} p_i)``;
* with arbitrary skew (Corollary 4.3):
  ``O(max_j M_j / min_{i in S_j} p_i)``.

These are the quantities the load-vs-p benches compare measured maxima
against.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.query import ConjunctiveQuery
from repro.core.stats import Statistics


def _share_product(atom_variables: frozenset[str], shares: Mapping[str, int]) -> int:
    product = 1
    for v in atom_variables:
        product *= shares.get(v, 1)
    return product


def predicted_load_tuples(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3's per-relation tuple load ``max_j m_j / prod p_i``."""
    return max(
        stats.tuples(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 3.3 in bits: ``max_j M_j / prod_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation) / _share_product(atom.variable_set, shares)
        for atom in query.atoms
    )


def predicted_load_bits_with_frequencies(
    query: ConjunctiveQuery,
    stats: Statistics,
    shares: Mapping[str, int],
    frequencies: Mapping[str, Mapping[str, Mapping[int, int]]],
) -> float:
    """Corollary 3.3 plus the data-dependent hotspot term, in bits.

    ``frequencies[variable][relation][value]`` holds known heavy-hitter
    frequencies ``m_j(h)`` (the paper's x-statistics, Section 4.2).
    Every tuple of ``S_j`` carrying value ``h`` on variable ``x`` hashes
    to the same grid coordinate on the ``x`` axis, so those tuples
    spread over only ``prod_{i in S_j} p_i / p_x`` servers: the
    per-relation load is at least ``m_j(h) * p_x / prod_{i in S_j} p_i``
    tuples.  Interpolating between this and the skew-free Corollary 3.3
    term recovers Corollary 4.3's worst case when a single value carries
    the whole relation.

    Unlike the big-O statements (which quote ``max_j``), the per-atom
    terms are *summed*: a server receives its fragment of every
    relation, so the sum is what a measured
    :class:`~repro.mpc.report.LoadReport` maximum tracks.  The two
    forms differ by at most the factor ``l``.
    """
    load = 0.0
    for atom in query.atoms:
        product = _share_product(atom.variable_set, shares)
        tuple_load = stats.tuples(atom.relation) / product
        for v in atom.variable_set:
            per_relation = frequencies.get(v, {}).get(atom.relation, {})
            if not per_relation:
                continue
            hottest = max(per_relation.values())
            tuple_load = max(tuple_load, hottest * shares.get(v, 1) / product)
        load += tuple_load * stats.bits_per_tuple(atom.relation)
    return load


def predicted_load_bits_skewed(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Corollary 4.3 in bits: ``max_j M_j / min_{i in S_j} p_i``."""
    return max(
        stats.bits(atom.relation)
        / min(shares.get(v, 1) for v in atom.variable_set)
        for atom in query.atoms
    )


def total_replication(
    query: ConjunctiveQuery, stats: Statistics, shares: Mapping[str, int]
) -> float:
    """Expected total communicated bits: each ``S_j`` tuple is sent to
    ``prod_{i not in S_j} p_i`` servers."""
    all_product = 1
    for v in query.variables:
        all_product *= shares.get(v, 1)
    total = 0.0
    for atom in query.atoms:
        replication = all_product / _share_product(atom.variable_set, shares)
        total += stats.bits(atom.relation) * replication
    return total
