"""The system-wide execution-backend switch.

Every executor and generator in the package takes ``backend=None`` and
resolves it here, so one module-level default decides whether the whole
system runs columnar (``"numpy"``: vectorized routing, array payloads
in the simulator, vectorized local joins) or tuple-at-a-time
(``"tuples"``: the original, obviously-correct reference path).  The
two are bit-identical in answers and per-server/per-round loads -- the
property suites in ``tests/hypercube/test_backends.py`` and
``tests/multiround/test_executor_backends.py`` enforce it -- so the
default is the fast one, and the reference path stays one flag away::

    import repro
    repro.set_default_backend("tuples")   # system-wide ground-truth mode
    ...
    repro.set_default_backend("numpy")    # back to fast-by-default

Generators are deliberately *not* coupled to the execution switch:
their two streams (``"python"`` / ``"numpy"``) draw different --
equally distributed -- instances for the same seed, so if switching
engines also switched the generator stream, regenerating the same
database under ``set_default_backend("tuples")`` would silently change
the data and masquerade as a backend bit-identity violation.  They
default to the vectorized ``"numpy"`` stream
(:data:`DEFAULT_GENERATOR_BACKEND`) and take an explicit ``backend=``
per call.

This module is a leaf: it imports nothing from :mod:`repro`, so any
submodule may consult it without import cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Literal

Backend = Literal["tuples", "numpy"]
GeneratorBackend = Literal["python", "numpy"]
PoolKind = Literal["serial", "thread", "process"]

#: The shipped default: columnar execution everywhere.
DEFAULT_BACKEND: Backend = "numpy"

#: The generator-stream default: vectorized draws, independent of the
#: execution switch (see the module docstring for why).
DEFAULT_GENERATOR_BACKEND: GeneratorBackend = "numpy"

_EXECUTION_BACKENDS = ("tuples", "numpy")
_GENERATOR_BACKENDS = ("python", "numpy")

_default_backend: Backend = DEFAULT_BACKEND


def default_backend() -> Backend:
    """The currently active system-wide execution backend."""
    return _default_backend


def set_default_backend(backend: str) -> Backend:
    """Set the system-wide default backend; returns the previous one.

    Affects every executor and generator called with ``backend=None``
    (the HyperCube driver, the skew-aware star/triangle algorithms, the
    multi-round plan executor, and the matching/zipf generators).
    """
    global _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    previous = _default_backend
    _default_backend = backend  # type: ignore[assignment]
    return previous


@contextmanager
def use_backend(backend: str) -> Iterator[Backend]:
    """Temporarily override the system-wide default backend.

    The exception-safe form of :func:`set_default_backend` for scoped
    overrides (tests, one ground-truth block inside a columnar
    program)::

        with repro.config.use_backend("tuples"):
            reference = run_hypercube(q, db, p)   # tuple path
        fast = run_hypercube(q, db, p)            # back to the default

    Restores the previous default on exit even when the body raises.
    Yields the backend now in force.
    """
    previous = set_default_backend(backend)
    try:
        yield _default_backend
    finally:
        set_default_backend(previous)


def resolve_backend(backend: str | None) -> Backend:
    """An explicit execution backend, or the system-wide default."""
    if backend is None:
        return _default_backend
    if backend not in _EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {_EXECUTION_BACKENDS})"
        )
    return backend  # type: ignore[return-value]


_POOL_KINDS = ("serial", "thread", "process")

#: The worker-pool default when neither a run nor the environment picks
#: one: the engines stay serial (zero overhead, the historical
#: behavior); callers opt into thread/process fan-out per run, per
#: session, or system-wide (``REPRO_DEFAULT_POOL``).
DEFAULT_POOL: PoolKind = "serial"


def _pool_from_env() -> PoolKind:
    value = os.environ.get("REPRO_DEFAULT_POOL")
    if value is None:
        return DEFAULT_POOL
    if value not in _POOL_KINDS:
        raise ValueError(
            f"REPRO_DEFAULT_POOL={value!r} is not one of {_POOL_KINDS}"
        )
    return value  # type: ignore[return-value]


_default_pool: PoolKind = _pool_from_env()


def default_pool() -> PoolKind:
    """The currently active system-wide worker-pool kind."""
    return _default_pool


def set_default_pool(pool: str) -> PoolKind:
    """Set the system-wide default pool kind; returns the previous one.

    Affects every executor and :meth:`repro.session.Session.run_many`
    batch running with ``pool=None``.  The environment variable
    ``REPRO_DEFAULT_POOL`` seeds this default at import time (the knob
    CI uses to run the whole suite through the process pool).
    """
    global _default_pool
    if pool not in _POOL_KINDS:
        raise ValueError(
            f"unknown pool kind {pool!r} (expected one of {_POOL_KINDS})"
        )
    previous = _default_pool
    _default_pool = pool  # type: ignore[assignment]
    return previous


@contextmanager
def use_pool(pool: str) -> Iterator[PoolKind]:
    """Temporarily override the system-wide default pool kind.

    The exception-safe scoped form of :func:`set_default_pool`, exactly
    like :func:`use_backend` for the execution backend.
    """
    previous = set_default_pool(pool)
    try:
        yield _default_pool
    finally:
        set_default_pool(previous)


def resolve_pool(pool: str | None) -> PoolKind:
    """An explicit pool kind, or the system-wide default."""
    if pool is None:
        return _default_pool
    if pool not in _POOL_KINDS:
        raise ValueError(
            f"unknown pool kind {pool!r} (expected one of {_POOL_KINDS})"
        )
    return pool  # type: ignore[return-value]


_HASH_METHODS = ("splitmix64", "blake2b")
_OVERFLOW_MODES = ("fail", "drop")


@dataclass(frozen=True)
class ExecutionSettings:
    """The per-run execution knobs every executor shares.

    One value object carries the five settings that used to be
    copy-pasted (and to drift) across every executor signature:
    the engine switch, the per-server per-round capacity cap and its
    overflow policy, the routing PRF, and the streaming granularity.
    :meth:`resolve` is the single place the backend/storage/chunk-size
    interaction is decided; the executor cores receive an
    already-resolved instance and never re-derive it.
    """

    backend: Backend | None = None
    capacity_bits: float | None = None
    on_overflow: Literal["fail", "drop"] = "fail"
    hash_method: str = "splitmix64"
    chunk_rows: int | None = None
    pool: PoolKind | None = None
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in _EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {_EXECUTION_BACKENDS})"
            )
        if self.on_overflow not in _OVERFLOW_MODES:
            raise ValueError("on_overflow must be 'fail' or 'drop'")
        if self.hash_method not in _HASH_METHODS:
            raise ValueError(
                f"unknown hash_method {self.hash_method!r} "
                f"(expected one of {_HASH_METHODS})"
            )
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.pool is not None and self.pool not in _POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {self.pool!r} "
                f"(expected one of {_POOL_KINDS})"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")

    def resolve(self, storage: object | None = None) -> "ExecutionSettings":
        """A copy with backend, chunk granularity and pool pinned down.

        ``backend=None`` resolves to the system-wide default
        (:func:`default_backend`); an attached storage manager demands
        the columnar engine and supplies its own ``chunk_rows`` when
        the caller gave none.  ``pool=None`` resolves to the
        system-wide default (:func:`default_pool`); the tuple backend
        has no vectorized per-server task bodies to fan out, so it
        always resolves to the serial pool.  This is the one shared
        resolution step behind ``run_hypercube``/``run_star_skew``/
        ``run_triangle_skew``/``run_plan`` and
        :meth:`repro.session.Session.run`.
        """
        backend = resolve_backend(self.backend)
        if storage is not None and backend != "numpy":
            raise ValueError(
                "out-of-core execution (storage=...) requires the numpy "
                "backend"
            )
        chunk_rows = self.chunk_rows
        if chunk_rows is None and storage is not None:
            chunk_rows = storage.chunk_rows  # type: ignore[attr-defined]
        pool = resolve_pool(self.pool)
        if backend != "numpy":
            pool = "serial"
        return replace(
            self, backend=backend, chunk_rows=chunk_rows, pool=pool
        )


def resolve_generator_backend(backend: str | None) -> GeneratorBackend:
    """An explicit generator stream, or :data:`DEFAULT_GENERATOR_BACKEND`.

    Deliberately independent of :func:`set_default_backend`: the
    streams draw different instances per seed, and the same database
    must be reproducible regardless of the execution engine.
    """
    if backend is None:
        return DEFAULT_GENERATOR_BACKEND
    if backend not in _GENERATOR_BACKENDS:
        raise ValueError(
            f"unknown generator backend {backend!r} "
            f"(expected one of {_GENERATOR_BACKENDS})"
        )
    return backend  # type: ignore[return-value]
